"""Evaluation metrics: Hits@m, MR, MRR and precision/recall/F1 (§2.1.3).

Rank metrics assume the standard left-to-right protocol: each test source
entity ranks all candidate target entities; the gold target's rank drives
Hits@m / MR / MRR.  Hits@1 equals precision in this protocol (every source
entity emits exactly one prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import top_scores

__all__ = [
    "RankMetrics",
    "rank_metrics",
    "sample_candidate_indices",
    "sampled_rank_metrics",
    "prf_metrics",
    "PRF",
    "DanglingMetrics",
    "nil_aware_metrics",
    "calibrate_abstention",
    "abstention_curve",
]


@dataclass(frozen=True)
class RankMetrics:
    """Ranking quality of one evaluation run."""

    hits: dict[int, float]
    mr: float
    mrr: float
    n: int

    def hits_at(self, m: int) -> float:
        return self.hits[m]

    def __str__(self) -> str:
        hits = " ".join(f"H@{m}={v:.3f}" for m, v in sorted(self.hits.items()))
        return f"{hits} MR={self.mr:.1f} MRR={self.mrr:.3f} (n={self.n})"


def rank_metrics(
    similarity: np.ndarray,
    gold: np.ndarray,
    hits_at: tuple[int, ...] = (1, 5, 10),
) -> RankMetrics:
    """Compute Hits@m / MR / MRR from a similarity matrix.

    ``gold[i]`` is the column index of source row ``i``'s true counterpart.
    Ranks are 1-based; ties are counted optimistically-neutral by ranking
    the gold entity below strictly-more-similar candidates only.
    """
    gold = np.asarray(gold, dtype=np.int64)
    if similarity.shape[0] != gold.shape[0]:
        raise ValueError(
            f"{similarity.shape[0]} rows but {gold.shape[0]} gold labels"
        )
    if similarity.shape[0] == 0:
        return RankMetrics(hits={m: 0.0 for m in hits_at}, mr=0.0, mrr=0.0, n=0)
    gold_scores = similarity[np.arange(len(gold)), gold]
    ranks = 1 + (similarity > gold_scores[:, None]).sum(axis=1)
    hits = {m: float((ranks <= m).mean()) for m in hits_at}
    return RankMetrics(
        hits=hits,
        mr=float(ranks.mean()),
        mrr=float((1.0 / ranks).mean()),
        n=len(gold),
    )


def sample_candidate_indices(
    n: int,
    sample: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sorted row indices of a sampled-candidate evaluation subset.

    Returns all ``n`` indices when ``sample`` is non-positive or at least
    ``n``, otherwise a sorted ``sample``-sized choice without replacement.
    Sorting keeps the subset order-stable so downstream metrics do not
    depend on the draw order.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if sample <= 0 or sample >= n:
        return np.arange(n, dtype=np.int64)
    if rng is None:
        rng = np.random.default_rng(0)
    return np.sort(rng.choice(n, size=sample, replace=False)).astype(np.int64)


def sampled_rank_metrics(
    similarity_fn,
    pairs: list[tuple[str, str]],
    *,
    sample: int,
    rng: np.random.Generator | None = None,
    hits_at: tuple[int, ...] = (1, 5, 10),
) -> RankMetrics:
    """Rank metrics on a sampled subset of gold pairs — O(sample²).

    Each sampled source ranks against the sampled targets only (the
    compact candidate protocol restricted to the subset), so a streaming
    probe costs ``sample × sample`` similarity entries instead of the
    full |test|² matrix.  ``similarity_fn(sources, targets)`` must return
    the similarity matrix between the named entities (for an approach,
    pass ``approach.similarity_between``).
    """
    indices = sample_candidate_indices(len(pairs), sample, rng)
    subset = [pairs[int(i)] for i in indices]
    if not subset:
        return RankMetrics(hits={m: 0.0 for m in hits_at}, mr=0.0, mrr=0.0, n=0)
    sources = [a for a, _ in subset]
    targets = [b for _, b in subset]
    similarity = similarity_fn(sources, targets)
    gold = np.arange(len(subset), dtype=np.int64)
    return rank_metrics(similarity, gold, hits_at=hits_at)


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 of a predicted alignment set."""

    precision: float
    recall: float
    f1: float
    n_predicted: int
    n_gold: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(pred={self.n_predicted}, gold={self.n_gold})"
        )


def prf_metrics(
    predicted: set[tuple[str, str]] | list[tuple[str, str]],
    gold: set[tuple[str, str]] | list[tuple[str, str]],
) -> PRF:
    """Set-based precision/recall/F1 (the conventional-systems protocol).

    Degenerate inputs are well-defined rather than division-by-zero:
    an empty prediction set has precision 0.0, an empty (zero-positive)
    gold set has recall 0.0, and F1 is 0.0 whenever both components
    vanish.
    """
    predicted_set = set(predicted)
    gold_set = set(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 0.0
    recall = correct / len(gold_set) if gold_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return PRF(
        precision=precision,
        recall=recall,
        f1=f1,
        n_predicted=len(predicted_set),
        n_gold=len(gold_set),
    )


# ----------------------------------------------------------------------
# NIL-aware evaluation (dangling entities; docs/robustness.md)
# ----------------------------------------------------------------------

#: Valid abstention signals: "threshold" abstains on a low top-1 score,
#: "margin" on a low top-1/top-2 margin.
ABSTENTION_METHODS = ("threshold", "margin")


@dataclass(frozen=True)
class DanglingMetrics:
    """Quality of one abstention policy on a corrupted candidate set.

    Dangling detection treats *abstained* as the positive class:
    precision is the fraction of abstentions that were genuinely
    dangling, recall the fraction of dangling sources detected.
    ``hits1_matchable`` counts an abstained matchable source as a miss —
    the cost of abstaining too eagerly — while ``mrr_matchable`` scores
    the underlying ranking over the full candidate set, independent of
    the abstention decision.
    """

    method: str
    threshold: float
    precision: float
    recall: float
    f1: float
    hits1_matchable: float
    mrr_matchable: float
    abstained: int
    n_dangling: int
    n_matchable: int

    def __str__(self) -> str:
        return (
            f"dangling P={self.precision:.3f} R={self.recall:.3f} "
            f"F1={self.f1:.3f} H@1(match)={self.hits1_matchable:.3f} "
            f"MRR(match)={self.mrr_matchable:.3f} "
            f"({self.method}@{self.threshold:.4f}, "
            f"abstained={self.abstained}/{self.n_dangling}+{self.n_matchable})"
        )


def _abstention_signal(similarity: np.ndarray, method: str) -> np.ndarray:
    if method not in ABSTENTION_METHODS:
        raise ValueError(
            f"unknown abstention method {method!r}; "
            f"choose from {ABSTENTION_METHODS}"
        )
    best, margin = top_scores(similarity)
    return best if method == "threshold" else margin


def nil_aware_metrics(
    similarity: np.ndarray,
    gold: np.ndarray,
    method: str = "threshold",
    threshold: float = 0.0,
) -> DanglingMetrics:
    """Score an abstention policy against NIL ground truth.

    ``gold[i]`` is the column index of source row ``i``'s counterpart,
    or ``-1`` when the source is dangling (has no counterpart among the
    candidates).  A source *abstains* when its signal — top-1 score for
    ``method="threshold"``, top-1/top-2 margin for ``method="margin"`` —
    falls below ``threshold``.
    """
    gold = np.asarray(gold, dtype=np.int64)
    if similarity.shape[0] != gold.shape[0]:
        raise ValueError(
            f"{similarity.shape[0]} rows but {gold.shape[0]} gold labels"
        )
    signal = _abstention_signal(similarity, method)
    abstain = signal < threshold
    dangling = gold < 0
    matchable = ~dangling

    true_pos = int((abstain & dangling).sum())
    n_abstained = int(abstain.sum())
    n_dangling = int(dangling.sum())
    precision = true_pos / n_abstained if n_abstained else 0.0
    recall = true_pos / n_dangling if n_dangling else 0.0
    f1 = (2.0 * precision * recall / (precision + recall)
          if precision + recall else 0.0)

    n_matchable = int(matchable.sum())
    if n_matchable and similarity.shape[1]:
        rows = np.where(matchable)[0]
        predicted = similarity[rows].argmax(axis=1)
        correct = (predicted == gold[rows]) & ~abstain[rows]
        hits1 = float(correct.mean())
        gold_scores = similarity[rows, gold[rows]]
        ranks = 1 + (similarity[rows] > gold_scores[:, None]).sum(axis=1)
        mrr = float((1.0 / ranks).mean())
    else:
        hits1 = 0.0
        mrr = 0.0

    return DanglingMetrics(
        method=method,
        threshold=float(threshold),
        precision=precision,
        recall=recall,
        f1=f1,
        hits1_matchable=hits1,
        mrr_matchable=mrr,
        abstained=n_abstained,
        n_dangling=n_dangling,
        n_matchable=n_matchable,
    )


def calibrate_abstention(
    similarity: np.ndarray,
    gold: np.ndarray,
    method: str = "threshold",
    fallback_quantile: float = 0.05,
) -> float:
    """Pick the abstention threshold maximizing dangling-detection F1.

    Sweeps the midpoints between consecutive observed signal values and
    returns the F1-maximizing threshold (ties broken towards fewer
    abstentions, protecting matchable Hits@1).  Without any dangling
    example to calibrate on, falls back to the ``fallback_quantile`` of
    the matchable signals — abstain on the least-confident tail.
    """
    gold = np.asarray(gold, dtype=np.int64)
    signal = _abstention_signal(similarity, method)
    dangling = gold < 0
    if signal.size == 0:
        return 0.0
    if not dangling.any():
        return float(np.quantile(signal, fallback_quantile))
    order = np.sort(np.unique(signal))
    if order.size == 1:
        candidates = np.array([order[0]])
    else:
        candidates = np.concatenate(
            ([order[0] - 1e-9], (order[:-1] + order[1:]) / 2.0,
             [order[-1] + 1e-9])
        )
    # Vectorized sweep: F1 of "signal < t" against the dangling labels.
    abstain = signal[None, :] < candidates[:, None]
    true_pos = (abstain & dangling[None, :]).sum(axis=1).astype(float)
    n_abstained = abstain.sum(axis=1).astype(float)
    n_dangling = float(dangling.sum())
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(n_abstained > 0, true_pos / n_abstained, 0.0)
        recall = true_pos / n_dangling
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2 * precision * recall / denominator, 0.0)
    best = f1.max()
    # argmax over the lowest-threshold maximizer = fewest abstentions.
    return float(candidates[int(np.argmax(f1 >= best - 1e-12))])


def abstention_curve(
    similarity: np.ndarray,
    gold: np.ndarray,
    method: str = "threshold",
    thresholds: list[float] | np.ndarray | None = None,
    n_points: int = 9,
) -> list[DanglingMetrics]:
    """NIL metrics along a threshold sweep (for reports and the CLI).

    Default thresholds are evenly-spaced quantiles of the observed
    signal, so the curve covers the abstain-nothing..abstain-most range
    whatever the score scale.
    """
    if thresholds is None:
        signal = _abstention_signal(similarity, method)
        if signal.size == 0:
            thresholds = [0.0]
        else:
            quantiles = np.linspace(0.0, 0.9, n_points)
            thresholds = np.unique(np.quantile(signal, quantiles))
    return [
        nil_aware_metrics(similarity, gold, method=method, threshold=float(t))
        for t in thresholds
    ]
