"""Evaluation metrics: Hits@m, MR, MRR and precision/recall/F1 (§2.1.3).

Rank metrics assume the standard left-to-right protocol: each test source
entity ranks all candidate target entities; the gold target's rank drives
Hits@m / MR / MRR.  Hits@1 equals precision in this protocol (every source
entity emits exactly one prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RankMetrics",
    "rank_metrics",
    "sample_candidate_indices",
    "sampled_rank_metrics",
    "prf_metrics",
    "PRF",
]


@dataclass(frozen=True)
class RankMetrics:
    """Ranking quality of one evaluation run."""

    hits: dict[int, float]
    mr: float
    mrr: float
    n: int

    def hits_at(self, m: int) -> float:
        return self.hits[m]

    def __str__(self) -> str:
        hits = " ".join(f"H@{m}={v:.3f}" for m, v in sorted(self.hits.items()))
        return f"{hits} MR={self.mr:.1f} MRR={self.mrr:.3f} (n={self.n})"


def rank_metrics(
    similarity: np.ndarray,
    gold: np.ndarray,
    hits_at: tuple[int, ...] = (1, 5, 10),
) -> RankMetrics:
    """Compute Hits@m / MR / MRR from a similarity matrix.

    ``gold[i]`` is the column index of source row ``i``'s true counterpart.
    Ranks are 1-based; ties are counted optimistically-neutral by ranking
    the gold entity below strictly-more-similar candidates only.
    """
    gold = np.asarray(gold, dtype=np.int64)
    if similarity.shape[0] != gold.shape[0]:
        raise ValueError(
            f"{similarity.shape[0]} rows but {gold.shape[0]} gold labels"
        )
    if similarity.shape[0] == 0:
        return RankMetrics(hits={m: 0.0 for m in hits_at}, mr=0.0, mrr=0.0, n=0)
    gold_scores = similarity[np.arange(len(gold)), gold]
    ranks = 1 + (similarity > gold_scores[:, None]).sum(axis=1)
    hits = {m: float((ranks <= m).mean()) for m in hits_at}
    return RankMetrics(
        hits=hits,
        mr=float(ranks.mean()),
        mrr=float((1.0 / ranks).mean()),
        n=len(gold),
    )


def sample_candidate_indices(
    n: int,
    sample: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sorted row indices of a sampled-candidate evaluation subset.

    Returns all ``n`` indices when ``sample`` is non-positive or at least
    ``n``, otherwise a sorted ``sample``-sized choice without replacement.
    Sorting keeps the subset order-stable so downstream metrics do not
    depend on the draw order.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if sample <= 0 or sample >= n:
        return np.arange(n, dtype=np.int64)
    if rng is None:
        rng = np.random.default_rng(0)
    return np.sort(rng.choice(n, size=sample, replace=False)).astype(np.int64)


def sampled_rank_metrics(
    similarity_fn,
    pairs: list[tuple[str, str]],
    *,
    sample: int,
    rng: np.random.Generator | None = None,
    hits_at: tuple[int, ...] = (1, 5, 10),
) -> RankMetrics:
    """Rank metrics on a sampled subset of gold pairs — O(sample²).

    Each sampled source ranks against the sampled targets only (the
    compact candidate protocol restricted to the subset), so a streaming
    probe costs ``sample × sample`` similarity entries instead of the
    full |test|² matrix.  ``similarity_fn(sources, targets)`` must return
    the similarity matrix between the named entities (for an approach,
    pass ``approach.similarity_between``).
    """
    indices = sample_candidate_indices(len(pairs), sample, rng)
    subset = [pairs[int(i)] for i in indices]
    if not subset:
        return RankMetrics(hits={m: 0.0 for m in hits_at}, mr=0.0, mrr=0.0, n=0)
    sources = [a for a, _ in subset]
    targets = [b for _, b in subset]
    similarity = similarity_fn(sources, targets)
    gold = np.arange(len(subset), dtype=np.int64)
    return rank_metrics(similarity, gold, hits_at=hits_at)


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 of a predicted alignment set."""

    precision: float
    recall: float
    f1: float
    n_predicted: int
    n_gold: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(pred={self.n_predicted}, gold={self.n_gold})"
        )


def prf_metrics(
    predicted: set[tuple[str, str]] | list[tuple[str, str]],
    gold: set[tuple[str, str]] | list[tuple[str, str]],
) -> PRF:
    """Set-based precision/recall/F1 (the conventional-systems protocol)."""
    predicted_set = set(predicted)
    gold_set = set(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 0.0
    recall = correct / len(gold_set) if gold_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return PRF(
        precision=precision,
        recall=recall,
        f1=f1,
        n_predicted=len(predicted_set),
        n_gold=len(gold_set),
    )
