"""Alignment module: distance metrics, inference strategies, evaluation."""

from .blocking import HyperplaneLSH, blocked_greedy_alignment
from .streaming import streaming_greedy_alignment, topk_similarity
from .evaluate import (
    PRF,
    RankMetrics,
    prf_metrics,
    rank_metrics,
    sample_candidate_indices,
    sampled_rank_metrics,
)
from .inference import (
    INFERENCE_STRATEGIES,
    greedy_alignment,
    heuristic_matching,
    hungarian_alignment,
    infer_alignment,
    stable_marriage,
)
from .metrics import (
    METRICS,
    cosine_similarity,
    csls,
    euclidean_similarity,
    manhattan_similarity,
    similarity_matrix,
)

__all__ = [
    "cosine_similarity", "euclidean_similarity", "manhattan_similarity",
    "similarity_matrix", "csls", "METRICS",
    "greedy_alignment", "stable_marriage", "hungarian_alignment",
    "heuristic_matching", "infer_alignment", "INFERENCE_STRATEGIES",
    "rank_metrics", "RankMetrics", "prf_metrics", "PRF",
    "sample_candidate_indices", "sampled_rank_metrics",
    "HyperplaneLSH", "blocked_greedy_alignment",
    "topk_similarity", "streaming_greedy_alignment",
]
