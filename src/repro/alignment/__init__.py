"""Alignment module: distance metrics, inference strategies, evaluation."""

from .blocking import HyperplaneLSH, blocked_greedy_alignment
from .streaming import streaming_greedy_alignment, topk_similarity
from .evaluate import (
    PRF,
    DanglingMetrics,
    RankMetrics,
    abstention_curve,
    calibrate_abstention,
    nil_aware_metrics,
    prf_metrics,
    rank_metrics,
    sample_candidate_indices,
    sampled_rank_metrics,
)
from .inference import (
    INFERENCE_STRATEGIES,
    apply_abstention,
    greedy_alignment,
    heuristic_matching,
    hungarian_alignment,
    infer_alignment,
    stable_marriage,
)
from .metrics import (
    METRICS,
    cosine_similarity,
    csls,
    euclidean_similarity,
    manhattan_similarity,
    similarity_matrix,
    top_scores,
)

__all__ = [
    "cosine_similarity", "euclidean_similarity", "manhattan_similarity",
    "similarity_matrix", "csls", "METRICS", "top_scores",
    "greedy_alignment", "stable_marriage", "hungarian_alignment",
    "heuristic_matching", "infer_alignment", "INFERENCE_STRATEGIES",
    "apply_abstention",
    "rank_metrics", "RankMetrics", "prf_metrics", "PRF",
    "sample_candidate_indices", "sampled_rank_metrics",
    "DanglingMetrics", "nil_aware_metrics", "calibrate_abstention",
    "abstention_curve",
    "HyperplaneLSH", "blocked_greedy_alignment",
    "topk_similarity", "streaming_greedy_alignment",
]
