"""Candidate blocking for large-scale alignment (paper §7.2, direction 3).

The paper notes that nearest-neighbor inference grows polynomially with
the entity count and points to locality-sensitive hashing as the remedy.
:class:`HyperplaneLSH` implements the classic random-hyperplane scheme
for cosine similarity: entities hashing into the same bucket (in any of
several hash tables) become candidates; everything else is pruned.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["HyperplaneLSH", "blocked_greedy_alignment"]


class HyperplaneLSH:
    """Random-hyperplane LSH index over unit-normalized vectors.

    ``n_bits`` hyperplanes per table give ``2^n_bits`` buckets; ``n_tables``
    independent tables trade recall for candidate count.
    """

    def __init__(self, dim: int, n_bits: int = 8, n_tables: int = 4,
                 seed: int = 0):
        if n_bits <= 0 or n_tables <= 0:
            raise ValueError("n_bits and n_tables must be positive")
        rng = np.random.default_rng(seed)
        self.planes = [rng.normal(size=(dim, n_bits)) for _ in range(n_tables)]
        self._tables: list[dict[int, list[int]]] | None = None

    def _signatures(self, vectors: np.ndarray, table: int) -> np.ndarray:
        bits = (vectors @ self.planes[table]) > 0
        weights = 1 << np.arange(bits.shape[1])
        return bits @ weights

    def index(self, vectors: np.ndarray) -> None:
        """Index the target-side vectors."""
        self._tables = []
        for table in range(len(self.planes)):
            buckets: dict[int, list[int]] = defaultdict(list)
            for row, signature in enumerate(self._signatures(vectors, table)):
                buckets[int(signature)].append(row)
            self._tables.append(dict(buckets))

    def candidates(self, vectors: np.ndarray) -> list[np.ndarray]:
        """Candidate target rows for each query row."""
        if self._tables is None:
            raise RuntimeError("call index() before candidates()")
        per_query: list[set[int]] = [set() for _ in range(len(vectors))]
        for table in range(len(self.planes)):
            signatures = self._signatures(vectors, table)
            buckets = self._tables[table]
            for row, signature in enumerate(signatures):
                per_query[row].update(buckets.get(int(signature), ()))
        return [np.fromiter(c, dtype=np.int64) for c in per_query]


def blocked_greedy_alignment(
    source: np.ndarray,
    target: np.ndarray,
    n_bits: int = 8,
    n_tables: int = 4,
    seed: int = 0,
) -> tuple[np.ndarray, float]:
    """Greedy nearest-neighbor alignment restricted to LSH candidates.

    Returns ``(assignment, candidate_fraction)`` where ``assignment[i]`` is
    the chosen target row (-1 when no candidate survived blocking) and
    ``candidate_fraction`` is the average share of the target side that was
    actually scored — the speedup knob.
    """
    def normalize(matrix):
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.maximum(norms, 1e-12)

    source = normalize(source)
    target = normalize(target)
    lsh = HyperplaneLSH(source.shape[1], n_bits=n_bits, n_tables=n_tables,
                        seed=seed)
    lsh.index(target)
    candidate_lists = lsh.candidates(source)
    assignment = np.full(len(source), -1, dtype=np.int64)
    scored = 0
    for row, candidates in enumerate(candidate_lists):
        if candidates.size == 0:
            continue
        scores = target[candidates] @ source[row]
        assignment[row] = candidates[int(scores.argmax())]
        scored += candidates.size
    fraction = scored / max(1, len(source) * len(target))
    return assignment, fraction
