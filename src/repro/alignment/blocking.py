"""Candidate blocking for large-scale alignment (paper §7.2, direction 3).

The paper notes that nearest-neighbor inference grows polynomially with
the entity count and points to locality-sensitive hashing as the remedy.
:class:`HyperplaneLSH` implements the classic random-hyperplane scheme
for cosine similarity: entities hashing into the same bucket (in any of
several hash tables) become candidates; everything else is pruned.

Two refinements make the scheme usable as a serving-time index
(``repro.serve.index.LSHIndex`` builds on them):

* **multi-probe** — besides its own bucket, a query can probe the
  buckets reached by flipping its lowest-margin sign bits, which buys
  recall without extra hash tables;
* **empty-bucket fallback** — a query whose buckets are all empty used
  to silently receive *zero* candidates (and therefore no alignment at
  all); it now falls back to the nearest non-empty bucket per table, or
  to exact search over every row.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["HyperplaneLSH", "blocked_greedy_alignment"]

_FALLBACKS = ("nearest", "exact", "none")


class HyperplaneLSH:
    """Random-hyperplane LSH index over unit-normalized vectors.

    ``n_bits`` hyperplanes per table give ``2^n_bits`` buckets; ``n_tables``
    independent tables trade recall for candidate count.
    """

    def __init__(self, dim: int, n_bits: int = 8, n_tables: int = 4,
                 seed: int = 0):
        if n_bits <= 0 or n_tables <= 0:
            raise ValueError("n_bits and n_tables must be positive")
        rng = np.random.default_rng(seed)
        self.planes = [rng.normal(size=(dim, n_bits)) for _ in range(n_tables)]
        self._tables: list[dict[int, np.ndarray]] | None = None
        self._bucket_keys: list[np.ndarray] | None = None
        self._n_indexed = 0

    def _projections(self, vectors: np.ndarray, table: int) -> np.ndarray:
        return vectors @ self.planes[table]

    def _signatures(self, vectors: np.ndarray, table: int) -> np.ndarray:
        bits = self._projections(vectors, table) > 0
        weights = 1 << np.arange(bits.shape[1])
        return bits @ weights

    def index(self, vectors: np.ndarray) -> None:
        """Index the target-side vectors."""
        self._tables = []
        self._bucket_keys = []
        self._n_indexed = len(vectors)
        for table in range(len(self.planes)):
            buckets: dict[int, list[int]] = defaultdict(list)
            for row, signature in enumerate(self._signatures(vectors, table)):
                buckets[int(signature)].append(row)
            frozen = {key: np.asarray(rows, dtype=np.int64)
                      for key, rows in buckets.items()}
            self._tables.append(frozen)
            self._bucket_keys.append(
                np.fromiter(frozen, dtype=np.int64, count=len(frozen))
            )

    def _probe_signatures(self, projections: np.ndarray,
                          probes: int) -> np.ndarray:
        """Per-query probe sequence: own bucket plus single-bit flips.

        Flips the ``probes`` lowest-|margin| bits one at a time — the
        buckets the query was closest to falling into (multi-probe LSH).
        Returns shape ``(n_queries, 1 + probes)``.
        """
        bits = projections > 0
        weights = 1 << np.arange(bits.shape[1])
        base = bits @ weights
        probes = min(probes, bits.shape[1])
        if probes <= 0:
            return base[:, None]
        flip_order = np.argsort(np.abs(projections), axis=1)[:, :probes]
        flipped = base[:, None] ^ np.take(weights, flip_order)
        return np.concatenate([base[:, None], flipped], axis=1)

    def _nearest_bucket(self, table: int, signature: int) -> np.ndarray:
        """Members of the occupied bucket closest in Hamming distance."""
        keys = self._bucket_keys[table]
        distances = np.bitwise_count(keys ^ signature)
        return self._tables[table][int(keys[distances.argmin()])]

    def candidates(self, vectors: np.ndarray, probes: int = 0,
                   fallback: str = "nearest") -> list[np.ndarray]:
        """Candidate target rows for each query row.

        ``probes`` extra buckets per table are visited via multi-probe;
        queries whose buckets are all empty are rescued according to
        ``fallback``: ``"nearest"`` (closest occupied bucket per table),
        ``"exact"`` (every indexed row) or ``"none"`` (legacy behaviour —
        an empty candidate array).
        """
        if self._tables is None:
            raise RuntimeError("call index() before candidates()")
        if fallback not in _FALLBACKS:
            raise ValueError(f"fallback must be one of {_FALLBACKS}")
        per_query: list[set[int]] = [set() for _ in range(len(vectors))]
        for table in range(len(self.planes)):
            projections = self._projections(vectors, table)
            signatures = self._probe_signatures(projections, probes)
            buckets = self._tables[table]
            for row in range(len(vectors)):
                for signature in signatures[row]:
                    hit = buckets.get(int(signature))
                    if hit is not None:
                        per_query[row].update(hit.tolist())
        out: list[np.ndarray] = []
        for row, found in enumerate(per_query):
            if found or fallback == "none":
                out.append(np.fromiter(found, dtype=np.int64, count=len(found)))
            elif fallback == "exact":
                out.append(np.arange(self._n_indexed, dtype=np.int64))
            else:  # nearest occupied bucket, per table
                rescue: set[int] = set()
                for table in range(len(self.planes)):
                    signature = int(self._signatures(vectors[row:row + 1],
                                                     table)[0])
                    rescue.update(self._nearest_bucket(table,
                                                       signature).tolist())
                out.append(np.fromiter(rescue, dtype=np.int64,
                                       count=len(rescue)))
        return out


def blocked_greedy_alignment(
    source: np.ndarray,
    target: np.ndarray,
    n_bits: int = 8,
    n_tables: int = 4,
    seed: int = 0,
    probes: int = 0,
    fallback: str = "nearest",
) -> tuple[np.ndarray, float]:
    """Greedy nearest-neighbor alignment restricted to LSH candidates.

    Returns ``(assignment, candidate_fraction)`` where ``assignment[i]`` is
    the chosen target row (-1 when no candidate survived blocking, which
    only happens with ``fallback="none"``) and ``candidate_fraction`` is
    the average share of the target side that was actually scored — the
    speedup knob.
    """
    def normalize(matrix):
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        return matrix / np.maximum(norms, 1e-12)

    source = normalize(source)
    target = normalize(target)
    lsh = HyperplaneLSH(source.shape[1], n_bits=n_bits, n_tables=n_tables,
                        seed=seed)
    lsh.index(target)
    candidate_lists = lsh.candidates(source, probes=probes, fallback=fallback)
    assignment = np.full(len(source), -1, dtype=np.int64)
    scored = 0
    for row, candidates in enumerate(candidate_lists):
        if candidates.size == 0:
            continue
        scores = target[candidates] @ source[row]
        assignment[row] = candidates[int(scores.argmax())]
        scored += candidates.size
    fraction = scored / max(1, len(source) * len(target))
    return assignment, fraction
