"""Distance metrics of the alignment module (Figure 4).

All functions return *similarity* matrices (larger = more similar) so the
inference strategies can share one convention.  Cosine, Euclidean and
Manhattan are the three metrics the surveyed approaches use (Table 1);
CSLS (Eq. 7) is the hubness-corrected metric of §6.1.2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "euclidean_similarity",
    "manhattan_similarity",
    "similarity_matrix",
    "csls",
    "METRICS",
    "top_scores",
]


def _normalize_rows(x: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity, shape ``(len(source), len(target))``."""
    return _normalize_rows(source) @ _normalize_rows(target).T


def euclidean_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negated pairwise Euclidean distance."""
    source_sq = (source**2).sum(axis=1)[:, None]
    target_sq = (target**2).sum(axis=1)[None, :]
    squared = source_sq + target_sq - 2.0 * source @ target.T
    return -np.sqrt(np.maximum(squared, 0.0))


def manhattan_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Negated pairwise L1 distance (blocked to bound memory)."""
    n, m = len(source), len(target)
    out = np.empty((n, m))
    block = max(1, 2**22 // max(m * source.shape[1], 1))
    for start in range(0, n, block):
        stop = min(start + block, n)
        out[start:stop] = -np.abs(
            source[start:stop, None, :] - target[None, :, :]
        ).sum(axis=2)
    return out


METRICS = {
    "cosine": cosine_similarity,
    "euclidean": euclidean_similarity,
    "manhattan": manhattan_similarity,
}


def similarity_matrix(
    source: np.ndarray, target: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Pairwise similarity under a named metric."""
    try:
        func = METRICS[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; choose from {sorted(METRICS)}"
        ) from None
    return func(source, target)


def top_scores(similarity: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row abstention signals: best score and top-1/top-2 margin.

    The two confidence signals the NIL-aware evaluation and the serving
    layer abstain on: a low best score means *nothing* looks like a
    counterpart; a low margin means the ranking cannot distinguish the
    top candidates.  With a single candidate column the margin is
    ``+inf`` (no competitor), so margin-based abstention never fires.
    """
    n_rows, n_cols = similarity.shape
    if n_cols == 0:
        return np.zeros(n_rows), np.zeros(n_rows)
    if n_cols == 1:
        best = similarity[:, 0].astype(float)
        return best, np.full(n_rows, np.inf)
    part = np.partition(similarity, -2, axis=1)[:, -2:]
    best = part[:, 1].astype(float)
    return best, best - part[:, 0]


def csls(similarity: np.ndarray, k: int = 10) -> np.ndarray:
    """Cross-domain similarity local scaling (Eq. 7).

    ``CSLS(s, t) = 2 sim(s, t) - psi_t(s) - psi_s(t)`` where ``psi`` is the
    average similarity to the k nearest neighbors in the other domain.
    Penalizes hub entities and lifts isolated ones.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    k_row = min(k, similarity.shape[1])
    k_col = min(k, similarity.shape[0])
    # Average of the k largest entries per row / per column.
    top_rows = np.partition(similarity, -k_row, axis=1)[:, -k_row:]
    psi_source = top_rows.mean(axis=1)  # psi_t(x_s), per source entity
    top_cols = np.partition(similarity, -k_col, axis=0)[-k_col:, :]
    psi_target = top_cols.mean(axis=0)  # psi_s(x_t), per target entity
    return 2.0 * similarity - psi_source[:, None] - psi_target[None, :]
