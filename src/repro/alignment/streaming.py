"""Streaming similarity for large candidate spaces (§7.2, large-scale).

The paper measures ~8 minutes for a full pairwise cosine matrix on a
100K dataset and calls for candidate-space reduction.  This module keeps
memory bounded instead: the similarity matrix is produced block by
block and reduced to per-source top-k candidates on the fly, so aligning
N x M entities needs O(N * k) memory rather than O(N * M).
"""

from __future__ import annotations

import numpy as np

__all__ = ["topk_similarity", "streaming_greedy_alignment"]


def _normalize(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


def topk_similarity(
    source: np.ndarray,
    target: np.ndarray,
    k: int = 10,
    block: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-source top-k cosine candidates, computed in blocks.

    Returns ``(indices, scores)`` of shape ``(len(source), k)``, both
    sorted by decreasing score.  Peak memory is ``O(block * len(target))``
    instead of the full matrix.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    source = _normalize(source)
    target = _normalize(target)
    k = min(k, len(target))
    n = len(source)
    indices = np.zeros((n, k), dtype=np.int64)
    scores = np.zeros((n, k))
    for start in range(0, n, block):
        stop = min(start + block, n)
        sim = source[start:stop] @ target.T
        top = np.argpartition(-sim, k - 1, axis=1)[:, :k]
        top_scores = np.take_along_axis(sim, top, axis=1)
        order = np.argsort(-top_scores, axis=1)
        indices[start:stop] = np.take_along_axis(top, order, axis=1)
        scores[start:stop] = np.take_along_axis(top_scores, order, axis=1)
    return indices, scores


def streaming_greedy_alignment(
    source: np.ndarray,
    target: np.ndarray,
    block: int = 1024,
    csls_k: int = 0,
) -> np.ndarray:
    """Greedy nearest-neighbor alignment without the full matrix.

    With ``csls_k > 0`` the CSLS correction is applied using streaming
    estimates of the neighborhood densities (two passes over the data).
    """
    source_n = _normalize(source)
    target_n = _normalize(target)
    if csls_k <= 0:
        indices, _ = topk_similarity(source, target, k=1, block=block)
        return indices[:, 0]

    k = min(csls_k, len(target), len(source))
    # pass 1: neighborhood densities psi_t(s) and psi_s(t)
    _, source_top = topk_similarity(source, target, k=k, block=block)
    psi_source = source_top.mean(axis=1)
    _, target_top = topk_similarity(target, source, k=k, block=block)
    psi_target = target_top.mean(axis=1)
    # pass 2: blockwise CSLS argmax
    n = len(source)
    result = np.zeros(n, dtype=np.int64)
    for start in range(0, n, block):
        stop = min(start + block, n)
        sim = source_n[start:stop] @ target_n.T
        adjusted = 2.0 * sim - psi_source[start:stop, None] - psi_target[None, :]
        result[start:stop] = adjusted.argmax(axis=1)
    return result
