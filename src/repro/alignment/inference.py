"""Alignment inference strategies (§2.2.2).

Given a source-by-target similarity matrix, produce a predicted alignment:

* **greedy** nearest-neighbor search — what every surveyed approach uses;
* **stable marriage** — the Gale-Shapley strategy evaluated in Table 6;
* **Kuhn-Munkres** (Hungarian) — the collective O(N^3) strategy, solved
  with :func:`scipy.optimize.linear_sum_assignment`.

Every strategy can additionally *abstain*: with ``min_score`` /
``min_margin`` set, low-confidence sources are mapped to ``-1`` (NIL)
instead of being forced onto their least-bad candidate — the correct
behaviour on corrupted datasets where some entities genuinely have no
counterpart (docs/robustness.md, "Data-level robustness").
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from .metrics import top_scores

__all__ = [
    "greedy_alignment",
    "stable_marriage",
    "hungarian_alignment",
    "heuristic_matching",
    "apply_abstention",
    "INFERENCE_STRATEGIES",
    "infer_alignment",
]


def apply_abstention(
    similarity: np.ndarray,
    assignment: np.ndarray,
    min_score: float | None = None,
    min_margin: float | None = None,
) -> np.ndarray:
    """Map low-confidence assignments to ``-1`` (NIL).

    A source abstains when its *assigned* similarity falls below
    ``min_score`` or its row's top-1/top-2 margin falls below
    ``min_margin``.  With both thresholds ``None`` the assignment is
    returned unchanged.
    """
    if min_score is None and min_margin is None:
        return assignment
    result = np.asarray(assignment, dtype=np.int64).copy()
    assigned = result >= 0
    if min_score is not None:
        rows = np.where(assigned)[0]
        scores = similarity[rows, result[rows]]
        result[rows[scores < min_score]] = -1
        assigned = result >= 0
    if min_margin is not None:
        _, margins = top_scores(similarity)
        result[assigned & (margins < min_margin)] = -1
    return result


def greedy_alignment(
    similarity: np.ndarray,
    min_score: float | None = None,
    min_margin: float | None = None,
) -> np.ndarray:
    """For each source row, the index of its most similar target.

    Several sources may pick the same target (the 1-to-1 violations the
    hubness analysis of Figure 10 counts).  With ``min_score`` /
    ``min_margin`` set, low-confidence sources abstain to ``-1`` (NIL).
    """
    return apply_abstention(
        similarity, similarity.argmax(axis=1), min_score, min_margin
    )


def stable_marriage(
    similarity: np.ndarray,
    min_score: float | None = None,
    min_margin: float | None = None,
) -> np.ndarray:
    """Gale-Shapley stable matching; sources propose, targets accept/reject.

    Returns, per source row, the matched target index, or -1 for sources
    left unmatched (only possible when there are more sources than
    targets) or abstaining under ``min_score`` / ``min_margin``.
    """
    n_source, n_target = similarity.shape
    # Preference lists: targets in decreasing similarity per source.
    preference = np.argsort(-similarity, axis=1)
    next_choice = np.zeros(n_source, dtype=np.int64)
    match_of_target = np.full(n_target, -1, dtype=np.int64)
    match_of_source = np.full(n_source, -1, dtype=np.int64)
    free = list(range(n_source))
    while free:
        source = free.pop()
        while next_choice[source] < n_target:
            target = int(preference[source, next_choice[source]])
            next_choice[source] += 1
            holder = match_of_target[target]
            if holder == -1:
                match_of_target[target] = source
                match_of_source[source] = target
                break
            if similarity[source, target] > similarity[holder, target]:
                match_of_target[target] = source
                match_of_source[source] = target
                match_of_source[holder] = -1
                free.append(holder)
                break
    return apply_abstention(similarity, match_of_source, min_score, min_margin)


def heuristic_matching(similarity: np.ndarray) -> np.ndarray:
    """Near-linear-time collective matching (§2.2.2's heuristic option).

    Sorts all mutual-nearest-neighbor candidates plus per-row maxima by
    similarity and greedily commits conflict-free pairs — the classic
    cheap approximation of maximum-weight bipartite matching.  Returns,
    per source row, the matched target or -1.
    """
    n_source, n_target = similarity.shape
    row_best = similarity.argmax(axis=1)
    col_best = similarity.argmax(axis=0)
    candidates = {(i, int(row_best[i])) for i in range(n_source)}
    candidates.update((int(col_best[j]), j) for j in range(n_target))
    ordered = sorted(candidates, key=lambda ij: -similarity[ij[0], ij[1]])
    result = np.full(n_source, -1, dtype=np.int64)
    taken = np.zeros(n_target, dtype=bool)
    for i, j in ordered:
        if result[i] == -1 and not taken[j]:
            result[i] = j
            taken[j] = True
    # second pass: unmatched sources take their best free target
    for i in np.where(result == -1)[0]:
        free = np.where(~taken)[0]
        if free.size == 0:
            break
        j = free[int(similarity[i, free].argmax())]
        result[i] = j
        taken[j] = True
    return result


def hungarian_alignment(similarity: np.ndarray) -> np.ndarray:
    """Globally optimal 1-to-1 assignment maximizing total similarity.

    Returns, per source row, the assigned target index, or -1 when there
    are more sources than targets and the source was left out.
    """
    rows, cols = linear_sum_assignment(similarity, maximize=True)
    result = np.full(similarity.shape[0], -1, dtype=np.int64)
    result[rows] = cols
    return result


INFERENCE_STRATEGIES = {
    "greedy": greedy_alignment,
    "stable_marriage": stable_marriage,
    "hungarian": hungarian_alignment,
    "heuristic": heuristic_matching,
}


def infer_alignment(
    similarity: np.ndarray,
    strategy: str = "greedy",
    min_score: float | None = None,
    min_margin: float | None = None,
) -> np.ndarray:
    """Run a named inference strategy on a similarity matrix.

    ``min_score`` / ``min_margin`` enable abstention for *any* strategy:
    low-confidence sources come back as ``-1`` (NIL).
    """
    try:
        func = INFERENCE_STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown strategy {strategy!r}; choose from {sorted(INFERENCE_STRATEGIES)}"
        ) from None
    return apply_abstention(similarity, func(similarity), min_score, min_margin)
