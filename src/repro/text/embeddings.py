"""Word and character embedding tables.

Substitute for the pre-trained fastText cross-lingual vectors the paper
uses to initialize literal embeddings.  Each word's base vector is derived
deterministically from a hash of its *canonical* (English) form, so the
pseudo-translations of a word land near its original — exactly the property
cross-lingual word embeddings provide — with per-language Gaussian noise
standing in for imperfect alignment of the embedding spaces.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .translate import LANGUAGES, translate_back

__all__ = ["WordEmbeddingTable", "CharEmbeddingTable", "embed_text"]


def _hash_vector(token: str, dim: int, salt: str = "") -> np.ndarray:
    """Deterministic unit Gaussian vector for ``token``."""
    digest = hashlib.sha256(f"{salt}:{token}".encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "big")
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


class WordEmbeddingTable:
    """Cross-lingually anchored word vectors.

    ``language`` names which synthetic language the looked-up tokens are
    written in; tokens are mapped back to their canonical form before
    hashing so that translations share a base vector.  ``noise`` controls
    the per-language perturbation (0 = perfectly aligned spaces).
    """

    def __init__(self, dim: int = 32, language: str = "en",
                 noise: float = 0.3, seed: int = 0):
        if language not in LANGUAGES:
            raise KeyError(f"unknown language {language!r}; choose from {sorted(LANGUAGES)}")
        self.dim = dim
        self.language = language
        self.noise = noise
        self.seed = seed
        self._cache: dict[str, np.ndarray] = {}

    def vector(self, token: str) -> np.ndarray:
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        canonical = translate_back(token, self.language)
        base = _hash_vector(canonical, self.dim)
        if self.noise > 0.0 and self.language != "en":
            perturbation = _hash_vector(token, self.dim, salt=f"lang:{self.language}:{self.seed}")
            base = base + self.noise * perturbation
            base = base / np.linalg.norm(base)
        self._cache[token] = base
        return base

    def embed_text(self, text: str) -> np.ndarray:
        """Mean of the token vectors; zero vector for empty text."""
        tokens = [t for t in text.split() if t]
        if not tokens:
            return np.zeros(self.dim)
        return np.mean([self.vector(t) for t in tokens], axis=0)


class CharEmbeddingTable:
    """Deterministic character vectors for character-level literal encoders
    (AttrE's Eq. 5)."""

    def __init__(self, dim: int = 16, seed: int = 0):
        self.dim = dim
        self.seed = seed
        self._cache: dict[str, np.ndarray] = {}

    def vector(self, char: str) -> np.ndarray:
        cached = self._cache.get(char)
        if cached is not None:
            return cached
        vec = _hash_vector(char, self.dim, salt=f"char:{self.seed}")
        self._cache[char] = vec
        return vec

    def embed_literal(self, literal: str, max_chars: int = 40) -> np.ndarray:
        """Positionally weighted sum of character vectors (``comb`` in Eq. 5).

        A mild positional decay keeps the composition order-sensitive, so
        anagrams do not collide.
        """
        chars = list(literal[:max_chars])
        if not chars:
            return np.zeros(self.dim)
        weights = np.array([0.95**i for i in range(len(chars))])
        vectors = np.stack([self.vector(c) for c in chars])
        combined = (weights[:, None] * vectors).sum(axis=0)
        norm = np.linalg.norm(combined)
        return combined / norm if norm > 0 else combined


def embed_text(text: str, table: WordEmbeddingTable) -> np.ndarray:
    """Convenience wrapper around :meth:`WordEmbeddingTable.embed_text`."""
    return table.embed_text(text)
