"""Text substrate: pseudo-translation, string similarity, literal embeddings."""

from .embeddings import CharEmbeddingTable, WordEmbeddingTable, embed_text
from .similarity import (
    jaccard_tokens,
    levenshtein,
    normalized_levenshtein,
    string_similarity,
    trigram_similarity,
)
from .translate import LANGUAGES, Language, pseudo_translate, translate_back

__all__ = [
    "Language", "LANGUAGES", "pseudo_translate", "translate_back",
    "levenshtein", "normalized_levenshtein", "jaccard_tokens",
    "trigram_similarity", "string_similarity",
    "WordEmbeddingTable", "CharEmbeddingTable", "embed_text",
]
