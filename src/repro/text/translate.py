"""Deterministic pseudo-translation between synthetic "languages".

The paper's cross-lingual datasets (EN-FR, EN-DE) contain literals in
different natural languages; LogMap and PARIS consume them after Google
Translate.  We substitute a deterministic, per-language character
substitution plus morphological suffix.  It preserves what matters for the
experiments:

* aligned entities have literals that are *systematically related* but not
  string-equal across KGs (symbolic heterogeneity);
* a "machine translation" capability exists (:func:`translate_back`) whose
  quality can be degraded with a controllable error rate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["Language", "LANGUAGES", "pseudo_translate", "translate_back"]


@dataclass(frozen=True)
class Language:
    """A synthetic language: a consonant/vowel substitution plus a suffix."""

    name: str
    substitution: dict[str, str]
    suffix: str

    def inverse_substitution(self) -> dict[str, str]:
        return {v: k for k, v in self.substitution.items()}


def _make_language(name: str, rotation: int, suffix: str) -> Language:
    """Build a language from a *partial* rotation of letter sets.

    Only a subset of the consonants and vowels is substituted (rotated
    within its class), mirroring how real language pairs like EN/FR share
    most of their spelling: pseudo-translations are systematically
    different yet retain substantial character overlap, which keeps
    character-level encoders (AttrE) partially effective cross-lingually.
    The mapping stays bijective.
    """
    moved_vowels = "aeo"          # i, u untouched
    moved_consonants = "bdgkmprt"  # the rest untouched
    table = {}
    for i, ch in enumerate(moved_vowels):
        table[ch] = moved_vowels[(i + rotation) % len(moved_vowels)]
    for i, ch in enumerate(moved_consonants):
        table[ch] = moved_consonants[(i + rotation) % len(moved_consonants)]
    return Language(name=name, substitution=table, suffix=suffix)


LANGUAGES: dict[str, Language] = {
    "en": Language(name="en", substitution={}, suffix=""),
    "fr": _make_language("fr", rotation=2, suffix="eu"),
    "de": _make_language("de", rotation=4, suffix="en"),
}


def _translate_token(token: str, language: Language) -> str:
    if not language.substitution:
        return token
    translated = "".join(language.substitution.get(ch, ch) for ch in token)
    if token and token[-1].isalpha():
        translated += language.suffix
    return translated


def _untranslate_token(token: str, language: Language) -> str:
    if not language.substitution:
        return token
    if language.suffix and token.endswith(language.suffix):
        token = token[: -len(language.suffix)]
    inverse = language.inverse_substitution()
    return "".join(inverse.get(ch, ch) for ch in token)


def pseudo_translate(text: str, language: str | Language) -> str:
    """Translate ``text`` from the canonical language ("en") into ``language``."""
    if isinstance(language, str):
        language = LANGUAGES[language]
    return " ".join(_translate_token(token, language) for token in text.split(" "))


def translate_back(
    text: str,
    language: str | Language,
    error_rate: float = 0.0,
    seed: int = 0,
) -> str:
    """Invert :func:`pseudo_translate` with a controllable error rate.

    Stands in for machine translation: each token is corrupted (replaced by
    a hash-derived wrong token) independently with probability
    ``error_rate``.  Corruption is deterministic given ``(text, seed)``.
    """
    if isinstance(language, str):
        language = LANGUAGES[language]
    tokens = []
    for position, token in enumerate(text.split(" ")):
        recovered = _untranslate_token(token, language)
        if error_rate > 0.0:
            digest = hashlib.sha1(
                f"{seed}:{position}:{token}".encode("utf-8")
            ).digest()
            draw = int.from_bytes(digest[:4], "big") / 2**32
            if draw < error_rate:
                rng = np.random.default_rng(int.from_bytes(digest[4:8], "big"))
                letters = "abcdefghijklmnopqrstuvwxyz"
                recovered = "".join(
                    rng.choice(list(letters)) for _ in range(max(3, len(recovered)))
                )
        tokens.append(recovered)
    return " ".join(tokens)
