"""String similarity measures used by conventional matchers and IMUSE."""

from __future__ import annotations

__all__ = [
    "levenshtein",
    "normalized_levenshtein",
    "jaccard_tokens",
    "trigram_similarity",
    "string_similarity",
]


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance with O(min(|a|,|b|)) memory."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """1 - edit_distance / max_length, in [0, 1]; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaccard_tokens(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets."""
    set_a, set_b = set(a.split()), set(b.split())
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def _trigrams(text: str) -> set[str]:
    padded = f"  {text} "
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(a: str, b: str) -> float:
    """Dice coefficient over character trigrams (pg_trgm-style)."""
    tri_a, tri_b = _trigrams(a), _trigrams(b)
    if not tri_a and not tri_b:
        return 1.0
    denominator = len(tri_a) + len(tri_b)
    if denominator == 0:
        return 1.0
    return 2.0 * len(tri_a & tri_b) / denominator


def string_similarity(a: str, b: str) -> float:
    """Blend of edit and trigram similarity used as a default by matchers."""
    return 0.5 * normalized_levenshtein(a, b) + 0.5 * trigram_similarity(a, b)
