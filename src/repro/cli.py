"""Command-line interface: dataset tooling and the serving layer.

Dataset verbs mirror how the paper's datasets were released: a
directory per dataset with ``rel_triples_*``, ``attr_triples_*``,
``ent_links`` and the ``721_5fold`` splits.  Serving verbs turn a
trained run into a queryable deployment (see ``docs/serving.md``).

Usage::

    python -m repro.cli generate --family EN-FR --size 1500 --version V1 \
        --out datasets/EN_FR_15K_V1
    python -m repro.cli stats datasets/EN_FR_15K_V1
    python -m repro.cli serve-build --store store/ --family EN-FR --size 200
    python -m repro.cli serve-query --store store/ --index ivf --sample 5
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

from .datagen import FAMILIES, benchmark_pair
from .kg import dataset_summary, load_pair, save_pair, save_splits, validate_pair

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="OpenEA-reproduction dataset tooling"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a benchmark dataset (world -> views -> IDS)"
    )
    generate.add_argument("--family", choices=sorted(FAMILIES), required=True)
    generate.add_argument("--size", type=int, default=1500,
                          help="target number of aligned entities")
    generate.add_argument("--version", choices=["V1", "V2"], default="V1")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--method", choices=["ids", "ras", "prs", "direct"],
                          default="ids")
    generate.add_argument("--dangling-rate", type=float, default=0.0,
                          help="fraction of aligned entities made dangling "
                               "(counterpart removed; docs/robustness.md)")
    generate.add_argument("--link-noise-rate", type=float, default=0.0,
                          help="fraction of alignment links rewired to a "
                               "wrong target")
    generate.add_argument("--attr-missing-rate", type=float, default=0.0,
                          help="fraction of attribute triples dropped")
    generate.add_argument("--out", type=Path, required=True,
                          help="output directory (OpenEA layout)")

    stats = commands.add_parser("stats", help="print statistics of a dataset")
    stats.add_argument("directory", type=Path)

    validate = commands.add_parser(
        "validate", help="check a dataset's benchmark invariants"
    )
    validate.add_argument("directory", type=Path)

    train = commands.add_parser(
        "train",
        help="train one approach crash-safely (checkpoint + resume)",
    )
    train.add_argument("--family", choices=sorted(FAMILIES), default="EN-FR")
    train.add_argument("--size", type=int, default=150)
    train.add_argument("--method", choices=["ids", "ras", "prs", "direct"],
                       default="direct")
    train.add_argument("--approach", default="MTransE")
    train.add_argument("--dim", type=int, default=16)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--valid-every", type=int, default=0)
    train.add_argument("--checkpoint-dir", type=Path, default=None,
                       help="checkpoint directory (enables crash safety)")
    train.add_argument("--checkpoint-every", type=int, default=1,
                       help="checkpoint every N epochs (default 1)")
    train.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint-dir if a "
                            "checkpoint exists")
    train.add_argument("--probe-every", type=int, default=0,
                       help="streaming quality probe every N epochs "
                            "(0 disables)")
    train.add_argument("--probe-sample", type=int, default=64,
                       help="validation pairs per probe (default 64)")
    train.add_argument("--sentinel", action="store_true",
                       help="enable divergence sentinels (abort with "
                            "status 'diverged', exit code 4)")
    train.add_argument("--quality-out", type=Path, default=None,
                       help="write probe curves to this quality.jsonl "
                            "(default: checkpoint-dir/quality.jsonl)")

    build = commands.add_parser(
        "serve-build",
        help="train (or import) embeddings and persist a store version",
    )
    build.add_argument("--store", type=Path, required=True,
                       help="embedding store directory")
    build.add_argument("--snapshot", type=Path,
                       help="import an existing EmbeddingSnapshot .npz "
                            "instead of training")
    build.add_argument("--family", choices=sorted(FAMILIES), default="EN-FR")
    build.add_argument("--size", type=int, default=200)
    build.add_argument("--dataset-version", choices=["V1", "V2"],
                       default="V1")
    build.add_argument("--method", choices=["ids", "ras", "prs", "direct"],
                       default="direct")
    build.add_argument("--approach", default="MTransE")
    build.add_argument("--dim", type=int, default=32)
    build.add_argument("--epochs", type=int, default=20)
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--note", default="",
                       help="free-text note recorded in the manifest")
    build.add_argument("--save-index", choices=["ivf"], default=None,
                       help="also build and persist an ANN index for "
                            "the new version")

    query = commands.add_parser(
        "serve-query", help="answer alignment queries from a store version"
    )
    query.add_argument("--store", type=Path, required=True)
    query.add_argument("--store-version", default=None,
                       help="version id (default: latest)")
    query.add_argument("--index", choices=["exact", "lsh", "ivf", "saved"],
                       default="exact",
                       help="'saved' loads the version's persisted index, "
                            "degrading to exact search if it is corrupt")
    query.add_argument("--no-verify", action="store_true",
                       help="with --index saved: skip the store checksum "
                            "verification at load")
    query.add_argument("--k", type=int, default=5)
    query.add_argument("--entity", action="append", default=[],
                       help="source entity to align (repeatable)")
    query.add_argument("--sample", type=int, default=0,
                       help="additionally query N random source entities")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--batch-size", type=int, default=256)
    query.add_argument("--cache-size", type=int, default=1024)
    query.add_argument("--recall-sample", type=int, default=0,
                       help="estimate recall@k vs exact on N sampled queries")
    query.add_argument("--abstain-threshold", type=float, default=None,
                       help="abstain when the top-1 score falls below this "
                            "(default: the store's calibrated threshold, "
                            "if persisted)")
    query.add_argument("--abstain-margin", type=float, default=None,
                       help="abstain when the top-1/top-2 margin falls "
                            "below this")

    sweep = commands.add_parser(
        "sweep",
        help="run a budget-aware parallel hyperparameter sweep from a "
             "TOML/JSON spec (see docs/orchestration.md)",
    )
    sweep.add_argument("--spec", type=Path, required=True,
                       help="sweep spec file (.toml or .json)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = inline serial)")
    sweep.add_argument("--workdir", type=Path, default=None,
                       help="crash-safe state: sweep progress + training "
                            "checkpoints; rerun with the same dir to resume")
    sweep.add_argument("--out", type=Path, default=None,
                       help="also write the result table to this file")
    sweep.add_argument("--no-record", action="store_true",
                       help="do not append ledger records for this sweep")
    sweep.add_argument("--compare-serial", action="store_true",
                       help="rerun the sweep with jobs=1 and report the "
                            "speedup + verify bit-identical metrics")

    obs_report = commands.add_parser(
        "obs-report",
        help="render a telemetry events.jsonl into a per-phase breakdown",
    )
    obs_report.add_argument("events", type=Path,
                            help="events.jsonl written by repro.obs, a "
                                 "directory of per-process *.jsonl files, "
                                 "or a glob (quote it)")
    obs_report.add_argument("--chrome", type=Path, default=None,
                            help="also write a chrome://tracing file here")

    obs_top = commands.add_parser(
        "obs-top",
        help="live dashboard for a running sweep (reads the telemetry "
             "files under its --workdir)",
    )
    obs_top.add_argument("workdir", type=Path,
                         help="the sweep's --workdir (or its telemetry/ "
                              "subdirectory)")
    obs_top.add_argument("--once", action="store_true",
                         help="render one frame and exit")
    obs_top.add_argument("--json", action="store_true",
                         help="print the machine-readable sweep state "
                              "(implies --once)")
    obs_top.add_argument("--interval", type=float, default=1.0,
                         help="refresh interval in seconds (default 1.0)")

    obs_smoke = commands.add_parser(
        "obs-smoke",
        help="run a small fully-instrumented training and report it",
    )
    obs_smoke.add_argument("--out", type=Path, default=Path("obs_smoke"),
                           help="directory for events.jsonl + trace.json")
    obs_smoke.add_argument("--family", choices=sorted(FAMILIES),
                           default="EN-FR")
    obs_smoke.add_argument("--size", type=int, default=150)
    obs_smoke.add_argument("--epochs", type=int, default=2)
    obs_smoke.add_argument("--dim", type=int, default=32)
    obs_smoke.add_argument("--seed", type=int, default=0)

    obs_ledger = commands.add_parser(
        "obs-ledger",
        help="inspect the run ledger (list / show / tail / compact)",
    )
    obs_ledger.add_argument("action",
                            choices=["list", "show", "tail", "compact"])
    obs_ledger.add_argument("run_id", nargs="?", default=None,
                            help="run id (required for `show`)")
    obs_ledger.add_argument("--ledger", type=Path, default=None,
                            help="ledger path (default: REPRO_LEDGER_PATH "
                                 "or reports/ledger.jsonl)")
    obs_ledger.add_argument("-n", type=int, default=10,
                            help="rows for `tail` / runs kept per "
                                 "fingerprint by `compact`")
    obs_ledger.add_argument("--sweep", default=None,
                            help="restrict to records of one sweep "
                                 "(full `name@fingerprint` id or just "
                                 "the sweep name)")

    obs_gate = commands.add_parser(
        "obs-gate",
        help="compare the latest run against its ledger baseline; "
             "exit 1 on regression",
    )
    obs_gate.add_argument("--ledger", type=Path, default=None)
    obs_gate.add_argument("--run", default=None,
                          help="run id to gate (default: latest)")
    obs_gate.add_argument("--metric", action="append", default=[],
                          help="metric to judge (repeatable; default: "
                               "every known metric the run carries)")
    obs_gate.add_argument("--n-baseline", type=int, default=5,
                          help="trailing same-fingerprint runs to "
                               "compare against (default 5)")
    obs_gate.add_argument("--rel-threshold", type=float, default=None,
                          help="override every metric's relative-change "
                               "threshold (e.g. 0.1 for 10%%)")
    obs_gate.add_argument("--json", action="store_true",
                          help="print the machine-readable verdict")
    obs_gate.add_argument("--sweep", default=None,
                          help="gate within one sweep's records only "
                               "(`name@fingerprint` id or sweep name)")

    obs_conformance = commands.add_parser(
        "obs-conformance",
        help="compare ledger CV/sweep records against the paper's "
             "reference tables; exit 1 on drift, 2 when nothing joins",
    )
    obs_conformance.add_argument("--ledger", type=Path, default=None)
    obs_conformance.add_argument("--reference", type=Path, default=None,
                                 help="paper_tables.json (default: "
                                      "benchmarks/reference/"
                                      "paper_tables.json)")
    obs_conformance.add_argument("--rel-tolerance", type=float, default=None,
                                 help="override the reference file's "
                                      "relative tolerance")
    obs_conformance.add_argument("--sweep", default=None,
                                 help="join one sweep's records only")
    obs_conformance.add_argument("--json", action="store_true",
                                 help="print the machine-readable report")

    obs_quality = commands.add_parser(
        "obs-quality",
        help="render a quality.jsonl probe stream as a learning-curve "
             "table",
    )
    obs_quality.add_argument("quality_file", type=Path)

    quality_smoke = commands.add_parser(
        "quality-smoke",
        help="end-to-end quality-observability check: probe-instrumented "
             "tiny CV, a sentinel-tripped diverging run, and a "
             "conformance report",
    )
    quality_smoke.add_argument("--out", type=Path, default=Path("quality_smoke"))
    quality_smoke.add_argument("--family", choices=sorted(FAMILIES),
                               default="EN-FR")
    quality_smoke.add_argument("--size", type=int, default=150)
    quality_smoke.add_argument("--dim", type=int, default=16)
    quality_smoke.add_argument("--epochs", type=int, default=8)
    quality_smoke.add_argument("--seed", type=int, default=0)

    robustness = commands.add_parser(
        "robustness",
        help="dangling-entity robustness check: corrupt a smoke pair, "
             "train, calibrate abstention and report NIL-aware metrics",
    )
    robustness.add_argument("--size", type=int, default=400,
                            help="entities in the smoke pair (default 400)")
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument("--dangling-rate", type=float, default=0.2)
    robustness.add_argument("--link-noise-rate", type=float, default=0.0)
    robustness.add_argument("--attr-missing-rate", type=float, default=0.0)
    robustness.add_argument("--approach", default="IMUSE",
                            help="literal-based approaches separate "
                                 "dangling entities best (default IMUSE)")
    robustness.add_argument("--dim", type=int, default=48)
    robustness.add_argument("--epochs", type=int, default=30)
    robustness.add_argument("--method", choices=["threshold", "margin"],
                            default="threshold",
                            help="abstention signal: top-1 score or "
                                 "top1-top2 margin")
    robustness.add_argument("--curve", type=int, default=0,
                            help="also print an N-point abstention "
                                 "threshold sweep")
    robustness.add_argument("--check", action="store_true",
                            help="exit 1 unless dangling F1 >= 0.5 and "
                                 "matchable Hits@1 stays within 5%% of "
                                 "the no-abstention baseline")

    obs_export = commands.add_parser(
        "obs-export",
        help="export recorded metrics in a standard format",
    )
    obs_export.add_argument("--prometheus", action="store_true",
                            help="Prometheus text exposition format")
    obs_export.add_argument("--events", type=Path, default=None,
                            help="take the snapshot from this events.jsonl")
    obs_export.add_argument("--ledger", type=Path, default=None,
                            help="take the snapshot from this run ledger")
    obs_export.add_argument("--run", default=None,
                            help="ledger run id (default: latest)")
    obs_export.add_argument("--out", type=Path, default=None,
                            help="write here instead of stdout")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    pair = benchmark_pair(
        args.family, size=args.size, version=args.version,
        seed=args.seed, method=args.method,
        dangling_rate=args.dangling_rate,
        link_noise_rate=args.link_noise_rate,
        attr_missing_rate=args.attr_missing_rate,
    )
    save_pair(pair, args.out)
    save_splits(pair.five_fold_splits(seed=args.seed), args.out)
    print(f"wrote {pair} to {args.out}")
    corruption = pair.metadata.get("corruption")
    if corruption:
        print(f"  corruption: {len(corruption.get('dangling1', []))} "
              f"dangling in KG1, {len(corruption.get('dangling2', []))} "
              f"in KG2, {len(corruption.get('noisy_links', []))} noisy "
              f"links (manifest in corruption.json)")
    report = validate_pair(pair)
    if not report.ok or report.warnings:
        print(report)
    for side, kg in (("KG1", pair.kg1), ("KG2", pair.kg2)):
        summary = dataset_summary(kg)
        print(f"  {side}: {summary['rel_triples']:.0f} rel triples, "
              f"{summary['attr_triples']:.0f} attr triples, "
              f"avg degree {summary['avg_degree']:.2f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2
    pair = load_pair(args.directory)
    print(pair)
    for side, kg in (("KG1", pair.kg1), ("KG2", pair.kg2)):
        summary = dataset_summary(kg)
        cells = " ".join(f"{key}={value:.6g}" for key, value in summary.items())
        print(f"  {side}: {cells}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2
    report = validate_pair(load_pair(args.directory))
    print(report)
    return 0 if report.ok else 1


def _cmd_train(args: argparse.Namespace) -> int:
    """Crash-safe single-fold training.

    Prints a sha256 over the final parameter matrices so the
    crash-replay suite can compare a killed-and-resumed run against an
    uninterrupted one bit for bit.  Exit code 3 means "interrupted at a
    checkpoint; rerun with --resume to continue".
    """
    import hashlib

    import numpy as np

    from .approaches import ApproachConfig, get_approach

    pair = benchmark_pair(args.family, size=args.size, method=args.method,
                          seed=args.seed)
    split = pair.five_fold_splits(seed=args.seed)[0]
    approach = get_approach(
        args.approach,
        ApproachConfig(dim=args.dim, epochs=args.epochs, seed=args.seed,
                       valid_every=args.valid_every,
                       probe_every=args.probe_every,
                       probe_sample=args.probe_sample,
                       sentinel=args.sentinel),
    )
    log = approach.fit(
        pair, split,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        quality_path=args.quality_out,
    )
    digest = hashlib.sha256()
    for parameter in approach._parameters():
        digest.update(np.ascontiguousarray(parameter.data).tobytes())
    print(f"status={log.status} epochs={log.epochs_run} "
          f"resumed_from={log.resumed_from_epoch}")
    print(f"params_sha256={digest.hexdigest()}")
    if log.probes:
        from .obs import format_quality_table

        print(format_quality_table(log.probes))
    if log.status == "interrupted":
        print(f"interrupted; resume with --resume --checkpoint-dir "
              f"{args.checkpoint_dir}")
        return 3
    metrics = approach.evaluate(split.test)
    print(f"hits@1={metrics.hits_at(1):.6f} mrr={metrics.mrr:.6f}")
    if log.status == "diverged":
        print(f"diverged: {log.diverged_reason}")
        return 4
    return 0


def _cmd_serve_build(args: argparse.Namespace) -> int:
    from .pipeline.checkpoint import EmbeddingSnapshot, load_snapshot
    from .serve import EmbeddingStore

    metadata = {"note": args.note} if args.note else {}
    if args.snapshot is not None:
        if not args.snapshot.is_file():
            print(f"error: {args.snapshot} is not a file", file=sys.stderr)
            return 2
        snapshot = load_snapshot(args.snapshot)
        metadata["imported_from"] = str(args.snapshot)
    else:
        from .approaches import ApproachConfig, get_approach

        pair = benchmark_pair(
            args.family, size=args.size, version=args.dataset_version,
            seed=args.seed, method=args.method,
        )
        split = pair.five_fold_splits(seed=args.seed)[0]
        approach = get_approach(
            args.approach,
            ApproachConfig(dim=args.dim, epochs=args.epochs, valid_every=0),
        )
        approach.fit(pair, split)
        snapshot = EmbeddingSnapshot.from_approach(approach, pair.alignment)
        metadata.update({
            "dataset": pair.name, "approach": args.approach,
            "dim": args.dim, "epochs": args.epochs, "seed": args.seed,
        })
    store = EmbeddingStore(args.store)
    version = store.save(snapshot, metadata=metadata)
    print(f"stored {version} in {args.store}: "
          f"{len(snapshot.sources)} sources x {len(snapshot.targets)} "
          f"targets, dim {snapshot.source_matrix.shape[1]} "
          f"({snapshot.name})")
    if args.save_index:
        import numpy as np

        from .serve import make_index

        index = make_index(args.save_index, seed=args.seed)
        index.build(np.asarray(snapshot.target_matrix))
        path = store.save_index(index, version)
        print(f"persisted {args.save_index} index at {path}")
    return 0


def _cmd_serve_query(args: argparse.Namespace) -> int:
    import numpy as np

    from .serve import EmbeddingStore, QueryEngine, StoreCorruption, \
        recall_vs_exact

    if not args.store.is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    store = EmbeddingStore(args.store)
    abstain = {}
    if args.abstain_threshold is not None:
        abstain["abstain_threshold"] = args.abstain_threshold
    if args.abstain_margin is not None:
        abstain["abstain_margin"] = args.abstain_margin
    try:
        if args.index == "saved":
            # from_store also picks up a threshold calibrated into the
            # store's metadata; explicit flags win
            engine = QueryEngine.from_store(
                store, version=args.store_version,
                verify=not args.no_verify, k=args.k,
                batch_size=args.batch_size, cache_size=args.cache_size,
                **abstain,
            )
            stored = engine.stored
        else:
            stored = store.load(version=args.store_version)
            engine = QueryEngine(stored, index=args.index, k=args.k,
                                 batch_size=args.batch_size,
                                 cache_size=args.cache_size, **abstain)
    except StoreCorruption as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (FileNotFoundError, KeyError) as error:
        # KeyError's str() wraps the message in repr quotes
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    entities = list(args.entity)
    unknown = [e for e in entities if e not in stored.sources]
    if unknown:
        print(f"error: unknown source entities {unknown[:5]}",
              file=sys.stderr)
        return 2
    if args.sample > 0:
        rng = np.random.default_rng(args.seed)
        picks = rng.choice(len(stored.sources),
                           size=min(args.sample, len(stored.sources)),
                           replace=False)
        entities.extend(stored.sources[int(i)] for i in picks)
    if not entities:
        print("error: nothing to query (use --entity and/or --sample)",
              file=sys.stderr)
        return 2
    kind = engine.index.kind if args.index == "saved" else args.index
    print(f"serving {stored.version} ({stored.name}) via {kind} index"
          + (" [DEGRADED to exact]" if engine.degraded else ""))
    for result in engine.query_batch(entities):
        ranked = ", ".join(f"{name}:{score:.3f}"
                           for name, score in result.neighbors[:args.k])
        answer = "NIL (abstained)" if result.abstained else result.best
        print(f"  {result.query} -> {answer} "
              f"(confidence {result.confidence:.3f}) [{ranked}]")
    if args.recall_sample > 0:
        recall = recall_vs_exact(
            engine.index, np.asarray(stored.source_matrix),
            np.asarray(stored.target_matrix), k=args.k,
            sample=args.recall_sample, seed=args.seed,
        )
        print(f"recall@{args.k} vs exact (n={args.recall_sample}): "
              f"{recall:.3f}")
    print(engine.metrics.format())
    # ledger the serving session (no-op unless REPRO_LEDGER_PATH is set)
    from .obs import record_run

    summary = engine.metrics.summary()
    record_run(
        "serve", f"serve-query/{stored.name}",
        config={"dataset": stored.name, "index": args.index, "k": args.k,
                "batch_size": args.batch_size,
                "cache_size": args.cache_size},
        scalars={key: summary[key]
                 for key in ("qps", "p50_ms", "p95_ms", "p99_ms",
                             "cache_hit_rate", "degraded", "abstained")},
        registry=engine.metrics.registry,
    )
    return 0


def _resolve_event_files(spec: Path) -> list[Path]:
    """Expand an obs-report events argument into concrete JSONL files.

    Accepts a single file, a directory (every ``*.jsonl`` inside,
    recursing one level into ``telemetry/``-style layouts via ``**``)
    or a glob pattern relative to the current directory.
    """
    if spec.is_file():
        return [spec]
    if spec.is_dir():
        return sorted(p for p in spec.glob("**/*.jsonl") if p.is_file())
    text = str(spec)
    if any(ch in text for ch in "*?["):
        import glob as _glob

        return sorted(Path(p) for p in _glob.glob(text, recursive=True)
                      if Path(p).is_file())
    return []


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from .obs import (events_to_chrome, format_op_table, format_phase_table,
                      load_events_merged)

    files = _resolve_event_files(args.events)
    if not files:
        print(f"error: {args.events} matched no event files (record one "
              f"with REPRO_BENCH_TRACE=1 or `repro obs-smoke`)",
              file=sys.stderr)
        return 2
    events, skipped = load_events_merged(files)
    if skipped:
        print(f"warning: skipped {skipped} unreadable line(s) in "
              f"{args.events} (interrupted run?)", file=sys.stderr)
    if not events:
        print(f"error: no readable telemetry events in {args.events}",
              file=sys.stderr)
        return 1
    label = (str(args.events) if len(files) == 1
             else f"{args.events} ({len(files)} files)")
    print(f"== telemetry report: {label} ==")
    print(format_phase_table(events))
    op_table = format_op_table(events)
    if op_table:
        print()
        print("== autodiff op profile ==")
        print(op_table)
    for event in events:
        if event.get("type") == "metrics":
            gauges = event.get("snapshot", {}).get("gauges", {})
            if gauges:
                print()
                print("== gauges ==")
                for name, value in sorted(gauges.items()):
                    print(f"  {name} = {value:.6g}")
            break
    if args.chrome is not None:
        args.chrome.parent.mkdir(parents=True, exist_ok=True)
        args.chrome.write_text(
            json.dumps(events_to_chrome(events), sort_keys=True),
            encoding="utf-8",
        )
        print(f"\nwrote Chrome trace to {args.chrome} "
              f"(open via chrome://tracing)")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from .obs import format_top, read_state
    from .obs.live import TELEMETRY_DIR

    directory = args.workdir
    if directory.name != TELEMETRY_DIR and \
            (directory / TELEMETRY_DIR).is_dir():
        directory = directory / TELEMETRY_DIR
    if not directory.is_dir():
        print(f"error: {args.workdir} has no telemetry directory (is it "
              f"a sweep --workdir with telemetry enabled?)", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(read_state(directory), sort_keys=True, indent=2))
        return 0
    if args.once:
        print(format_top(read_state(directory)))
        return 0
    try:
        while True:
            state = read_state(directory)
            # clear screen + home, then one full frame
            sys.stdout.write("\x1b[2J\x1b[H" + format_top(state) + "\n")
            sys.stdout.flush()
            if state.get("finished"):
                return 0
            _time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_obs_smoke(args: argparse.Namespace) -> int:
    from . import obs
    from .approaches import ApproachConfig, get_approach

    pair = benchmark_pair(args.family, size=args.size, method="direct",
                          seed=args.seed)
    split = pair.five_fold_splits(seed=args.seed)[0]
    approach = get_approach(
        "MTransE",
        ApproachConfig(dim=args.dim, epochs=args.epochs, valid_every=0,
                       seed=args.seed),
    )
    approach.negative_sampling = True  # exercise the neg_sampling span
    with obs.capture(profile_ops=True) as cap:
        log = approach.fit(pair, split)
    args.out.mkdir(parents=True, exist_ok=True)
    events_path = args.out / "events.jsonl"
    trace_path = args.out / "trace.json"
    cap.write(events_path)
    cap.tracer.write_chrome_trace(trace_path)
    print(f"trained {approach.info.name} for {log.epochs_run} epochs "
          f"({sum(log.epoch_seconds):.2f}s training, "
          f"peak RSS {log.peak_rss_bytes / 1024 / 1024:.0f} MB)")
    print(f"wrote {events_path} and {trace_path}\n")
    print(obs.format_phase_table(cap.events))
    print()
    print("== autodiff op profile ==")
    print(cap.profiler.format())
    # ledger the run (no-op unless REPRO_LEDGER_PATH is set)
    obs.record_run(
        "train", f"obs-smoke/{approach.info.name}",
        config={"approach": approach.info.name, "family": args.family,
                "size": args.size, "epochs": args.epochs, "dim": args.dim,
                "seed": args.seed},
        scalars={
            "train_seconds": sum(log.epoch_seconds),
            "steps_per_second": log.steps_per_second,
            "peak_rss_bytes": float(log.peak_rss_bytes),
        },
        registry=cap.registry,
    )
    return 0


def _ledger_line(record: dict) -> str:
    scalars = record.get("scalars", {})
    headline = " ".join(f"{key}={value:.6g}"
                        for key, value in sorted(scalars.items())[:4])
    return (f"{record['ts_utc']}  {record['run_id']}  "
            f"{record['kind']:<5s} {record['name']:<28s} "
            f"fp={record['fingerprint'][:8]}  {headline}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .orchestrate import load_spec, payload_metrics, run_sweep

    if not args.spec.is_file():
        print(f"error: no sweep spec at {args.spec}", file=sys.stderr)
        return 2
    try:
        spec = load_spec(args.spec)
    except (ValueError, KeyError) as error:
        print(f"error: bad sweep spec {args.spec}: {error}", file=sys.stderr)
        return 2
    result = run_sweep(spec, jobs=args.jobs, workdir=args.workdir,
                       record=not args.no_record)
    text = result.format()
    if args.compare_serial:
        serial = run_sweep(spec, jobs=1, record=False)
        mismatched = [
            job_id for job_id in serial.job_payloads
            if payload_metrics(serial.job_payloads[job_id])
            != payload_metrics(result.job_payloads.get(job_id, {}))
        ]
        speedup = serial.seconds / result.seconds if result.seconds else 0.0
        text += (f"\nserial comparison: jobs={args.jobs} took "
                 f"{result.seconds:.1f}s vs {serial.seconds:.1f}s serial "
                 f"({speedup:.2f}x speedup"
                 f"{', restored jobs skew the timing' if result.stats.restored else ''}); "
                 f"metrics {'bit-identical' if not mismatched else 'DIFFER'}")
        if mismatched:
            print(text)
            print(f"error: {len(mismatched)} job(s) differ between serial "
                  f"and parallel runs: {mismatched}", file=sys.stderr)
            return 1
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    return 0


def _cmd_obs_ledger(args: argparse.Namespace) -> int:
    import json

    from .obs import RunLedger, sweep_where

    where = sweep_where(args.sweep) if args.sweep else None
    ledger = RunLedger(args.ledger)
    records, skipped = ledger.read()
    if skipped:
        print(f"warning: skipped {skipped} unreadable ledger line(s) in "
              f"{ledger.path}", file=sys.stderr)
    if where is not None:
        records = [record for record in records if where(record)]
    if args.action == "compact":
        if not ledger.path.is_file():
            print(f"error: no ledger at {ledger.path}", file=sys.stderr)
            return 2
        kept, dropped = ledger.compact(keep_last=args.n, where=where)
        scope = f" (sweep {args.sweep})" if args.sweep else ""
        print(f"compacted {ledger.path}{scope}: kept {kept}, "
              f"dropped {dropped}")
        return 0
    if args.action == "show":
        if not args.run_id:
            print("error: `show` needs a run id (see obs-ledger list)",
                  file=sys.stderr)
            return 2
        record = ledger.last(run_id=args.run_id, where=where)
        if record is None:
            print(f"error: no run {args.run_id!r} in {ledger.path}",
                  file=sys.stderr)
            return 2
        print(json.dumps(record, sort_keys=True, indent=2))
        return 0
    if not records:
        scope = f" for sweep {args.sweep}" if args.sweep else ""
        print(f"error: no runs recorded{scope} in {ledger.path} (set "
              f"REPRO_LEDGER_PATH or run a bench with REPRO_BENCH_TRACE=1)",
              file=sys.stderr)
        return 1
    shown = records if args.action == "list" else records[-args.n:]
    for record in shown:
        print(_ledger_line(record))
    print(f"{len(shown)} of {len(records)} run(s) in {ledger.path}")
    return 0


def _cmd_obs_gate(args: argparse.Namespace) -> int:
    from .obs import RunLedger, gate, sweep_where

    ledger = RunLedger(args.ledger)
    report = gate(
        ledger, metrics=args.metric or None, n_baseline=args.n_baseline,
        run_id=args.run, rel_threshold=args.rel_threshold,
        where=sweep_where(args.sweep) if args.sweep else None,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    if report.status == "no-runs":
        return 2
    return report.exit_code


def _cmd_obs_conformance(args: argparse.Namespace) -> int:
    import json as json_module

    from .obs import RunLedger, conformance_report, load_reference, sweep_where

    ledger = RunLedger(args.ledger)
    records = ledger.records() if ledger.path.is_file() else []
    if args.sweep:
        where = sweep_where(args.sweep)
        records = [r for r in records if where(r)]
    try:
        reference = load_reference(args.reference)
    except (OSError, ValueError) as error:
        print(f"error: could not load reference tables: {error}",
              file=sys.stderr)
        return 2
    report = conformance_report(records, reference,
                                rel_tolerance=args.rel_tolerance)
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return report.exit_code


def _cmd_obs_quality(args: argparse.Namespace) -> int:
    from .obs import format_quality_table, load_events_tolerant

    if not args.quality_file.is_file():
        print(f"error: {args.quality_file} is not a file", file=sys.stderr)
        return 2
    records, skipped = load_events_tolerant(args.quality_file)
    print(format_quality_table(records))
    if skipped:
        print(f"(skipped {skipped} torn/unreadable line(s))")
    return 0


def _cmd_quality_smoke(args: argparse.Namespace) -> int:
    """End-to-end exercise of the quality-observability stack.

    Three acts on a tiny synthetic dataset:

    1. a deliberately diverging fit (SGD, absurd learning rate) that a
       sentinel must abort before 50% of the epoch budget;
    2. a probe-instrumented 2-fold CV whose record lands in the ledger
       (when ``REPRO_LEDGER_PATH`` is set) with hits/MRR scalars — the
       record ``make perf-gate``'s quality leg gates;
    3. a conformance report of that ledger against the paper tables
       (informational here: reduced-scale runs are expected to drift).

    Exit 0 only if the sentinel tripped in time and the CV completed.
    """
    import dataclasses
    import json as json_module

    from .approaches import ApproachConfig, get_approach
    from .obs import (RunLedger, conformance_report, format_quality_table,
                      load_reference)
    from .pipeline import cross_validate

    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    pair = benchmark_pair(args.family, size=args.size, method="direct",
                          seed=args.seed)
    split = pair.five_fold_splits(seed=args.seed)[0]
    base = ApproachConfig(dim=args.dim, epochs=args.epochs, lr=0.05,
                          batch_size=512, n_negatives=3, seed=args.seed,
                          valid_every=max(2, args.epochs // 2),
                          probe_every=2, probe_sample=32, sentinel=True)
    summary: dict = {}

    # 1 — sentinel trip: budget 4x the normal run, must abort before 50%
    diverging = dataclasses.replace(base, optimizer="sgd", lr=1e4,
                                    epochs=args.epochs * 4)
    approach = get_approach("MTransE", diverging)
    with warnings.catch_warnings():
        # the overflow is the point: this run is built to explode
        warnings.simplefilter("ignore", RuntimeWarning)
        log = approach.fit(pair, split, quality_path=out / "diverge.jsonl")
    tripped = (log.status == "diverged"
               and log.epochs_run < diverging.epochs * 0.5)
    print(f"sentinel trip: status={log.status} "
          f"epochs={log.epochs_run}/{diverging.epochs} "
          f"reason={log.diverged_reason or '-'}")
    summary["sentinel"] = {"status": log.status,
                           "epochs_run": log.epochs_run,
                           "budget": diverging.epochs,
                           "reason": log.diverged_reason,
                           "tripped_in_time": tripped}

    # 2 — probe-instrumented CV; records a "cv" ledger run with quality
    # scalars, and each fold writes quality.jsonl under its checkpoint
    result = cross_validate(
        lambda: get_approach("MTransE", base), pair, n_folds=2,
        seed=args.seed, checkpoint_dir=out / "ckpt",
    )
    probes = result.folds[0].log.probes if result.folds else []
    print(f"probe CV: status={result.status} "
          f"hits@1={result.mean_std('hits@1')[0]:.3f}")
    if probes:
        print(format_quality_table(probes))
    summary["cv"] = {"status": result.status,
                     "hits_at_1": result.mean_std("hits@1")[0],
                     "probes": len(probes)}

    # 3 — conformance against the paper tables (informational at this
    # scale: the verdict prints but does not fail the smoke)
    ledger = RunLedger()
    if ledger.path.is_file():
        try:
            reference = load_reference()
        except OSError:
            print("conformance: reference tables not found, skipped")
        else:
            report = conformance_report(ledger.records(), reference)
            print(report.format())
            summary["conformance"] = {"status": report.status,
                                      "rows": len(report.rows)}
    else:
        print("conformance: no ledger (set REPRO_LEDGER_PATH), skipped")

    ok = tripped and result.status in ("completed", "resumed") and probes
    summary["ok"] = bool(ok)
    (out / "quality_smoke.json").write_text(
        json_module.dumps(summary, indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return 0 if ok else 1


def _cmd_robustness(args: argparse.Namespace) -> int:
    """Data-level robustness check (docs/robustness.md).

    Corrupts the low-heterogeneity smoke pair with the requested rates,
    trains one approach, calibrates an abstention threshold on half the
    dangling entities + the validation pairs, and reports NIL-aware
    metrics on the held-out half + the test pairs.  ``--check`` turns
    the report into a gate: dangling-detection F1 must reach 0.5 and
    abstention must cost at most 5% of the matchable Hits@1.
    """
    from .alignment.evaluate import abstention_curve
    from .approaches import ApproachConfig, get_approach
    from .datagen import smoke_pair
    from .datagen.corruption import dangling_sources

    pair = smoke_pair(
        n_entities=args.size, seed=args.seed,
        dangling_rate=args.dangling_rate,
        link_noise_rate=args.link_noise_rate,
        attr_missing_rate=args.attr_missing_rate,
    )
    split = pair.split(train_ratio=0.3, seed=args.seed)
    approach = get_approach(
        args.approach,
        ApproachConfig(dim=args.dim, epochs=args.epochs, seed=args.seed,
                       valid_every=0),
    )
    approach.fit(pair, split)
    clean_hits1 = approach.evaluate(split.test, hits_at=(1,)).hits_at(1)
    dangling = sorted(dangling_sources(pair))
    print(f"{pair.name}: {len(pair.alignment)} matchable, "
          f"{len(dangling)} dangling "
          f"(rates d={args.dangling_rate:g} l={args.link_noise_rate:g} "
          f"a={args.attr_missing_rate:g})")
    print(f"clean hits@1 (no abstention): {clean_hits1:.3f}")
    if not dangling:
        print("no dangling entities (dangling rate 0); nothing to "
              "calibrate against")
        return 0
    half = len(dangling) // 2
    threshold = approach.calibrate_abstention(
        split.valid, dangling[:half], method=args.method)
    nil = approach.evaluate_dangling(
        split.test, dangling[half:], method=args.method, threshold=threshold)
    print(nil)
    if args.curve > 0:
        similarity, gold = approach.nil_similarity(split.test,
                                                   dangling[half:])
        print(f"{'threshold':>10s} {'P':>6s} {'R':>6s} {'F1':>6s} "
              f"{'H@1m':>6s} {'abst':>5s}")
        for point in abstention_curve(similarity, gold, method=args.method,
                                      n_points=args.curve):
            print(f"{point.threshold:10.4f} {point.precision:6.3f} "
                  f"{point.recall:6.3f} {point.f1:6.3f} "
                  f"{point.hits1_matchable:6.3f} {point.abstained:5d}")
    # ledger the check (no-op unless REPRO_LEDGER_PATH is set) so
    # `repro obs-gate` guards dangling_f1 like any quality metric
    from .obs import record_run

    record_run(
        "robustness", f"robustness/{pair.name}",
        config={"size": args.size, "seed": args.seed,
                "approach": args.approach, "dim": args.dim,
                "epochs": args.epochs, "method": args.method,
                "dangling_rate": args.dangling_rate,
                "link_noise_rate": args.link_noise_rate,
                "attr_missing_rate": args.attr_missing_rate},
        scalars={"hits_at_1": clean_hits1, "dangling_f1": nil.f1,
                 "dangling_precision": nil.precision,
                 "dangling_recall": nil.recall,
                 "hits_at_1_matchable": nil.hits1_matchable,
                 "mrr_matchable": nil.mrr_matchable},
    )
    if args.check:
        floor = 0.95 * clean_hits1
        failures = []
        if nil.f1 < 0.5:
            failures.append(f"dangling F1 {nil.f1:.3f} < 0.5")
        if nil.hits1_matchable < floor:
            failures.append(f"matchable hits@1 {nil.hits1_matchable:.3f} "
                            f"< 0.95 x clean ({floor:.3f})")
        if failures:
            print("check FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(f"check passed: F1={nil.f1:.3f} >= 0.5, matchable "
              f"hits@1={nil.hits1_matchable:.3f} >= {floor:.3f}")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from .obs import RunLedger, load_events_tolerant, render_prometheus

    if not args.prometheus:
        print("error: pick an export format (--prometheus)", file=sys.stderr)
        return 2
    if args.events is not None:
        if not args.events.is_file():
            print(f"error: {args.events} is not a file", file=sys.stderr)
            return 2
        events, _ = load_events_tolerant(args.events)
        snapshots = [e["snapshot"] for e in events
                     if e.get("type") == "metrics" and "snapshot" in e]
        if not snapshots:
            print(f"error: no metrics snapshot in {args.events}",
                  file=sys.stderr)
            return 1
        snapshot = snapshots[-1]
        source = str(args.events)
    else:
        ledger = RunLedger(args.ledger)
        record = ledger.last(run_id=args.run)
        if record is None:
            print(f"error: no runs in {ledger.path}", file=sys.stderr)
            return 1
        snapshot = record["metrics"]
        source = f"{ledger.path} run {record['run_id']}"
    text = render_prometheus(snapshot)
    if not text:
        print(f"error: empty metrics snapshot in {source}", file=sys.stderr)
        return 1
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text, encoding="utf-8")
        print(f"wrote {args.out} ({len(text.splitlines())} lines from "
              f"{source})")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "serve-build":
        return _cmd_serve_build(args)
    if args.command == "serve-query":
        return _cmd_serve_query(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "obs-report":
        return _cmd_obs_report(args)
    if args.command == "obs-top":
        return _cmd_obs_top(args)
    if args.command == "obs-smoke":
        return _cmd_obs_smoke(args)
    if args.command == "obs-ledger":
        return _cmd_obs_ledger(args)
    if args.command == "obs-gate":
        return _cmd_obs_gate(args)
    if args.command == "obs-conformance":
        return _cmd_obs_conformance(args)
    if args.command == "obs-quality":
        return _cmd_obs_quality(args)
    if args.command == "quality-smoke":
        return _cmd_quality_smoke(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "obs-export":
        return _cmd_obs_export(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    import os

    try:
        code = main()
    except BrokenPipeError:  # e.g. `python -m repro.cli ... | head`
        # redirect stdout to devnull so interpreter shutdown does not
        # raise a second BrokenPipeError while flushing
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 128 + 13  # the shell convention for SIGPIPE
    raise SystemExit(code)
