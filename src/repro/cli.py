"""Command-line interface: generate benchmark datasets in OpenEA layout.

Mirrors how the paper's datasets were released: a directory per dataset
with ``rel_triples_*``, ``attr_triples_*``, ``ent_links`` and the
``721_5fold`` splits.

Usage::

    python -m repro.cli generate --family EN-FR --size 1500 --version V1 \
        --out datasets/EN_FR_15K_V1
    python -m repro.cli stats datasets/EN_FR_15K_V1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .datagen import FAMILIES, benchmark_pair
from .kg import dataset_summary, load_pair, save_pair, save_splits, validate_pair

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="OpenEA-reproduction dataset tooling"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a benchmark dataset (world -> views -> IDS)"
    )
    generate.add_argument("--family", choices=sorted(FAMILIES), required=True)
    generate.add_argument("--size", type=int, default=1500,
                          help="target number of aligned entities")
    generate.add_argument("--version", choices=["V1", "V2"], default="V1")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--method", choices=["ids", "ras", "prs", "direct"],
                          default="ids")
    generate.add_argument("--out", type=Path, required=True,
                          help="output directory (OpenEA layout)")

    stats = commands.add_parser("stats", help="print statistics of a dataset")
    stats.add_argument("directory", type=Path)

    validate = commands.add_parser(
        "validate", help="check a dataset's benchmark invariants"
    )
    validate.add_argument("directory", type=Path)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    pair = benchmark_pair(
        args.family, size=args.size, version=args.version,
        seed=args.seed, method=args.method,
    )
    save_pair(pair, args.out)
    save_splits(pair.five_fold_splits(seed=args.seed), args.out)
    print(f"wrote {pair} to {args.out}")
    report = validate_pair(pair)
    if not report.ok or report.warnings:
        print(report)
    for side, kg in (("KG1", pair.kg1), ("KG2", pair.kg2)):
        summary = dataset_summary(kg)
        print(f"  {side}: {summary['rel_triples']:.0f} rel triples, "
              f"{summary['attr_triples']:.0f} attr triples, "
              f"avg degree {summary['avg_degree']:.2f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2
    pair = load_pair(args.directory)
    print(pair)
    for side, kg in (("KG1", pair.kg1), ("KG2", pair.kg2)):
        summary = dataset_summary(kg)
        cells = " ".join(f"{key}={value:.6g}" for key, value in summary.items())
        print(f"  {side}: {cells}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if not args.directory.is_dir():
        print(f"error: {args.directory} is not a directory", file=sys.stderr)
        return 2
    report = validate_pair(load_pair(args.directory))
    print(report)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "validate":
        return _cmd_validate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
