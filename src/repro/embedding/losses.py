"""Loss functions of the embedding module (Figure 4).

All losses are expressed over *scores* (higher = more plausible triple),
matching the convention of :mod:`repro.embedding.models`.  Energy-based
formulations from the papers map onto this via ``score = -energy``.
"""

from __future__ import annotations

from ..autodiff import Tensor

__all__ = ["margin_ranking_loss", "logistic_loss", "limit_based_loss", "LOSSES"]


def margin_ranking_loss(
    positive: Tensor, negative: Tensor, margin: float = 1.5
) -> Tensor:
    """TransE's marginal ranking loss: ``relu(margin - pos + neg)``.

    ``negative`` may hold several negatives per positive; shapes broadcast.
    """
    return (margin - positive + negative).relu().mean()


def logistic_loss(positive: Tensor, negative: Tensor) -> Tensor:
    """Logistic loss used by HolE/ComplEx: ``softplus(-pos) + softplus(neg)``."""
    return (-positive).softplus().mean() + negative.softplus().mean()


def limit_based_loss(
    positive: Tensor,
    negative: Tensor,
    pos_limit: float = -0.2,
    neg_limit: float = -2.0,
    balance: float = 0.8,
) -> Tensor:
    """Limit-based loss (BootEA, Zhou et al.): absolute score limits.

    Positives are pushed above ``pos_limit`` and negatives below
    ``neg_limit`` (both are *scores*, i.e. negated energies), decoupling
    the two sides instead of only separating them by a margin.
    """
    positive_term = (pos_limit - positive).relu().mean()
    negative_term = (negative - neg_limit).relu().mean()
    return positive_term + balance * negative_term


LOSSES = {
    "marginal": margin_ranking_loss,
    "logistic": logistic_loss,
    "limited": limit_based_loss,
}
