"""Attribute embedding models: AC2Vec and Label2Vec (§4).

The paper's library integrates two attribute embedding models:

* **AC2Vec** (from JAPE) — attribute-*correlation* embedding: attributes
  frequently describing the same entity get nearby vectors (Eq. 4),
  trained with skip-gram-with-negative-sampling over per-entity
  attribute sets;
* **Label2Vec** (from MultiKE) — literal embedding of an entity's
  label-like value using (cross-lingually anchored) word vectors.
"""

from __future__ import annotations

import numpy as np

from ..kg import KnowledgeGraph

__all__ = ["AC2Vec", "label2vec"]


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class AC2Vec:
    """Attribute-correlation embedding (Eq. 4).

    ``fit`` takes per-entity attribute id sets; correlated attributes are
    those co-occurring on an entity.  Vectors are trained to maximize
    ``sigmoid(a_i . a_j)`` for co-occurring pairs against random
    negatives.
    """

    def __init__(self, n_attributes: int, dim: int = 32, epochs: int = 15,
                 lr: float = 0.1, seed: int = 0):
        if n_attributes <= 0:
            raise ValueError("need at least one attribute")
        self.n_attributes = n_attributes
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        rng = np.random.default_rng(seed)
        self.embeddings = 0.1 * rng.normal(size=(n_attributes, dim))
        self._rng = rng

    def fit(self, attribute_sets: dict[int, set[int]]) -> "AC2Vec":
        """Train on per-entity attribute id sets; returns self."""
        pairs = [
            (a, b)
            for attr_set in attribute_sets.values()
            for a in sorted(attr_set)
            for b in sorted(attr_set)
            if a != b
        ]
        if not pairs:
            return self
        pairs = np.array(pairs, dtype=np.int64)
        emb, lr, rng = self.embeddings, self.lr, self._rng
        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            negatives = rng.integers(0, self.n_attributes, size=len(pairs))
            for (a, b), negative in zip(pairs[order], negatives):
                grad_pos = 1.0 - _sigmoid(emb[a] @ emb[b])
                grad_neg = _sigmoid(emb[a] @ emb[negative])
                emb[a] += lr * (grad_pos * emb[b] - grad_neg * emb[negative])
                emb[b] += lr * grad_pos * emb[a]
                emb[negative] -= lr * grad_neg * emb[a]
        return self

    def correlation(self, a: int, b: int) -> float:
        """Probability that attributes ``a`` and ``b`` are correlated."""
        return _sigmoid(float(self.embeddings[a] @ self.embeddings[b]))

    def entity_vectors(
        self, attribute_sets: dict[int, set[int]]
    ) -> dict[int, np.ndarray]:
        """Represent an entity as the mean of its attribute vectors."""
        return {
            entity: self.embeddings[sorted(attrs)].mean(axis=0)
            for entity, attrs in attribute_sets.items()
            if attrs
        }


def label2vec(
    kg: KnowledgeGraph, language: str = "en", dim: int = 32, seed: int = 0
) -> dict[str, np.ndarray]:
    """Label2Vec: per-entity label-like literal vectors (MultiKE's name
    view), built on pre-trained-style cross-lingual word embeddings."""
    from ..approaches.literals import name_vectors

    return name_vectors(kg, language=language, dim=dim, seed=seed)
