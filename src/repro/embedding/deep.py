"""Deep relation embedding models: ProjE and ConvE."""

from __future__ import annotations

import numpy as np

from ..autodiff import Linear, Parameter, Tensor, conv2d, xavier_init
from .base import RelationModel

__all__ = ["ProjE", "ConvE"]


class ProjE(RelationModel):
    """Shi & Weninger (2017): embedding projection.

    Head and relation are combined through a learned diagonal projection
    and non-linearity, then matched against the tail:
    ``score = sum(tanh(d_e o h + d_r o r + b_c) o t)``.
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng)
        self.d_entity = Parameter(np.ones(dim), name="proje.d_entity")
        self.d_relation = Parameter(np.ones(dim), name="proje.d_relation")
        self.combine_bias = Parameter(np.zeros(dim), name="proje.bias")

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        combined = (self.d_entity * h + self.d_relation * r + self.combine_bias).tanh()
        return (combined * t).sum(axis=-1)


class ConvE(RelationModel):
    """Dettmers et al. (2018): 2-D convolution over reshaped embeddings.

    Head and relation embeddings are reshaped into 2-D maps, stacked,
    convolved, projected back to the embedding dimension and matched
    against the tail.  ``dim`` must factor as ``height * width``.
    """

    def __init__(self, n_entities, n_relations, dim, rng,
                 n_filters: int = 4, kernel: int = 3):
        super().__init__(n_entities, n_relations, dim, rng)
        self.height, self.width = _factor_2d(dim)
        self.n_filters = n_filters
        self.kernel = kernel
        self.filters = Parameter(
            xavier_init((n_filters, 1, kernel, kernel), rng), name="conve.filters"
        )
        self.filter_bias = Parameter(np.zeros(n_filters), name="conve.filter_bias")
        conv_h = 2 * self.height - kernel + 1
        conv_w = self.width - kernel + 1
        if conv_h <= 0 or conv_w <= 0:
            raise ValueError(
                f"dim {dim} reshaped to {self.height}x{self.width} is too small "
                f"for a {kernel}x{kernel} kernel"
            )
        self.project = Linear(n_filters * conv_h * conv_w, dim, rng, name="conve.fc")
        self.entity_bias = Parameter(np.zeros(n_entities), name="conve.entity_bias")

    def _feature(self, heads, relations) -> Tensor:
        batch = len(heads)
        h = self.entities(heads).reshape(batch, 1, self.height, self.width)
        r = self.relations(relations).reshape(batch, 1, self.height, self.width)
        from ..autodiff import concat

        stacked = concat([h, r], axis=2)  # (batch, 1, 2H, W)
        conv = conv2d(stacked, self.filters, self.filter_bias).relu()
        flat = conv.reshape(batch, -1)
        return self.project(flat).relu()

    def score(self, heads, relations, tails) -> Tensor:
        feature = self._feature(heads, relations)
        t = self.entities(tails)
        bias = self.entity_bias.gather(np.asarray(tails))
        return (feature * t).sum(axis=-1) + bias


def _factor_2d(dim: int) -> tuple[int, int]:
    """Most-square factorization of ``dim`` for the ConvE reshape."""
    height = int(np.sqrt(dim))
    while height > 1 and dim % height != 0:
        height -= 1
    return height, dim // height
