"""Semantic matching models: DistMult, ComplEx, HolE, SimplE, RotatE."""

from __future__ import annotations

import numpy as np

from ..autodiff import EmbeddingTable, Parameter, Tensor, circular_correlation, unit_init, xavier_init
from .base import RelationModel

__all__ = ["DistMult", "ComplEx", "HolE", "SimplE", "RotatE", "TuckER"]


class DistMult(RelationModel):
    """Yang et al. (2015): bilinear-diagonal scoring ``<h, r, t>``."""

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return (h * r * t).sum(axis=-1)


class ComplEx(RelationModel):
    """Trouillon et al. (2016): complex bilinear scoring.

    Embeddings of size ``dim`` are interpreted as ``dim/2`` complex
    numbers (first half real, second half imaginary).
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        if dim % 2 != 0:
            raise ValueError("ComplEx needs an even embedding dimension")
        super().__init__(n_entities, n_relations, dim, rng)
        self.half = dim // 2

    def _split(self, x: Tensor) -> tuple[Tensor, Tensor]:
        return x[:, : self.half], x[:, self.half:]

    def score(self, heads, relations, tails) -> Tensor:
        h_re, h_im = self._split(self.entities(heads))
        r_re, r_im = self._split(self.relations(relations))
        t_re, t_im = self._split(self.entities(tails))
        return (
            (h_re * r_re * t_re).sum(axis=-1)
            + (h_im * r_re * t_im).sum(axis=-1)
            + (h_re * r_im * t_im).sum(axis=-1)
            - (h_im * r_im * t_re).sum(axis=-1)
        )


class HolE(RelationModel):
    """Nickel et al. (2016): holographic embeddings.

    ``score = r . corr(h, t)`` with circular correlation computed via FFT.
    """

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return (r * circular_correlation(h, t)).sum(axis=-1)


class SimplE(RelationModel):
    """Kazemi & Poole (2018): two roles per entity, inverse per relation."""

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng)
        self.tail_entities = EmbeddingTable(
            n_entities, dim, rng, xavier_init, name="tail_entities"
        )
        self.inverse_relations = EmbeddingTable(
            n_relations, dim, rng, xavier_init, name="inverse_relations"
        )

    def score(self, heads, relations, tails) -> Tensor:
        h_head = self.entities(heads)
        t_tail = self.tail_entities(tails)
        r = self.relations(relations)
        t_head = self.entities(tails)
        h_tail = self.tail_entities(heads)
        r_inv = self.inverse_relations(relations)
        forward = (h_head * r * t_tail).sum(axis=-1)
        backward = (t_head * r_inv * h_tail).sum(axis=-1)
        return 0.5 * (forward + backward)

    def entity_embeddings(self) -> np.ndarray:
        """Average of the two entity roles (standard evaluation choice)."""
        return 0.5 * (self.entities.all_embeddings() + self.tail_entities.all_embeddings())

    def normalize(self, rows: np.ndarray | None = None) -> None:
        self.entities.normalize_rows(rows)
        self.tail_entities.normalize_rows(rows)


class TuckER(RelationModel):
    """Balazevic et al. (2019): Tucker tensor factorization.

    ``score = W x1 h x2 r x3 t`` with a shared core tensor ``W``; the
    relation-specific bilinear map is ``M_r = W x2 r``.
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng)
        core = np.stack([np.eye(dim) for _ in range(dim)])
        core += 0.05 * rng.normal(size=core.shape)
        # core tensor indexed (relation_dim, head_dim, tail_dim)
        self.core = Parameter(core, name="tucker.core")

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        batch = len(h)
        # M_r[b] = sum_k r[b,k] * core[k]  -> (batch, dim, dim)
        flat_core = self.core.reshape(self.dim, self.dim * self.dim)
        mixed = (r @ flat_core).reshape(batch, self.dim, self.dim)
        projected = (h.reshape(batch, 1, self.dim) @ mixed).reshape(batch, self.dim)
        return (projected * t).sum(axis=-1)


class RotatE(RelationModel):
    """Sun et al. (2019): relations as rotations in complex space.

    Relations are parameterized by phases; each complex coordinate of the
    head is rotated by the relation's phase and compared to the tail:
    ``score = -|| h o r - t ||`` — the non-Euclidean model §6.2 singles
    out as the strongest unexplored candidate.
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        if dim % 2 != 0:
            raise ValueError("RotatE needs an even embedding dimension")
        super().__init__(n_entities, n_relations, dim, rng, initializer=unit_init)
        self.half = dim // 2
        self.phases = Parameter(
            rng.uniform(-np.pi, np.pi, size=(n_relations, self.half)), name="phases"
        )

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        t = self.entities(tails)
        theta = self.phases.gather(np.asarray(relations))
        cos, sin = theta.cos(), theta.sin()
        h_re, h_im = h[:, : self.half], h[:, self.half:]
        t_re, t_im = t[:, : self.half], t[:, self.half:]
        rot_re = h_re * cos - h_im * sin
        rot_im = h_re * sin + h_im * cos
        delta_re = rot_re - t_re
        delta_im = rot_im - t_im
        return -(
            (delta_re * delta_re + delta_im * delta_im).sum(axis=-1) + 1e-12
        ).sqrt()
