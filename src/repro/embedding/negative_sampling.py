"""Negative sampling methods of the embedding module (Figure 4).

* **uniform** — corrupt the head or tail of a positive triple with an
  entity drawn uniformly (Bordes et al.);
* **truncated** — BootEA's epsilon-truncated sampling: corruptions are
  drawn from the corrupted entity's current nearest neighbors, producing
  hard negatives.  The neighbor cache must be refreshed periodically from
  the live embeddings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_corrupt", "TruncatedSampler"]

Triples = np.ndarray  # (n, 3) int array of (head, relation, tail) ids


def uniform_corrupt(
    triples: Triples,
    n_entities: int,
    n_negatives: int,
    rng: np.random.Generator,
) -> Triples:
    """Uniform negative sampling.

    Returns ``(len(triples) * n_negatives, 3)`` corrupted triples; each
    positive is corrupted ``n_negatives`` times, replacing the head or the
    tail with probability 1/2.
    """
    repeated = np.repeat(triples, n_negatives, axis=0)
    corrupt_tail = rng.random(len(repeated)) < 0.5
    replacements = rng.integers(0, n_entities, size=len(repeated))
    negatives = repeated.copy()
    negatives[corrupt_tail, 2] = replacements[corrupt_tail]
    negatives[~corrupt_tail, 0] = replacements[~corrupt_tail]
    return negatives


class TruncatedSampler:
    """Epsilon-truncated negative sampling (BootEA §4).

    Negatives replace an entity with one of its ``s = ceil((1 - epsilon) *
    n)`` nearest neighbors in the current embedding space, where
    ``truncation`` corresponds to the paper's ``1 - epsilon`` fraction.
    Call :meth:`refresh` every few epochs with the live entity matrix.
    """

    def __init__(self, n_entities: int, truncation: float = 0.1, cache_size: int = 20):
        if not 0.0 < truncation <= 1.0:
            raise ValueError("truncation must be in (0, 1]")
        self.n_entities = n_entities
        self.truncation = truncation
        self.cache_size = cache_size
        self._neighbors: np.ndarray | None = None

    def refresh(self, embeddings: np.ndarray) -> None:
        """Recompute each entity's nearest-neighbor candidate list."""
        if len(embeddings) != self.n_entities:
            raise ValueError(
                f"expected {self.n_entities} embeddings, got {len(embeddings)}"
            )
        limit = max(1, int(np.ceil(self.truncation * self.n_entities)))
        k = min(self.cache_size, limit, self.n_entities - 1)
        normalized = embeddings / np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12
        )
        similarity = normalized @ normalized.T
        np.fill_diagonal(similarity, -np.inf)
        # top-k neighbors per entity (unsorted is fine for sampling)
        self._neighbors = np.argpartition(-similarity, k - 1, axis=1)[:, :k]

    @property
    def ready(self) -> bool:
        return self._neighbors is not None

    def corrupt(
        self, triples: Triples, n_negatives: int, rng: np.random.Generator
    ) -> Triples:
        """Corrupt triples with nearest-neighbor replacements.

        Falls back to uniform sampling until :meth:`refresh` has been
        called (the first epochs of training).
        """
        if self._neighbors is None:
            return uniform_corrupt(triples, self.n_entities, n_negatives, rng)
        repeated = np.repeat(triples, n_negatives, axis=0)
        corrupt_tail = rng.random(len(repeated)) < 0.5
        victims = np.where(corrupt_tail, repeated[:, 2], repeated[:, 0])
        choice = rng.integers(0, self._neighbors.shape[1], size=len(repeated))
        replacements = self._neighbors[victims, choice]
        negatives = repeated.copy()
        negatives[corrupt_tail, 2] = replacements[corrupt_tail]
        negatives[~corrupt_tail, 0] = replacements[~corrupt_tail]
        return negatives
