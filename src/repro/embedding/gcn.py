"""Graph convolutional encoder (neighborhood-based embedding, Eq. 3).

Implements the propagation rule ``H' = sigma(D^-1/2 (A + I) D^-1/2 H W)``
of Kipf & Welling over a constant sparse adjacency, with an optional
highway gate between layers (RDGCN's stabilization trick).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..autodiff import (
    Highway,
    Module,
    Parameter,
    Tensor,
    orthogonal_init,
    sparse_matmul,
    xavier_init,
)

__all__ = ["normalized_adjacency", "GCNEncoder"]


def normalized_adjacency(
    n_nodes: int,
    edges: list[tuple[int, int]] | np.ndarray,
    weights: np.ndarray | None = None,
) -> sparse.csr_matrix:
    """Symmetric-normalized adjacency with self loops.

    ``edges`` are undirected (each pair is symmetrized); duplicate edges
    collapse to their summed weight before normalization.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if weights is None:
        weights = np.ones(len(edges))
    rows = np.concatenate([edges[:, 0], edges[:, 1], np.arange(n_nodes)])
    cols = np.concatenate([edges[:, 1], edges[:, 0], np.arange(n_nodes)])
    vals = np.concatenate([weights, weights, np.ones(n_nodes)])
    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes))
    matrix.sum_duplicates()
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    scaling = sparse.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()


class GCNEncoder(Module):
    """Multi-layer GCN over a fixed adjacency.

    ``features`` may be a trainable embedding table (structure-only
    GCNAlign style) or a constant matrix (literal-initialized, RDGCN
    style) — pass ``trainable_features=False`` for the latter.
    """

    def __init__(
        self,
        adjacency: sparse.csr_matrix,
        in_dim: int,
        hidden_dims: list[int],
        rng: np.random.Generator,
        activation: str = "tanh",
        highway: bool = False,
        features: np.ndarray | None = None,
        trainable_features: bool = True,
    ):
        n = adjacency.shape[0]
        self.adjacency = adjacency
        self.activation = activation
        if features is None:
            features = xavier_init((n, in_dim), rng)
        if features.shape != (n, in_dim):
            raise ValueError(
                f"features must be ({n}, {in_dim}), got {features.shape}"
            )
        if trainable_features:
            self.features: Parameter | Tensor = Parameter(features, name="gcn.features")
        else:
            self.features = Tensor(features)
        self.weights = []
        self.gates = []
        prev = in_dim
        for i, dim in enumerate(hidden_dims):
            # Square layers start as rotations so informative input features
            # (e.g. literal initializations) survive the first epochs.
            init = orthogonal_init if dim == prev else xavier_init
            self.weights.append(
                Parameter(init((prev, dim), rng), name=f"gcn.w{i}")
            )
            if highway and dim == prev:
                self.gates.append(Highway(dim, rng, name=f"gcn.gate{i}"))
            else:
                self.gates.append(None)
            prev = dim
        self.out_dim = prev

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "tanh":
            return x.tanh()
        if self.activation == "relu":
            return x.relu()
        raise ValueError(f"unknown activation {self.activation!r}")

    def __call__(self) -> Tensor:
        hidden = self.features
        for weight, gate in zip(self.weights, self.gates):
            propagated = self._activate(sparse_matmul(self.adjacency, hidden) @ weight)
            if gate is not None:
                hidden = gate(hidden, propagated)
            else:
                hidden = propagated
        return hidden

    def embeddings(self) -> np.ndarray:
        """Forward pass without recording gradients."""
        hidden = self.features.data
        for weight, gate in zip(self.weights, self.gates):
            propagated = self.adjacency @ hidden @ weight.data
            propagated = np.tanh(propagated) if self.activation == "tanh" else np.maximum(propagated, 0)
            if gate is not None:
                t = 1.0 / (1.0 + np.exp(-(hidden @ gate.gate.weight.data + gate.gate.bias.data)))
                hidden = t * propagated + (1.0 - t) * hidden
            else:
                hidden = propagated
        return hidden
