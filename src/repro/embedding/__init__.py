"""Embedding module: relation models, losses, negative sampling, GCN."""

from .attribute import AC2Vec, label2vec
from .base import RelationModel
from .deep import ConvE, ProjE
from .gcn import GCNEncoder, normalized_adjacency
from .losses import LOSSES, limit_based_loss, logistic_loss, margin_ranking_loss
from .negative_sampling import TruncatedSampler, uniform_corrupt
from .semantic import ComplEx, DistMult, HolE, RotatE, SimplE, TuckER
from .translational import TransD, TransE, TransH, TransR

RELATION_MODELS = {
    "transe": TransE,
    "transh": TransH,
    "transr": TransR,
    "transd": TransD,
    "distmult": DistMult,
    "complex": ComplEx,
    "hole": HolE,
    "simple": SimplE,
    "rotate": RotatE,
    "tucker": TuckER,
    "proje": ProjE,
    "conve": ConvE,
}


def get_relation_model(name: str):
    """Look up a relation model class by its registry name."""
    try:
        return RELATION_MODELS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown relation model {name!r}; choose from {sorted(RELATION_MODELS)}"
        ) from None


__all__ = [
    "RelationModel", "TransE", "TransH", "TransR", "TransD",
    "DistMult", "ComplEx", "HolE", "SimplE", "RotatE", "TuckER", "ProjE", "ConvE",
    "GCNEncoder", "normalized_adjacency",
    "margin_ranking_loss", "logistic_loss", "limit_based_loss", "LOSSES",
    "uniform_corrupt", "TruncatedSampler",
    "RELATION_MODELS", "get_relation_model",
    "AC2Vec", "label2vec",
]
