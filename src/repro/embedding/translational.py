"""Translational relation embedding models: TransE, TransH, TransR, TransD."""

from __future__ import annotations

import numpy as np

from ..autodiff import Parameter, Tensor, unit_init, xavier_init
from .base import RelationModel

__all__ = ["TransE", "TransH", "TransR", "TransD"]


class TransE(RelationModel):
    """Bordes et al. (2013): relations as translations, ``h + r ≈ t``.

    Score is the negated L1 or L2 distance ``-||h + r - t||`` (Eq. 1).
    """

    def __init__(self, n_entities, n_relations, dim, rng, norm: str = "L2"):
        super().__init__(n_entities, n_relations, dim, rng, initializer=unit_init)
        if norm not in ("L1", "L2"):
            raise ValueError(f"norm must be 'L1' or 'L2', got {norm!r}")
        self.norm = norm

    def _distance(self, delta: Tensor) -> Tensor:
        if self.norm == "L1":
            return delta.abs().sum(axis=-1)
        return delta.norm(axis=-1)

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return -self._distance(h + r - t)


class TransH(RelationModel):
    """Wang et al. (2014): translation on relation-specific hyperplanes.

    Entities are projected onto the hyperplane with normal ``w_r`` before
    translating, which lets one entity take different roles under
    multi-mapping relations — the weakness of TransE that §5.2 discusses.
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng, initializer=unit_init)
        self.normals = Parameter(unit_init((n_relations, dim), rng), name="normals")

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        w = self.normals.gather(np.asarray(relations)).l2_normalize(axis=-1)
        h_proj = h - (h * w).sum(axis=-1, keepdims=True) * w
        t_proj = t - (t * w).sum(axis=-1, keepdims=True) * w
        return -(h_proj + r - t_proj).norm(axis=-1)


class TransR(RelationModel):
    """Lin et al. (2015): a projection matrix per relation.

    §6.2 observes TransR needs *relation alignment* to transfer alignment
    signal between KGs and collapses without it — reproduced here.
    """

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng, initializer=unit_init)
        matrices = np.stack([np.eye(dim) for _ in range(n_relations)])
        matrices += 0.05 * rng.normal(size=matrices.shape)
        self.matrices = Parameter(matrices, name="rel_matrices")

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        m = self.matrices.gather(np.asarray(relations))  # (batch, dim, dim)
        h_proj = (h.reshape(len(heads), 1, self.dim) @ m).reshape(len(heads), self.dim)
        t_proj = (t.reshape(len(tails), 1, self.dim) @ m).reshape(len(tails), self.dim)
        return -(h_proj + r - t_proj).norm(axis=-1)


class TransD(RelationModel):
    """Ji et al. (2015): dynamic mapping from entity/relation projection
    vectors, ``h_perp = h + (h_p . h) r_p`` (the equal-dimension case)."""

    def __init__(self, n_entities, n_relations, dim, rng):
        super().__init__(n_entities, n_relations, dim, rng, initializer=unit_init)
        self.entity_proj = Parameter(
            xavier_init((n_entities, dim), rng), name="entity_proj"
        )
        self.relation_proj = Parameter(
            xavier_init((n_relations, dim), rng), name="relation_proj"
        )

    def score(self, heads, relations, tails) -> Tensor:
        heads = np.asarray(heads)
        relations = np.asarray(relations)
        tails = np.asarray(tails)
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        h_p = self.entity_proj.gather(heads)
        t_p = self.entity_proj.gather(tails)
        r_p = self.relation_proj.gather(relations)
        h_proj = h + (h_p * h).sum(axis=-1, keepdims=True) * r_p
        t_proj = t + (t_p * t).sum(axis=-1, keepdims=True) * r_p
        return -(h_proj + r - t_proj).norm(axis=-1)
