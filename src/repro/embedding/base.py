"""Base class for relation embedding models.

A relation model scores triples of (head, relation, tail) index arrays;
higher scores mean more plausible triples.  Every model exposes its entity
matrix for the alignment module and an optional per-epoch normalization
hook (several approaches constrain entity embeddings to the unit sphere).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import EmbeddingTable, Module, Tensor, xavier_init

__all__ = ["RelationModel"]


class RelationModel(Module):
    """Common state of triple-scoring models."""

    def __init__(
        self,
        n_entities: int,
        n_relations: int,
        dim: int,
        rng: np.random.Generator,
        initializer=xavier_init,
    ):
        if n_entities <= 0 or n_relations <= 0:
            raise ValueError("model needs at least one entity and one relation")
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.n_entities = n_entities
        self.n_relations = n_relations
        self.dim = dim
        self.entities = EmbeddingTable(n_entities, dim, rng, initializer, name="entities")
        self.relations = EmbeddingTable(n_relations, dim, rng, initializer, name="relations")

    def score(self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray) -> Tensor:
        """Plausibility scores for a batch of triples; shape ``(batch,)``."""
        raise NotImplementedError

    def entity_embeddings(self) -> np.ndarray:
        """Current entity matrix (used by the alignment module)."""
        return self.entities.all_embeddings()

    def normalize(self, rows: np.ndarray | None = None) -> None:
        """Per-epoch normalization hook; default constrains entities to
        the unit sphere (the setting §5.1 found to help most models).

        ``rows`` restricts the projection to the entities updated this
        epoch — the sparse-training fast path (see docs/performance.md).
        """
        self.entities.normalize_rows(rows)
