"""Cross-validation runner (§5.1's experimental protocol).

Runs an approach factory over the five folds of a dataset, aggregates
metrics as ``mean ± std`` and records wall-clock training time — the
numbers Table 5 and Figure 8 report.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..alignment.evaluate import DanglingMetrics, RankMetrics
from ..approaches.base import EmbeddingApproach, TrainingLog
from ..datagen.corruption import dangling_sources
from ..approaches.checkpointing import _log_to_dict, restore_log_fields
from ..faults import atomic_write_json, fault_point
from ..fingerprint import config_fingerprint
from ..kg import AlignmentSplit, KGPair
from ..obs import peak_rss_tree_bytes, span
from ..obs.ledger import record_run

__all__ = ["FoldResult", "CVResult", "run_fold", "cross_validate",
           "fold_to_dict", "fold_from_dict"]

_PROGRESS_FILE = "cv_progress.json"


@dataclass
class FoldResult:
    """Outcome of one fold.

    ``approach`` is ``None`` for folds restored from a cross-validation
    progress file: only their metrics and log survive a crash, not the
    trained model object.
    """

    metrics: RankMetrics
    log: TrainingLog
    seconds: float
    approach: EmbeddingApproach | None
    # NIL-aware evaluation (docs/robustness.md), present only when the
    # dataset carries a corruption manifest with dangling entities: the
    # fold calibrates an abstention threshold on half the dangling set +
    # the validation pairs and scores the held-out half + the test pairs.
    nil: DanglingMetrics | None = None


@dataclass
class CVResult:
    """Aggregated cross-validation outcome."""

    name: str
    dataset: str
    folds: list[FoldResult] = field(default_factory=list)
    # "completed", "resumed" (completed after restoring earlier folds),
    # "interrupted" (a fold stopped at a checkpoint; rerun to resume) or
    # "diverged" (a sentinel aborted at least one fold early).
    status: str = "completed"

    def _values(self, getter) -> np.ndarray:
        return np.array([getter(fold) for fold in self.folds])

    def mean_std(self, metric: str) -> tuple[float, float]:
        """``metric`` is ``hits@K``, ``mr`` or ``mrr``."""
        if metric.startswith("hits@"):
            k = int(metric.split("@")[1])
            values = self._values(lambda f: f.metrics.hits_at(k))
        elif metric == "mr":
            values = self._values(lambda f: f.metrics.mr)
        elif metric == "mrr":
            values = self._values(lambda f: f.metrics.mrr)
        else:
            raise KeyError(f"unknown metric {metric!r}")
        return float(values.mean()), float(values.std())

    @property
    def train_seconds(self) -> float:
        return float(self._values(lambda f: f.seconds).mean())

    @property
    def steps_per_second(self) -> float:
        """Mean optimizer-step throughput across folds (0.0 if untracked).

        Figure 8 reports wall-clock training time; with the sparse
        gradient path this normalized view separates algorithmic cost
        from dataset size.
        """
        values = self._values(lambda f: f.log.steps_per_second)
        positive = values[values > 0]
        return float(positive.mean()) if len(positive) else 0.0

    @property
    def mean_epoch_seconds(self) -> float:
        """Mean per-epoch wall time over every trained epoch of every fold."""
        seconds = [s for fold in self.folds for s in fold.log.epoch_seconds]
        return float(np.mean(seconds)) if seconds else 0.0

    @property
    def peak_rss_bytes(self) -> int:
        """Highest process peak RSS any fold's training observed."""
        if not self.folds:
            return 0
        return int(max(fold.log.peak_rss_bytes for fold in self.folds))

    def format(self, metrics: tuple[str, ...] = ("hits@1", "hits@5", "mrr")) -> str:
        cells = []
        for metric in metrics:
            mean, std = self.mean_std(metric)
            cells.append(f"{metric}={mean:.3f}±{std:.3f}")
        return f"{self.name:9s} {self.dataset:18s} " + " ".join(cells)


def run_fold(
    factory: Callable[[], EmbeddingApproach],
    pair: KGPair,
    split: AlignmentSplit,
    hits_at: tuple[int, ...] = (1, 5, 10),
    checkpoint_dir: Path | str | None = None,
    checkpoint_every: int = 1,
) -> FoldResult:
    """Train on one fold and evaluate on its test pairs.

    With ``checkpoint_dir`` the fold trains crash-safely: ``fit``
    checkpoints every ``checkpoint_every`` epochs and resumes from an
    existing checkpoint in that directory.
    """
    approach = factory()
    with span("fold", approach=approach.info.name, dataset=pair.name):
        started = time.perf_counter()
        if checkpoint_dir is not None:
            log = approach.fit(pair, split, checkpoint_dir=checkpoint_dir,
                               checkpoint_every=checkpoint_every,
                               resume_from=True)
        else:
            log = approach.fit(pair, split)
        seconds = time.perf_counter() - started
        if log.status == "interrupted":
            # No evaluation: the model is mid-training.  Callers check
            # log.status and resume from the checkpoint.
            empty = RankMetrics(hits={k: 0.0 for k in hits_at},
                                mr=0.0, mrr=0.0, n=0)
            return FoldResult(metrics=empty, log=log, seconds=seconds,
                              approach=approach)
        with span("evaluate", approach=approach.info.name):
            metrics = approach.evaluate(split.test, hits_at=hits_at)
        nil = _nil_metrics(approach, pair, split)
    return FoldResult(metrics=metrics, log=log, seconds=seconds,
                      approach=approach, nil=nil)


def _nil_metrics(approach: EmbeddingApproach, pair: KGPair,
                 split: AlignmentSplit) -> DanglingMetrics | None:
    """Dangling evaluation for corrupted datasets; None on clean ones.

    The manifest's dangling list is split deterministically in half:
    the first half plus the validation pairs calibrate the abstention
    threshold, the second half plus the test pairs are scored — so the
    reported F1 is out-of-sample for the dangling side too.
    """
    dangling = sorted(dangling_sources(pair))
    if not dangling:
        return None
    half = len(dangling) // 2
    threshold = approach.calibrate_abstention(split.valid, dangling[:half])
    return approach.evaluate_dangling(split.test, dangling[half:],
                                      threshold=threshold)


def cross_validate(
    factory: Callable[[], EmbeddingApproach],
    pair: KGPair,
    n_folds: int = 5,
    hits_at: tuple[int, ...] = (1, 5, 10),
    name: str | None = None,
    seed: int = 0,
    checkpoint_dir: Path | str | None = None,
    checkpoint_every: int = 1,
    jobs: int = 1,
) -> CVResult:
    """The paper's 5-fold protocol (``n_folds`` may be reduced for speed).

    With ``checkpoint_dir`` the run is crash-safe: each completed fold's
    metrics are appended atomically to ``cv_progress.json`` in that
    directory, each in-flight fold checkpoints under ``fold_<k>/``, and
    rerunning with the same directory skips completed folds and resumes
    the interrupted one mid-training.  A fold stopped by SIGTERM/SIGINT
    leaves ``result.status == "interrupted"`` and no further folds run.

    With ``jobs > 1`` the pending folds fan out over that many worker
    processes through :mod:`repro.orchestrate` — results are
    bit-identical to the serial run (folds are independent and each
    seeds its own RNG), completed folds still land in
    ``cv_progress.json`` one by one, and a crashed worker's fold is
    requeued to a fresh worker (see ``docs/orchestration.md``).
    """
    if not 1 <= n_folds <= 5:
        raise ValueError("n_folds must be between 1 and 5")
    splits = pair.five_fold_splits(seed=seed)[:n_folds]
    if name is None:
        probe = factory()
        name = probe.info.name
    config = {"approach": name, "dataset": pair.name,
              "n_folds": n_folds, "seed": seed, "hits_at": list(hits_at)}
    completed: dict[int, FoldResult] = {}
    progress_path: Path | None = None
    if checkpoint_dir is not None:
        checkpoint_dir = Path(checkpoint_dir)
        progress_path = checkpoint_dir / _PROGRESS_FILE
        completed = _load_cv_progress(progress_path, config)
    result = CVResult(name=name, dataset=pair.name)
    if completed:
        result.status = "resumed"
    pool_parent = False
    with span("cross_validate", approach=name, dataset=pair.name,
              n_folds=n_folds, jobs=jobs):
        pending = [k for k in range(1, n_folds + 1) if k not in completed]
        if jobs > 1 and len(pending) > 1:
            pool_parent = True
            _parallel_folds(
                pending, completed, factory=factory, pair=pair,
                splits=splits, hits_at=hits_at, jobs=jobs,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                progress_path=progress_path, config=config, name=name,
            )
            result.folds = [completed[k] for k in sorted(completed)]
        else:
            for fold_index, split in enumerate(splits, start=1):
                if fold_index in completed:
                    result.folds.append(completed[fold_index])
                    continue
                fold_ckpt = None
                if checkpoint_dir is not None:
                    fold_ckpt = checkpoint_dir / f"fold_{fold_index}"
                fold = run_fold(factory, pair, split, hits_at=hits_at,
                                checkpoint_dir=fold_ckpt,
                                checkpoint_every=checkpoint_every)
                if fold.log.status == "interrupted":
                    result.status = "interrupted"
                    break
                result.folds.append(fold)
                completed[fold_index] = fold
                if progress_path is not None:
                    _save_cv_progress(progress_path, config, completed)
        if result.status != "interrupted" and any(
            fold.log.status == "diverged" for fold in result.folds
        ):
            # sentinel-aborted folds evaluated on their best snapshot, so
            # the aggregate is still meaningful — but the run is flagged
            result.status = "diverged"
    # Persist the run to the ledger (no-op unless REPRO_LEDGER_PATH is
    # set) so `repro obs-gate` can compare future CV runs against it.
    record_run("cv", f"{name}/{pair.name}",
               config={**config, "status": result.status},
               scalars=(_cv_scalars(result, hits_at,
                                    pool_parent=pool_parent)
                        if result.folds else {}))
    return result


def fold_to_dict(fold: FoldResult) -> dict:
    """Serialize a :class:`FoldResult` to plain JSON-friendly data.

    The one wire/disk format for fold outcomes: ``cv_progress.json``,
    the sweep progress file and the orchestrator's worker->parent result
    queue all carry exactly this shape.
    """
    data = {
        "metrics": {
            "hits": {str(k): float(v) for k, v in fold.metrics.hits.items()},
            "mr": float(fold.metrics.mr),
            "mrr": float(fold.metrics.mrr),
            "n": int(fold.metrics.n),
        },
        "seconds": float(fold.seconds),
        "train_seconds": float(fold.log.train_seconds),
        "best_epoch": int(fold.log.best_epoch),
        "peak_rss_bytes": int(fold.log.peak_rss_bytes),
        "log": _log_to_dict(fold.log),
    }
    # only-when-present: clean-dataset folds keep the exact pre-NIL wire
    # shape, so progress files and fingerprints from older runs compare
    # equal
    if fold.nil is not None:
        data["nil"] = dataclasses.asdict(fold.nil)
    return data


def fold_from_dict(data: dict) -> FoldResult:
    """Rebuild a :class:`FoldResult` from :func:`fold_to_dict` output.

    The trained model object does not survive the round trip, so
    ``fold.approach`` is ``None`` — the same contract as folds restored
    from a progress file.
    """
    metrics = data["metrics"]
    log = TrainingLog()
    restore_log_fields(log, data.get("log"))
    # diverged_reason is deterministic log state, so a sentinel-aborted
    # fold keeps its status across the round trip; "resumed" does not
    # survive on purpose (clean and crash-resumed folds must compare equal)
    log.status = "diverged" if log.diverged_reason else "completed"
    log.train_seconds = float(data.get("train_seconds", 0.0))
    log.best_epoch = int(data.get("best_epoch", 0))
    log.peak_rss_bytes = int(data.get("peak_rss_bytes", 0))
    return FoldResult(
        metrics=RankMetrics(
            hits={int(k): float(v) for k, v in metrics["hits"].items()},
            mr=float(metrics["mr"]),
            mrr=float(metrics["mrr"]),
            n=int(metrics["n"]),
        ),
        log=log,
        seconds=float(data["seconds"]),
        approach=None,
        nil=(DanglingMetrics(**data["nil"]) if data.get("nil") else None),
    )


def _load_cv_progress(path: Path, config: dict) -> dict[int, FoldResult]:
    """Completed folds recorded by an earlier (interrupted) run.

    Refuses to mix runs: a progress file whose config fingerprint (see
    :mod:`repro.fingerprint`) differs — another approach, dataset, seed
    or fold count — raises instead of silently merging incomparable
    folds.  An unreadable progress file also raises — the file is
    written atomically, so damage means something outside this code
    touched it.
    """
    if not path.is_file():
        return {}
    fault_point("cv.progress", path=path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise RuntimeError(
            f"unreadable cross-validation progress file {path}: {error}"
        ) from error
    recorded = data.get("config", {})
    expected = config_fingerprint(config, include_env=False)
    stored = data.get("fingerprint",
                      config_fingerprint(recorded, include_env=False))
    if stored != expected:
        raise ValueError(
            f"cross-validation progress at {path} was written for "
            f"{recorded}, not {config}; use a fresh checkpoint directory"
        )
    return {int(key): fold_from_dict(fold_data)
            for key, fold_data in data.get("folds", {}).items()}


def _save_cv_progress(path: Path, config: dict,
                      completed: dict[int, FoldResult]) -> None:
    """Atomically rewrite the progress file with every completed fold."""
    payload = {
        "schema": 1,
        "config": config,
        "fingerprint": config_fingerprint(config, include_env=False),
        "folds": {str(index): fold_to_dict(fold)
                  for index, fold in completed.items()},
    }
    atomic_write_json(path, payload, site="cv.progress")


# ---------------------------------------------------------------------------
# parallel fold execution (delegates to repro.orchestrate)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _FoldTask:
    """A fold as the orchestrator's scheduler sees it."""

    fold: int

    @property
    def job_id(self) -> str:
        return f"fold_{self.fold}"


def _run_fold_task(task: _FoldTask, *, factory, pair, splits, hits_at,
                   checkpoint_dir, checkpoint_every) -> dict:
    """Worker-side fold execution; returns :func:`fold_to_dict` data."""
    fold_ckpt = None
    if checkpoint_dir is not None:
        fold_ckpt = Path(checkpoint_dir) / f"fold_{task.fold}"
    fold = run_fold(factory, pair, splits[task.fold - 1], hits_at=hits_at,
                    checkpoint_dir=fold_ckpt,
                    checkpoint_every=checkpoint_every)
    if fold.log.status == "interrupted":
        raise RuntimeError(
            f"fold {task.fold} was interrupted inside a worker; "
            f"rerun to resume from its checkpoint"
        )
    return fold_to_dict(fold)


def _parallel_folds(pending, completed, *, factory, pair, splits, hits_at,
                    jobs, checkpoint_dir, checkpoint_every, progress_path,
                    config, name) -> None:
    """Fan the pending folds out over worker processes."""
    from ..orchestrate.scheduler import run_jobs

    def on_complete(task, payload):
        completed[task.fold] = fold_from_dict(payload)
        if progress_path is not None:
            _save_cv_progress(progress_path, config, completed)

    _, stats = run_jobs(
        [_FoldTask(fold=k) for k in pending],
        jobs=jobs,
        runner=_run_fold_task,
        runner_kwargs=dict(factory=factory, pair=pair, splits=list(splits),
                           hits_at=hits_at, checkpoint_dir=checkpoint_dir,
                           checkpoint_every=checkpoint_every),
        label=f"cv/{name}",
        on_complete=on_complete,
    )
    if stats.failed:
        details = "; ".join(f"{job_id}: {error}"
                            for job_id, error in stats.failed.items())
        raise RuntimeError(f"cross-validation folds failed: {details}")


def _cv_scalars(result: CVResult, hits_at: tuple[int, ...],
                pool_parent: bool = False) -> dict:
    """The headline CVResult numbers the regression gate understands.

    ``pool_parent`` marks runs that fanned folds out over worker
    processes: per-fold RSS then comes from the workers (their
    ``RUSAGE_SELF`` at ``fit`` time), but the run's true peak must also
    cover the parent itself and any worker growth after ``fit`` — so the
    parent folds in ``max(self, children)`` via ``RUSAGE_CHILDREN``.
    """
    peak_rss = float(result.peak_rss_bytes)
    if pool_parent:
        peak_rss = float(max(int(peak_rss), peak_rss_tree_bytes()))
    scalars = {
        "train_seconds": result.train_seconds,
        "steps_per_second": result.steps_per_second,
        "mean_epoch_seconds": result.mean_epoch_seconds,
        "peak_rss_bytes": peak_rss,
    }
    for k in hits_at:
        mean, _ = result.mean_std(f"hits@{k}")
        scalars[f"hits_at_{k}"] = mean
    scalars["mrr"] = result.mean_std("mrr")[0]
    diverged = sum(1 for fold in result.folds
                   if fold.log.status == "diverged")
    if diverged:
        scalars["folds_diverged"] = float(diverged)
    probed = [fold.log.probes[-1]["hits_at_1"] for fold in result.folds
              if fold.log.probes]
    if probed:
        scalars["probe_hits_at_1"] = float(np.mean(probed))
    nils = [fold.nil for fold in result.folds if fold.nil is not None]
    if nils:
        # corrupted-dataset runs: dangling detection + the matchable
        # metrics under abstention, so `repro obs-gate` guards
        # robustness regressions alongside clean-quality ones
        scalars["dangling_f1"] = float(np.mean([n.f1 for n in nils]))
        scalars["dangling_precision"] = float(
            np.mean([n.precision for n in nils]))
        scalars["dangling_recall"] = float(np.mean([n.recall for n in nils]))
        scalars["hits_at_1_matchable"] = float(
            np.mean([n.hits1_matchable for n in nils]))
        scalars["mrr_matchable"] = float(
            np.mean([n.mrr_matchable for n in nils]))
    return scalars
