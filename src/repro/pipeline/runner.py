"""Cross-validation runner (§5.1's experimental protocol).

Runs an approach factory over the five folds of a dataset, aggregates
metrics as ``mean ± std`` and records wall-clock training time — the
numbers Table 5 and Figure 8 report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..alignment.evaluate import RankMetrics
from ..approaches.base import EmbeddingApproach, TrainingLog
from ..kg import AlignmentSplit, KGPair
from ..obs import span
from ..obs.ledger import record_run

__all__ = ["FoldResult", "CVResult", "run_fold", "cross_validate"]


@dataclass
class FoldResult:
    """Outcome of one fold."""

    metrics: RankMetrics
    log: TrainingLog
    seconds: float
    approach: EmbeddingApproach


@dataclass
class CVResult:
    """Aggregated cross-validation outcome."""

    name: str
    dataset: str
    folds: list[FoldResult] = field(default_factory=list)

    def _values(self, getter) -> np.ndarray:
        return np.array([getter(fold) for fold in self.folds])

    def mean_std(self, metric: str) -> tuple[float, float]:
        """``metric`` is ``hits@K``, ``mr`` or ``mrr``."""
        if metric.startswith("hits@"):
            k = int(metric.split("@")[1])
            values = self._values(lambda f: f.metrics.hits_at(k))
        elif metric == "mr":
            values = self._values(lambda f: f.metrics.mr)
        elif metric == "mrr":
            values = self._values(lambda f: f.metrics.mrr)
        else:
            raise KeyError(f"unknown metric {metric!r}")
        return float(values.mean()), float(values.std())

    @property
    def train_seconds(self) -> float:
        return float(self._values(lambda f: f.seconds).mean())

    @property
    def steps_per_second(self) -> float:
        """Mean optimizer-step throughput across folds (0.0 if untracked).

        Figure 8 reports wall-clock training time; with the sparse
        gradient path this normalized view separates algorithmic cost
        from dataset size.
        """
        values = self._values(lambda f: f.log.steps_per_second)
        positive = values[values > 0]
        return float(positive.mean()) if len(positive) else 0.0

    @property
    def mean_epoch_seconds(self) -> float:
        """Mean per-epoch wall time over every trained epoch of every fold."""
        seconds = [s for fold in self.folds for s in fold.log.epoch_seconds]
        return float(np.mean(seconds)) if seconds else 0.0

    @property
    def peak_rss_bytes(self) -> int:
        """Highest process peak RSS any fold's training observed."""
        if not self.folds:
            return 0
        return int(max(fold.log.peak_rss_bytes for fold in self.folds))

    def format(self, metrics: tuple[str, ...] = ("hits@1", "hits@5", "mrr")) -> str:
        cells = []
        for metric in metrics:
            mean, std = self.mean_std(metric)
            cells.append(f"{metric}={mean:.3f}±{std:.3f}")
        return f"{self.name:9s} {self.dataset:18s} " + " ".join(cells)


def run_fold(
    factory: Callable[[], EmbeddingApproach],
    pair: KGPair,
    split: AlignmentSplit,
    hits_at: tuple[int, ...] = (1, 5, 10),
) -> FoldResult:
    """Train on one fold and evaluate on its test pairs."""
    approach = factory()
    with span("fold", approach=approach.info.name, dataset=pair.name):
        started = time.perf_counter()
        log = approach.fit(pair, split)
        seconds = time.perf_counter() - started
        with span("evaluate", approach=approach.info.name):
            metrics = approach.evaluate(split.test, hits_at=hits_at)
    return FoldResult(metrics=metrics, log=log, seconds=seconds, approach=approach)


def cross_validate(
    factory: Callable[[], EmbeddingApproach],
    pair: KGPair,
    n_folds: int = 5,
    hits_at: tuple[int, ...] = (1, 5, 10),
    name: str | None = None,
    seed: int = 0,
) -> CVResult:
    """The paper's 5-fold protocol (``n_folds`` may be reduced for speed)."""
    if not 1 <= n_folds <= 5:
        raise ValueError("n_folds must be between 1 and 5")
    splits = pair.five_fold_splits(seed=seed)[:n_folds]
    if name is None:
        probe = factory()
        name = probe.info.name
    result = CVResult(name=name, dataset=pair.name)
    with span("cross_validate", approach=name, dataset=pair.name,
              n_folds=n_folds):
        for split in splits:
            result.folds.append(run_fold(factory, pair, split, hits_at=hits_at))
    # Persist the run to the ledger (no-op unless REPRO_LEDGER_PATH is
    # set) so `repro obs-gate` can compare future CV runs against it.
    record_run("cv", f"{name}/{pair.name}",
               config={"approach": name, "dataset": pair.name,
                       "n_folds": n_folds, "seed": seed,
                       "hits_at": list(hits_at)},
               scalars=_cv_scalars(result, hits_at))
    return result


def _cv_scalars(result: CVResult, hits_at: tuple[int, ...]) -> dict:
    """The headline CVResult numbers the regression gate understands."""
    scalars = {
        "train_seconds": result.train_seconds,
        "steps_per_second": result.steps_per_second,
        "mean_epoch_seconds": result.mean_epoch_seconds,
        "peak_rss_bytes": float(result.peak_rss_bytes),
    }
    for k in hits_at:
        mean, _ = result.mean_std(f"hits@{k}")
        scalars[f"hits_at_{k}"] = mean
    scalars["mrr"] = result.mean_std("mrr")[0]
    return scalars
