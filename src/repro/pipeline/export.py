"""Result export in the paper's release format.

The paper publishes "the experimental results on five folds of each
dataset using all the metrics ... in the CSV format"; this module writes
the same artifact from :class:`~repro.pipeline.runner.CVResult` objects.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..faults import atomic_write_with
from .runner import CVResult

__all__ = ["export_csv", "export_fold_csv"]

_METRICS = ("hits@1", "hits@5", "hits@10", "mr", "mrr")


def export_csv(results: list[CVResult], path: Path | str) -> None:
    """One row per (approach, dataset): mean and std of every metric.

    The CSV is written atomically: a crash mid-export leaves the
    previous complete file (or nothing), never a truncated table.
    """
    def _write(handle) -> None:
        writer = csv.writer(handle)
        header = ["approach", "dataset", "folds", "train_seconds"]
        for metric in _METRICS:
            header += [f"{metric}_mean", f"{metric}_std"]
        writer.writerow(header)
        for result in results:
            row = [result.name, result.dataset, len(result.folds),
                   f"{result.train_seconds:.3f}"]
            for metric in _METRICS:
                try:
                    mean, std = result.mean_std(metric)
                except KeyError:  # metric not recorded on this run
                    mean, std = float("nan"), float("nan")
                row += [f"{mean:.6f}", f"{std:.6f}"]
            writer.writerow(row)

    atomic_write_with(path, _write, mode="w", site="io.write")


def export_fold_csv(results: list[CVResult], path: Path | str) -> None:
    """One row per (approach, dataset, fold): the raw per-fold metrics.

    Atomic for the same reason as :func:`export_csv`.
    """
    def _write(handle) -> None:
        writer = csv.writer(handle)
        writer.writerow(
            ["approach", "dataset", "fold", "hits@1", "hits@5", "hits@10",
             "mr", "mrr", "train_seconds", "epochs"]
        )
        for result in results:
            for fold_index, fold in enumerate(result.folds, start=1):
                metrics = fold.metrics
                writer.writerow([
                    result.name, result.dataset, fold_index,
                    f"{metrics.hits.get(1, float('nan')):.6f}",
                    f"{metrics.hits.get(5, float('nan')):.6f}",
                    f"{metrics.hits.get(10, float('nan')):.6f}",
                    f"{metrics.mr:.3f}",
                    f"{metrics.mrr:.6f}",
                    f"{fold.seconds:.3f}",
                    fold.log.epochs_run,
                ])

    atomic_write_with(path, _write, mode="w", site="io.write")
