"""Experiment pipeline: cross-validation runner and aggregation."""

from .checkpoint import EmbeddingSnapshot, load_snapshot, save_snapshot
from .export import export_csv, export_fold_csv
from .runner import CVResult, FoldResult, cross_validate, run_fold

__all__ = ["cross_validate", "run_fold", "CVResult", "FoldResult",
           "export_csv", "export_fold_csv",
           "EmbeddingSnapshot", "save_snapshot", "load_snapshot"]
