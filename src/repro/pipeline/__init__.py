"""Experiment pipeline: cross-validation runner and aggregation."""

from .checkpoint import (
    EmbeddingSnapshot,
    load_snapshot,
    load_training_state,
    save_snapshot,
    save_training_state,
)
from .export import export_csv, export_fold_csv
from .runner import CVResult, FoldResult, cross_validate, run_fold

__all__ = ["cross_validate", "run_fold", "CVResult", "FoldResult",
           "export_csv", "export_fold_csv",
           "EmbeddingSnapshot", "save_snapshot", "load_snapshot",
           "save_training_state", "load_training_state"]
