"""Persist trained entity embeddings for later analysis.

Training is the expensive step; the geometric analyses (§6.1) and the
alignment-module comparisons (Table 6) only need the final embedding
matrices.  A :class:`EmbeddingSnapshot` captures them, round-trips
through a single ``.npz`` file, and offers the same evaluate/predict
surface as a trained approach.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..alignment import csls as csls_rescale
from ..alignment import infer_alignment, rank_metrics, similarity_matrix
from ..approaches.base import EmbeddingApproach
from ..autodiff import Optimizer, Parameter
from ..faults import atomic_write_with

__all__ = [
    "EmbeddingSnapshot", "save_snapshot", "load_snapshot",
    "save_training_state", "load_training_state",
]


class EmbeddingSnapshot:
    """Frozen source/target embeddings with the alignment-module API."""

    def __init__(self, sources: list[str], source_matrix: np.ndarray,
                 targets: list[str], target_matrix: np.ndarray,
                 metric: str = "cosine", name: str = "snapshot"):
        if len(sources) != len(source_matrix):
            raise ValueError("source names and matrix rows disagree")
        if len(targets) != len(target_matrix):
            raise ValueError("target names and matrix rows disagree")
        self.sources = list(sources)
        self.targets = list(targets)
        self.source_matrix = np.asarray(source_matrix, dtype=np.float64)
        self.target_matrix = np.asarray(target_matrix, dtype=np.float64)
        self.metric = metric
        self.name = name
        self._source_row = {entity: i for i, entity in enumerate(self.sources)}
        self._target_row = {entity: i for i, entity in enumerate(self.targets)}

    @classmethod
    def from_approach(
        cls, approach: EmbeddingApproach,
        pairs: list[tuple[str, str]], name: str | None = None,
    ) -> "EmbeddingSnapshot":
        """Capture an approach's embeddings for the entities of ``pairs``."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        return cls(
            sources, approach._source_matrix(sources),
            targets, approach._target_matrix(targets),
            metric=approach.info.metric,
            name=name or approach.info.name,
        )

    # ------------------------------------------------------------------
    def similarity_between(self, sources, targets, metric=None, csls_k=0):
        """Similarity matrix between named entities (snapshot rows)."""
        matrix = similarity_matrix(
            self.source_matrix[[self._source_row[e] for e in sources]],
            self.target_matrix[[self._target_row[e] for e in targets]],
            metric or self.metric,
        )
        if csls_k > 0:
            matrix = csls_rescale(matrix, k=csls_k)
        return matrix

    def evaluate(self, pairs, hits_at=(1, 5, 10), metric=None, csls_k=0):
        """Rank metrics over ``pairs`` (targets are the candidate set)."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        return rank_metrics(similarity, np.arange(len(pairs)), hits_at=hits_at)

    def predict(self, pairs, strategy="greedy", metric=None, csls_k=0):
        """Predicted alignment over the entities of ``pairs``."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        assignment = infer_alignment(similarity, strategy)
        return [
            (source, targets[int(j)])
            for source, j in zip(sources, assignment)
            if j >= 0
        ]


def save_snapshot(snapshot: EmbeddingSnapshot, path: Path | str) -> None:
    """Atomically write a snapshot to a single ``.npz`` file."""
    atomic_write_with(
        path,
        lambda handle: np.savez_compressed(
            handle,
            sources=np.array(snapshot.sources, dtype=object),
            targets=np.array(snapshot.targets, dtype=object),
            source_matrix=snapshot.source_matrix,
            target_matrix=snapshot.target_matrix,
            metric=np.array(snapshot.metric),
            name=np.array(snapshot.name),
        ),
        site="snapshot.save",
    )


def save_training_state(
    path: Path | str,
    parameters: list[Parameter],
    optimizer: Optimizer | None = None,
) -> None:
    """Persist parameters and (optionally) optimizer state to one ``.npz``.

    Optimizer state is keyed by the parameter's *position* in the
    parameter list (stable across processes — unlike ``id()``, which the
    optimizers no longer use), so training can resume exactly:
    Adam moments, Adagrad accumulators and momentum velocities all
    round-trip.
    """
    arrays: dict[str, np.ndarray] = {
        f"param_{index}": parameter.data
        for index, parameter in enumerate(parameters)
    }
    arrays["param_names"] = np.array(
        [parameter.name for parameter in parameters], dtype=object
    )
    if optimizer is not None:
        state = optimizer.state_dict()
        arrays["optimizer_lr"] = np.array(state["lr"])
        for index, slot in state["state"].items():
            for key, value in slot.items():
                arrays[f"opt_{index}_{key}"] = np.asarray(value)
    atomic_write_with(
        path,
        lambda handle: np.savez_compressed(handle, **arrays),
        site="snapshot.save",
    )


def load_training_state(
    path: Path | str,
    parameters: list[Parameter],
    optimizer: Optimizer | None = None,
) -> None:
    """Restore parameters (in place) and optimizer state saved by
    :func:`save_training_state`.

    ``parameters`` must be passed in the same order they were saved.
    """
    with np.load(path, allow_pickle=True) as data:
        names = [str(name) for name in data["param_names"]]
        if len(names) != len(parameters):
            raise ValueError(
                f"checkpoint holds {len(names)} parameters, got {len(parameters)}"
            )
        for index, parameter in enumerate(parameters):
            saved = data[f"param_{index}"]
            if saved.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {index} "
                    f"({names[index]!r}): {saved.shape} != {parameter.data.shape}"
                )
            parameter.data[...] = saved
        if optimizer is not None and "optimizer_lr" in data:
            state: dict = {"lr": float(data["optimizer_lr"]), "state": {}}
            for key in data.files:
                if not key.startswith("opt_"):
                    continue
                index_str, slot_key = key[len("opt_"):].split("_", 1)
                state["state"].setdefault(int(index_str), {})[slot_key] = data[key]
            optimizer.load_state_dict(state)


def load_snapshot(path: Path | str) -> EmbeddingSnapshot:
    """Load a snapshot written by :func:`save_snapshot`."""
    with np.load(path, allow_pickle=True) as data:
        return EmbeddingSnapshot(
            sources=[str(s) for s in data["sources"]],
            source_matrix=data["source_matrix"],
            targets=[str(t) for t in data["targets"]],
            target_matrix=data["target_matrix"],
            metric=str(data["metric"]),
            name=str(data["name"]),
        )
