"""Persist trained entity embeddings for later analysis.

Training is the expensive step; the geometric analyses (§6.1) and the
alignment-module comparisons (Table 6) only need the final embedding
matrices.  A :class:`EmbeddingSnapshot` captures them, round-trips
through a single ``.npz`` file, and offers the same evaluate/predict
surface as a trained approach.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..alignment import csls as csls_rescale
from ..alignment import infer_alignment, rank_metrics, similarity_matrix
from ..approaches.base import EmbeddingApproach

__all__ = ["EmbeddingSnapshot", "save_snapshot", "load_snapshot"]


class EmbeddingSnapshot:
    """Frozen source/target embeddings with the alignment-module API."""

    def __init__(self, sources: list[str], source_matrix: np.ndarray,
                 targets: list[str], target_matrix: np.ndarray,
                 metric: str = "cosine", name: str = "snapshot"):
        if len(sources) != len(source_matrix):
            raise ValueError("source names and matrix rows disagree")
        if len(targets) != len(target_matrix):
            raise ValueError("target names and matrix rows disagree")
        self.sources = list(sources)
        self.targets = list(targets)
        self.source_matrix = np.asarray(source_matrix, dtype=np.float64)
        self.target_matrix = np.asarray(target_matrix, dtype=np.float64)
        self.metric = metric
        self.name = name
        self._source_row = {entity: i for i, entity in enumerate(self.sources)}
        self._target_row = {entity: i for i, entity in enumerate(self.targets)}

    @classmethod
    def from_approach(
        cls, approach: EmbeddingApproach,
        pairs: list[tuple[str, str]], name: str | None = None,
    ) -> "EmbeddingSnapshot":
        """Capture an approach's embeddings for the entities of ``pairs``."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        return cls(
            sources, approach._source_matrix(sources),
            targets, approach._target_matrix(targets),
            metric=approach.info.metric,
            name=name or approach.info.name,
        )

    # ------------------------------------------------------------------
    def similarity_between(self, sources, targets, metric=None, csls_k=0):
        """Similarity matrix between named entities (snapshot rows)."""
        matrix = similarity_matrix(
            self.source_matrix[[self._source_row[e] for e in sources]],
            self.target_matrix[[self._target_row[e] for e in targets]],
            metric or self.metric,
        )
        if csls_k > 0:
            matrix = csls_rescale(matrix, k=csls_k)
        return matrix

    def evaluate(self, pairs, hits_at=(1, 5, 10), metric=None, csls_k=0):
        """Rank metrics over ``pairs`` (targets are the candidate set)."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        return rank_metrics(similarity, np.arange(len(pairs)), hits_at=hits_at)

    def predict(self, pairs, strategy="greedy", metric=None, csls_k=0):
        """Predicted alignment over the entities of ``pairs``."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        assignment = infer_alignment(similarity, strategy)
        return [
            (source, targets[int(j)])
            for source, j in zip(sources, assignment)
            if j >= 0
        ]


def save_snapshot(snapshot: EmbeddingSnapshot, path: Path | str) -> None:
    """Write a snapshot to a single ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        sources=np.array(snapshot.sources, dtype=object),
        targets=np.array(snapshot.targets, dtype=object),
        source_matrix=snapshot.source_matrix,
        target_matrix=snapshot.target_matrix,
        metric=np.array(snapshot.metric),
        name=np.array(snapshot.name),
    )


def load_snapshot(path: Path | str) -> EmbeddingSnapshot:
    """Load a snapshot written by :func:`save_snapshot`."""
    with np.load(path, allow_pickle=True) as data:
        return EmbeddingSnapshot(
            sources=[str(s) for s in data["sources"]],
            source_matrix=data["source_matrix"],
            targets=[str(t) for t in data["targets"]],
            target_matrix=data["target_matrix"],
            metric=str(data["metric"]),
            name=str(data["name"]),
        )
