"""Perf-regression sentinel: compare a run against its ledger baseline.

"A Critical Assessment of State-of-the-Art in Entity Alignment"
(Berrendorf et al.) documents how benchmark numbers drift when runs are
not compared under identical conditions.  This module is the automatic
comparison: given a :class:`~repro.obs.ledger.RunLedger`, it pits the
current run against the trailing-N runs *with the same config
fingerprint* using robust statistics —

* a **median + MAD z-score** (outlier-resistant; a single noisy
  baseline run cannot shift the verdict the way a mean/stddev test
  would), and
* a **bootstrap confidence interval on the ratio of medians** for
  latency/throughput metrics, so timing noise must be *statistically*
  distinguishable from the baseline before a regression is declared.

Every metric carries a direction — higher is better for Hits@k and
QPS, lower for latency and RSS — and classifies as ``ok`` /
``regressed`` / ``improved`` / ``no-baseline``.  A regression requires
*all* the evidence to agree: the change points the bad way, exceeds the
per-metric relative threshold, exceeds the MAD z-score threshold, and
(where enabled) the bootstrap CI excludes parity.  This conjunction is
what keeps the gate quiet across ±5% jitter replays while still
catching a 2x slowdown instantly (``tests/test_obs_regress.py``).

``REPRO_GATE_INJECT_FACTOR`` is a test hook: it worsens every current
value by the given factor before comparison, letting CI verify the gate
actually fires without shipping a real regression.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field, replace

from .ledger import RunLedger, record_metric_value

__all__ = [
    "MetricPolicy",
    "MetricVerdict",
    "GateReport",
    "DEFAULT_POLICIES",
    "QUALITY_METRICS",
    "median",
    "mad",
    "robust_z",
    "bootstrap_ratio_ci",
    "compare",
    "gate",
]

OK = "ok"
REGRESSED = "regressed"
IMPROVED = "improved"
NO_BASELINE = "no-baseline"

# Consistency constant: MAD * 1.4826 estimates sigma for normal data,
# i.e. z = 0.6745 * (x - median) / MAD.
_MAD_TO_Z = 0.6745


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is judged."""

    name: str
    higher_is_better: bool
    # Minimum relative change (|current/median - 1|) before anything is
    # flagged: timing metrics get wide bands, quality metrics tight ones.
    rel_threshold: float = 0.20
    # Minimum robust z-score (median/MAD) the change must also clear.
    z_threshold: float = 4.0
    # Baseline runs required before a verdict other than no-baseline.
    min_baseline: int = 3
    # Bootstrap the ratio-of-medians CI (for noisy timing metrics).
    bootstrap: bool = False
    bootstrap_samples: int = 1000
    confidence: float = 0.95


DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    policy.name: policy
    for policy in (
        # training throughput / time
        MetricPolicy("steps_per_second", True, rel_threshold=0.20,
                     bootstrap=True),
        MetricPolicy("mean_epoch_seconds", False, rel_threshold=0.20,
                     bootstrap=True),
        MetricPolicy("median_step_ms", False, rel_threshold=0.20,
                     bootstrap=True),
        MetricPolicy("train_seconds", False, rel_threshold=0.25,
                     bootstrap=True),
        MetricPolicy("peak_rss_bytes", False, rel_threshold=0.30),
        # alignment quality (QUALITY_METRICS below lists these)
        MetricPolicy("hits_at_1", True, rel_threshold=0.10, z_threshold=3.0),
        MetricPolicy("hits_at_5", True, rel_threshold=0.10, z_threshold=3.0),
        MetricPolicy("hits_at_10", True, rel_threshold=0.10, z_threshold=3.0),
        MetricPolicy("mrr", True, rel_threshold=0.10, z_threshold=3.0),
        # streaming-probe quality (docs/observability.md): the last
        # probe's sampled Hits@1, recorded by checkpointing train runs
        # and CV aggregates — a slightly looser band than the full-eval
        # metrics because the probe subsample adds variance
        MetricPolicy("probe_hits_at_1", True, rel_threshold=0.15,
                     z_threshold=3.0),
        # dangling-entity robustness (docs/robustness.md): NIL detection
        # quality and the matchable metrics under abstention, recorded
        # by corrupted-dataset CV runs and the robustness bench
        MetricPolicy("dangling_f1", True, rel_threshold=0.10,
                     z_threshold=3.0),
        MetricPolicy("dangling_precision", True, rel_threshold=0.15,
                     z_threshold=3.0),
        MetricPolicy("dangling_recall", True, rel_threshold=0.15,
                     z_threshold=3.0),
        MetricPolicy("hits_at_1_matchable", True, rel_threshold=0.10,
                     z_threshold=3.0),
        MetricPolicy("mrr_matchable", True, rel_threshold=0.10,
                     z_threshold=3.0),
        # serving
        MetricPolicy("qps", True, rel_threshold=0.20, bootstrap=True),
        MetricPolicy("p50_ms", False, rel_threshold=0.25, bootstrap=True),
        MetricPolicy("p95_ms", False, rel_threshold=0.25, bootstrap=True),
        MetricPolicy("p99_ms", False, rel_threshold=0.30, bootstrap=True),
        MetricPolicy("cache_hit_rate", True, rel_threshold=0.20),
        MetricPolicy("speedup", True, rel_threshold=0.30, bootstrap=True),
    )
}

#: The model-quality policies the gate applies (direction = higher):
#: `make perf-gate` guards these alongside the timing metrics, so a
#: quality regression fails CI exactly like a throughput regression.
QUALITY_METRICS: tuple[str, ...] = (
    "hits_at_1", "hits_at_5", "hits_at_10", "mrr", "probe_hits_at_1",
    "dangling_f1", "hits_at_1_matchable", "mrr_matchable",
)


# ---------------------------------------------------------------------------
# robust statistics
# ---------------------------------------------------------------------------
def median(values: list[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float]) -> float:
    """Median absolute deviation from the median."""
    center = median(values)
    return median([abs(v - center) for v in values])


def robust_z(value: float, baseline: list[float]) -> float:
    """MAD-based z-score of ``value`` against ``baseline``.

    Signed like a normal z-score; ``±inf`` when the baseline has zero
    spread but the value moved (any deviation from a perfectly stable
    baseline is infinitely surprising), ``0`` when it didn't move.
    """
    center = median(baseline)
    spread = mad(baseline)
    deviation = value - center
    if spread == 0.0:
        if deviation == 0.0:
            return 0.0
        return math.copysign(math.inf, deviation)
    return _MAD_TO_Z * deviation / spread


def bootstrap_ratio_ci(
    value: float,
    baseline: list[float],
    *,
    n_samples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for ``value / median(baseline)``.

    Resamples the baseline with replacement; each replicate's statistic
    is the current value over the resampled median.  Deterministic for
    a given ``seed``.
    """
    if not baseline:
        raise ValueError("bootstrap needs a non-empty baseline")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(baseline)
    ratios = []
    for _ in range(n_samples):
        resample = [baseline[rng.randrange(n)] for _ in range(n)]
        center = median(resample)
        if center == 0.0:
            ratios.append(math.inf if value > 0 else 1.0)
        else:
            ratios.append(value / center)
    ratios.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = ratios[max(0, int(alpha * n_samples))]
    hi = ratios[min(n_samples - 1, int((1.0 - alpha) * n_samples))]
    return lo, hi


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------
@dataclass
class MetricVerdict:
    """The sentinel's judgement of one metric."""

    metric: str
    status: str  # ok | regressed | improved | no-baseline
    current: float | None = None
    baseline: list[float] = field(default_factory=list)
    baseline_median: float | None = None
    ratio: float | None = None
    z: float | None = None
    ci: tuple[float, float] | None = None
    higher_is_better: bool | None = None
    reason: str = ""

    def to_dict(self) -> dict:
        out = {
            "metric": self.metric,
            "status": self.status,
            "current": self.current,
            "baseline": list(self.baseline),
            "baseline_median": self.baseline_median,
            "ratio": self.ratio,
            "z": self.z,
            "higher_is_better": self.higher_is_better,
            "reason": self.reason,
        }
        if self.ci is not None:
            out["ci"] = list(self.ci)
        return _json_safe(out)


def _json_safe(obj):
    """Replace non-finite floats (json.dumps emits invalid bare tokens
    for them) with string markers, recursively."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return "inf" if obj > 0 else ("-inf" if obj < 0 else "nan")
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def compare(
    value: float,
    baseline: list[float],
    policy: MetricPolicy,
    *,
    seed: int = 0,
) -> MetricVerdict:
    """Judge one current ``value`` against its ``baseline`` values."""
    verdict = MetricVerdict(
        metric=policy.name, status=OK, current=float(value),
        baseline=[float(v) for v in baseline],
        higher_is_better=policy.higher_is_better,
    )
    if len(baseline) < policy.min_baseline:
        verdict.status = NO_BASELINE
        verdict.reason = (
            f"need >= {policy.min_baseline} comparable runs, "
            f"have {len(baseline)}"
        )
        return verdict

    center = median(baseline)
    verdict.baseline_median = center
    if center == 0.0:
        verdict.ratio = math.inf if value else 1.0
    else:
        verdict.ratio = value / center
    verdict.z = robust_z(value, baseline)

    rel_change = verdict.ratio - 1.0 if math.isfinite(verdict.ratio) \
        else math.copysign(math.inf, value - center)
    worse = rel_change < 0 if policy.higher_is_better else rel_change > 0
    magnitude_ok = abs(rel_change) >= policy.rel_threshold
    z_ok = abs(verdict.z) >= policy.z_threshold

    ci_agrees = True
    if policy.bootstrap:
        verdict.ci = bootstrap_ratio_ci(
            value, baseline, n_samples=policy.bootstrap_samples,
            confidence=policy.confidence, seed=seed,
        )
        lo, hi = verdict.ci
        # the whole CI must sit on the changed side of parity
        ci_agrees = hi < 1.0 if rel_change < 0 else lo > 1.0

    if magnitude_ok and z_ok and ci_agrees:
        verdict.status = REGRESSED if worse else IMPROVED
        direction = "down" if rel_change < 0 else "up"
        verdict.reason = (
            f"{direction} {abs(rel_change):.1%} vs median of "
            f"{len(baseline)} baseline runs (robust z={verdict.z:.1f})"
        )
    else:
        blockers = []
        if not magnitude_ok:
            blockers.append(
                f"|Δ|={abs(rel_change):.1%} < {policy.rel_threshold:.0%}")
        if not z_ok:
            blockers.append(f"|z|={abs(verdict.z):.1f} < {policy.z_threshold:g}")
        if not ci_agrees:
            blockers.append("bootstrap CI includes parity")
        verdict.reason = "within noise (" + "; ".join(blockers) + ")"
    return verdict


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------
@dataclass
class GateReport:
    """Machine-readable outcome of one gate evaluation."""

    status: str  # ok | regressed | no-baseline | no-runs
    run_id: str | None = None
    fingerprint: str | None = None
    name: str | None = None
    kind: str | None = None
    verdicts: list[MetricVerdict] = field(default_factory=list)
    inject_factor: float = 1.0

    @property
    def exit_code(self) -> int:
        return 1 if self.status == REGRESSED else 0

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.status == REGRESSED]

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "name": self.name,
            "kind": self.kind,
            "inject_factor": self.inject_factor,
            "exit_code": self.exit_code,
            "metrics": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def format(self) -> str:
        if self.status == "no-runs":
            return "perf gate: no runs in ledger (nothing to compare)"
        lines = [
            f"perf gate: run {self.run_id} ({self.kind}/{self.name}, "
            f"fingerprint {self.fingerprint})"
        ]
        if self.inject_factor != 1.0:
            lines.append(f"  !! REPRO_GATE_INJECT_FACTOR="
                         f"{self.inject_factor:g} active (test hook)")
        marks = {OK: "ok       ", REGRESSED: "REGRESSED", IMPROVED:
                 "improved ", NO_BASELINE: "no-base  "}
        for v in self.verdicts:
            current = f"{v.current:.6g}" if v.current is not None else "-"
            base = (f"median {v.baseline_median:.6g} (n={len(v.baseline)})"
                    if v.baseline_median is not None
                    else f"n={len(v.baseline)}")
            lines.append(f"  {marks[v.status]} {v.metric:<20s} "
                         f"current {current:>12s}  baseline {base}  "
                         f"[{v.reason}]")
        lines.append(f"verdict: {self.status.upper()}")
        return "\n".join(lines)


def _injected(value: float, policy: MetricPolicy, factor: float) -> float:
    """Worsen ``value`` by ``factor`` along the metric's bad direction."""
    if factor == 1.0 or factor <= 0:
        return value
    return value / factor if policy.higher_is_better else value * factor


def gate(
    ledger: RunLedger,
    *,
    metrics: list[str] | None = None,
    n_baseline: int = 5,
    policies: dict[str, MetricPolicy] | None = None,
    run_id: str | None = None,
    fingerprint: str | None = None,
    seed: int = 0,
    inject_factor: float | None = None,
    rel_threshold: float | None = None,
    where=None,
) -> GateReport:
    """Evaluate the most recent run (or ``run_id``) against its
    trailing-``n_baseline`` same-fingerprint history.

    Metrics default to every policy-known scalar the current run
    carries.  ``rel_threshold`` overrides every policy's band (CLI
    knob); ``inject_factor`` (or ``REPRO_GATE_INJECT_FACTOR``) worsens
    current values first — the CI self-test hook.  ``where`` (a
    ``record -> bool`` predicate) restricts both the gated run and its
    baseline pool — e.g. :func:`repro.obs.ledger.sweep_where` keeps a
    sweep's jobs from being judged against unrelated bench records.
    """
    policies = dict(policies or DEFAULT_POLICIES)
    if rel_threshold is not None:
        policies = {name: replace(policy, rel_threshold=rel_threshold)
                    for name, policy in policies.items()}
    if inject_factor is None:
        inject_factor = float(
            os.environ.get("REPRO_GATE_INJECT_FACTOR") or 1.0)

    current = ledger.last(run_id=run_id, where=where)
    if current is None:
        return GateReport(status="no-runs", inject_factor=inject_factor)
    fingerprint = fingerprint or current["fingerprint"]

    if metrics is None:
        metrics = [name for name in policies
                   if record_metric_value(current, name) is not None]

    report = GateReport(
        status=OK, run_id=current["run_id"], fingerprint=fingerprint,
        name=current["name"], kind=current["kind"],
        inject_factor=inject_factor,
    )
    for metric in metrics:
        policy = policies.get(metric)
        if policy is None:
            # unknown metric: judged like a throughput number by default
            policy = MetricPolicy(metric, higher_is_better=True)
        value = record_metric_value(current, metric)
        if value is None:
            report.verdicts.append(MetricVerdict(
                metric=metric, status=NO_BASELINE,
                reason="metric absent from current run"))
            continue
        value = _injected(value, policy, inject_factor)
        baseline = ledger.baseline(
            metric, fingerprint, n=n_baseline,
            exclude_run_id=current["run_id"],
            kind=current["kind"], name=current["name"],
            where=where,
        )
        report.verdicts.append(compare(value, baseline, policy, seed=seed))

    if any(v.status == REGRESSED for v in report.verdicts):
        report.status = REGRESSED
    elif report.verdicts and all(v.status == NO_BASELINE
                                 for v in report.verdicts):
        report.status = NO_BASELINE
    return report
