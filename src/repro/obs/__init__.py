"""``repro.obs`` — unified telemetry: tracing, metrics, op profiling.

One dependency-free observability layer shared by training
(:mod:`repro.approaches`), the cross-validation pipeline
(:mod:`repro.pipeline`) and serving (:mod:`repro.serve`):

* :class:`MetricsRegistry` — named counters / gauges / histograms with
  labels; thread-safe, snapshot/merge/reset.
* :class:`Tracer` + :func:`span` — nested spans with wall/CPU time and
  peak-RSS deltas, exportable as JSON-lines and Chrome-trace files.
* :class:`OpProfiler` — wraps autodiff op dispatch, backward closures
  and optimizer steps to attribute training time per op kind.

Everything is off by default and zero-cost when off: ``span()`` returns
a shared no-op, and the op profiler patches methods only while enabled.
The one-stop entry point is :func:`capture`::

    from repro import obs

    with obs.capture(profile_ops=True) as cap:
        approach.fit(pair, split)
    cap.write("events.jsonl")              # repro obs-report events.jsonl
    cap.tracer.write_chrome_trace("trace.json")   # chrome://tracing
    print(cap.profiler.format())

See ``docs/observability.md`` for the full guide.
"""

from __future__ import annotations

from .exporters import (
    JsonLinesLogger,
    render_prometheus,
)
from .live import (
    ProgressSink,
    StallDetector,
    append_jsonl,
    format_top,
    get_progress,
    open_bus,
    read_state,
    report_progress,
    set_progress_sink,
    tail_jsonl,
)
from .ledger import (
    RunLedger,
    RunRecord,
    config_fingerprint,
    default_ledger,
    env_fingerprint,
    record_run,
    record_sweep_id,
    sweep_where,
    validate_record,
)
from .opprof import (
    OpProfiler,
    OpStat,
    disable_op_profiler,
    enable_op_profiler,
    profile_ops,
)
from .quality import (
    ConformanceReport,
    ConformanceRow,
    QualityMonitor,
    conformance_report,
    load_reference,
)
from .regress import (
    QUALITY_METRICS,
    GateReport,
    MetricPolicy,
    MetricVerdict,
    gate,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    label_snapshot,
    parse_labelled_name,
    set_registry,
)
from .report import (
    format_op_table,
    format_phase_table,
    format_quality_table,
    load_events,
    load_events_merged,
    load_events_tolerant,
    phase_breakdown,
)
from .trace import (
    Tracer,
    events_to_chrome,
    get_tracer,
    peak_rss_bytes,
    peak_rss_children_bytes,
    peak_rss_tree_bytes,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "parse_labelled_name",
    "label_snapshot",
    "Tracer", "span", "get_tracer", "set_tracer", "tracing_enabled",
    "events_to_chrome", "peak_rss_bytes", "peak_rss_children_bytes",
    "peak_rss_tree_bytes",
    "OpProfiler", "OpStat", "enable_op_profiler", "disable_op_profiler",
    "profile_ops",
    "load_events", "load_events_tolerant", "load_events_merged",
    "phase_breakdown", "format_phase_table", "format_op_table",
    "format_quality_table",
    "QualityMonitor", "ConformanceReport", "ConformanceRow",
    "conformance_report", "load_reference", "QUALITY_METRICS",
    "ProgressSink", "report_progress", "set_progress_sink",
    "get_progress", "StallDetector", "read_state", "format_top",
    "tail_jsonl", "open_bus", "append_jsonl",
    "RunLedger", "RunRecord", "record_run", "default_ledger",
    "config_fingerprint", "validate_record",
    "GateReport", "MetricPolicy", "MetricVerdict", "gate",
    "render_prometheus", "JsonLinesLogger",
    "capture", "Capture",
]


class Capture:
    """An active observability session: tracer + registry (+ profiler)."""

    def __init__(self, profile_ops: bool = False,
                 tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None):
        self.tracer = tracer or Tracer()
        self.registry = registry or MetricsRegistry()
        self.profiler: OpProfiler | None = None
        self._profile_ops = profile_ops
        self._previous_tracer: Tracer | None = None
        self._previous_registry: MetricsRegistry | None = None

    def __enter__(self) -> "Capture":
        self._previous_tracer = set_tracer(self.tracer)
        self._previous_registry = set_registry(self.registry)
        if self._profile_ops:
            self.profiler = enable_op_profiler()
        return self

    def __exit__(self, *exc):
        if self.profiler is not None:
            disable_op_profiler()
        set_tracer(self._previous_tracer)
        set_registry(self._previous_registry)
        return False

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[dict]:
        return self.tracer.events

    def write(self, path) -> None:
        """Write the full event stream (spans, op profile, metrics
        snapshot) as JSON-lines, ready for ``repro obs-report``."""
        recorded = {e.get("type") for e in self.tracer.events}
        if self.profiler is not None and self.profiler.stats \
                and "op_profile" not in recorded:
            self.tracer.event("op_profile", "autodiff",
                              ops=self.profiler.summary())
        snapshot = self.registry.snapshot()
        if any(snapshot.values()) and "metrics" not in recorded:
            self.tracer.event("metrics", "registry", snapshot=snapshot)
        self.tracer.write_jsonl(path)


def capture(profile_ops: bool = False,
            tracer: Tracer | None = None,
            registry: MetricsRegistry | None = None) -> Capture:
    """Start tracing (and optionally op profiling) for a ``with`` block.

    Installs a fresh tracer and metrics registry as the process-wide
    defaults, restoring the previous ones on exit."""
    return Capture(profile_ops=profile_ops, tracer=tracer, registry=registry)
