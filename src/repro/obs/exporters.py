"""Standard-format metric exporters: Prometheus text and structured logs.

A SEA-style production alignment service ("SEA: A Scalable Entity
Alignment System") treats scrapeable metrics as table stakes.  This
module renders a :class:`~repro.obs.registry.MetricsRegistry` — or a
serialized ``snapshot()`` of one, e.g. out of a ledger record — in the
Prometheus text exposition format: counters as ``*_total``, gauges
verbatim, histograms as cumulative ``_bucket`` series with the
``_sum``/``_count`` pair and a ``+Inf`` bucket equal to the count.

It also provides :class:`JsonLinesLogger`, a structured JSON-lines
logger that stamps every record with the active tracer's trace id and
the enclosing span's id/name, so log lines correlate with the Chrome
traces the same run exports.
"""

from __future__ import annotations

import json
import math
import re
import time

from .registry import MetricsRegistry, parse_labelled_name
from .trace import get_tracer

__all__ = [
    "render_prometheus",
    "sanitize_metric_name",
    "escape_label_value",
    "JsonLinesLogger",
]

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "") -> str:
    """A legal Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = _NAME_BAD.sub("_", name)
    if namespace:
        out = f"{namespace}_{out}"
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _sanitize_label_name(name: str) -> str:
    out = _NAME_BAD.sub("_", name).replace(":", "_")
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict, extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [(_sanitize_label_name(k), escape_label_value(v))
             for k, v in sorted(labels.items())]
    pairs += extra or []
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _bucket_bound_key(key: str) -> float:
    # snapshot bucket keys look like "le_0.005" / "le_inf"
    text = key[3:] if key.startswith("le_") else key
    return math.inf if text == "inf" else float(text)


def _snapshot_histogram_series(data: dict) -> tuple[list[tuple[float, int]], float, int]:
    """``(per-bucket counts sorted by bound, sum, count)`` from either a
    raw (``bounds``+``counts``) or sparse (``buckets``) snapshot."""
    if "bounds" in data and "counts" in data:
        bounds = [float(b) for b in data["bounds"]] + [math.inf]
        per_bucket = list(zip(bounds, (int(c) for c in data["counts"])))
    else:
        per_bucket = sorted(
            (_bucket_bound_key(key), int(count))
            for key, count in data.get("buckets", {}).items()
        )
        if not per_bucket or per_bucket[-1][0] != math.inf:
            per_bucket.append((math.inf, 0))
    return per_bucket, float(data.get("sum", 0.0)), int(data.get("count", 0))


def render_prometheus(
    source: MetricsRegistry | dict,
    namespace: str = "repro",
) -> str:
    """The registry (or one of its snapshots) in Prometheus text format.

    Counter samples gain the conventional ``_total`` suffix; histogram
    ``_bucket`` series are cumulative with a final ``le="+Inf"`` bucket
    equal to ``_count``.  Output is sorted, ending with the format's
    trailing newline, ready for an HTTP ``/metrics`` body
    (``QueryEngine.metrics_text()`` serves exactly this).
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) \
        else source

    lines: list[str] = []
    for kind in ("counters", "gauges", "histograms"):
        series = snapshot.get(kind, {})
        by_name: dict[str, list[tuple[dict, object]]] = {}
        for key in sorted(series):
            name, labels = parse_labelled_name(key)
            by_name.setdefault(name, []).append((labels, series[key]))
        for name, rows in by_name.items():
            out_name = sanitize_metric_name(name, namespace)
            if kind == "counters":
                if not out_name.endswith("_total"):
                    out_name += "_total"
                lines.append(f"# TYPE {out_name} counter")
                for labels, value in rows:
                    lines.append(f"{out_name}{_format_labels(labels)} "
                                 f"{_format_value(value)}")
            elif kind == "gauges":
                lines.append(f"# TYPE {out_name} gauge")
                for labels, value in rows:
                    lines.append(f"{out_name}{_format_labels(labels)} "
                                 f"{_format_value(value)}")
            else:
                lines.append(f"# TYPE {out_name} histogram")
                for labels, data in rows:
                    per_bucket, total_sum, count = \
                        _snapshot_histogram_series(data)
                    cumulative = 0
                    for bound, bucket_count in per_bucket:
                        if math.isinf(bound):
                            continue
                        cumulative += bucket_count
                        lines.append(
                            f"{out_name}_bucket"
                            f"{_format_labels(labels, [('le', _format_value(bound))])} "
                            f"{cumulative}"
                        )
                    # the +Inf bucket is the total observation count by
                    # definition, even when sparse snapshots dropped
                    # zero-count buckets
                    lines.append(
                        f"{out_name}_bucket"
                        f"{_format_labels(labels, [('le', '+Inf')])} "
                        f"{count}"
                    )
                    lines.append(f"{out_name}_sum{_format_labels(labels)} "
                                 f"{_format_value(total_sum)}")
                    lines.append(f"{out_name}_count{_format_labels(labels)} "
                                 f"{count}")
    return "\n".join(lines) + "\n" if lines else ""


class JsonLinesLogger:
    """Structured JSON-lines logging correlated with the active trace.

    Every record carries a timestamp, level, event name and free-form
    fields; when a tracer is installed, also ``trace_id`` plus the
    enclosing span's ``span_id``/``span`` — the same ids the Chrome
    trace export shows, so a slow request's log lines can be found from
    its flame chart and vice versa.

    ``sink`` is a path (opened append) or any object with ``write``.
    """

    def __init__(self, sink, clock=time.time):
        self._clock = clock
        self._owns_handle = isinstance(sink, (str, bytes)) or hasattr(sink, "__fspath__")
        self._handle = open(sink, "a", encoding="utf-8") \
            if self._owns_handle else sink

    def log(self, event: str, level: str = "info", **fields) -> dict:
        """Write one record; returns the dict that was serialized."""
        record = {"ts": self._clock(), "level": level, "event": event}
        tracer = get_tracer()
        if tracer is not None:
            record["trace_id"] = tracer.trace_id
            current = tracer.current_span
            if current is not None:
                record["span_id"] = current.id
                record["span"] = current.name
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True, default=str)
                           + "\n")
        if hasattr(self._handle, "flush"):
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonLinesLogger":
        return self

    def __exit__(self, *exc):
        self.close()
        return False
