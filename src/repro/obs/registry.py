"""Metrics registry: named counters, gauges and histograms with labels.

One :class:`MetricsRegistry` holds every metric of a process (or of one
subsystem — the serving layer keeps a private registry per
:class:`~repro.serve.metrics.ServingMetrics`).  Metrics are get-or-create:
``registry.counter("train.steps", approach="MTransE")`` returns the same
:class:`Counter` every time it is called with the same name and labels,
so instrumentation sites never need to coordinate registration.

Registries snapshot to plain sorted dicts (stable diffs), merge
(multi-worker aggregation) and reset (between benchmark rounds).  All
mutation is guarded by locks so serving threads can share one registry.

Histograms keep two views of the same stream: fixed bucket counts (for
merging and export) and a bounded uniform reservoir of raw samples (for
percentiles — exact below the cap, statistically sound above it).
"""

from __future__ import annotations

import bisect
import random
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "parse_labelled_name",
    "label_snapshot",
]

# Default histogram buckets: roughly log-spaced seconds, wide enough for
# both per-op microseconds and multi-minute training epochs.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
)

DEFAULT_RESERVOIR = 10_000


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """A value that can move in both directions (last write wins)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Bucketed observation counts plus a bounded raw-sample reservoir.

    Bucket counts are cumulative-friendly (``buckets[i]`` counts samples
    ``<= bounds[i]``; one overflow slot catches the rest) and merge
    exactly.  The reservoir holds at most ``reservoir_size`` raw samples
    via Vitter's algorithm R: below the cap percentiles are exact, above
    it they are an unbiased uniform-sample estimate — so a long-running
    serving loop never grows without bound.
    """

    __slots__ = (
        "name", "labels", "bounds", "_counts", "_sum", "_count",
        "_reservoir", "_cap", "_rng", "_lock",
    )

    def __init__(
        self,
        name: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir_size: int = DEFAULT_RESERVOIR,
        seed: int = 0,
    ):
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.labels = labels or {}
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * (len(self.bounds) + 1)  # +1 overflow slot
        self._sum = 0.0
        self._count = 0
        self._reservoir: list[float] = []
        self._cap = int(reservoir_size)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._counts[bisect.bisect_left(self.bounds, value)] += 1
            if len(self._reservoir) < self._cap:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._cap:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @property
    def n_samples(self) -> int:
        """Raw samples currently held (``<= reservoir_size``)."""
        return len(self._reservoir)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) with linear interpolation.

        Matches ``numpy.percentile``'s default method; exact while the
        sample count is below the reservoir cap.  ``nan`` when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            data = sorted(self._reservoir)
        if not data:
            return float("nan")
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(data):
            return data[-1]
        return data[low] * (1.0 - frac) + data[low + 1] * frac

    def snapshot(self, raw: bool = False) -> dict:
        """Plain-data view; ``raw=True`` additionally carries the full
        bucket layout and reservoir samples, making the snapshot
        loss-free for :meth:`MetricsRegistry.merge_snapshot` — the
        cross-process path run-ledger records rely on."""
        with self._lock:
            buckets = {}
            for bound, count in zip(self.bounds, self._counts):
                if count:
                    buckets[f"le_{bound:g}"] = count
            if self._counts[-1]:
                buckets["le_inf"] = self._counts[-1]
            out = {
                "count": self._count,
                "sum": self._sum,
                "buckets": buckets,
            }
            if raw:
                out["bounds"] = list(self.bounds)
                out["counts"] = list(self._counts)
                out["samples"] = list(self._reservoir)
                out["reservoir_size"] = self._cap
            return out

    def _merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets "
                f"({self.name!r})"
            )
        with self._lock:
            self._count += other._count
            self._sum += other._sum
            for i, count in enumerate(other._counts):
                self._counts[i] += count
            for value in other._reservoir:
                if len(self._reservoir) < self._cap:
                    self._reservoir.append(value)
                else:
                    slot = self._rng.randrange(len(self._reservoir) * 2)
                    if slot < self._cap:
                        self._reservoir[slot] = value


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labelled_name(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def parse_labelled_name(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_labelled_name`: ``"req{side=kg1}"`` ->
    ``("req", {"side": "kg1"})``.

    Label values are the simple identifiers this codebase uses
    (approach/dataset names); values containing ``,`` or ``}`` are not
    round-trippable and callers should not create them.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def label_snapshot(snapshot: dict, **labels) -> dict:
    """A copy of a registry snapshot with extra labels on every metric.

    The sweep scheduler uses this to stamp each worker's returned
    snapshot with ``worker="<idx>"`` before merging, so per-worker
    series stay distinguishable in the merged registry (and therefore
    in the Prometheus export) instead of collapsing into one.  Metrics
    that already carry one of the new labels keep their existing value.
    """
    out: dict[str, dict] = {}
    for section, metrics in snapshot.items():
        relabelled = {}
        for key, data in metrics.items():
            name, existing = parse_labelled_name(key)
            merged = {**{k: str(v) for k, v in labels.items()}, **existing}
            relabelled[_labelled_name(name, merged)] = data
        out[section] = relabelled
    return out


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics (thread-safe)."""

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, factory, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for (other_kind, other_name, other_labels) in self._metrics:
                    if other_name == name and other_labels == key[2] \
                            and other_kind != kind:
                        raise TypeError(
                            f"metric {name!r} already registered as "
                            f"{other_kind}, cannot re-register as {kind}"
                        )
                metric = self._metrics[key] = factory()
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", lambda: Counter(name, labels), name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", lambda: Gauge(name, labels), name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir_size: int = DEFAULT_RESERVOIR,
        **labels,
    ) -> Histogram:
        return self._get(
            "histogram",
            lambda: Histogram(name, labels, buckets=buckets,
                              reservoir_size=reservoir_size),
            name, labels,
        )

    # ------------------------------------------------------------------
    def snapshot(self, include_raw: bool = False) -> dict:
        """Plain-data view, keys sorted for stable serialization.

        ``include_raw=True`` makes histogram entries loss-free (bucket
        layout + reservoir samples) so the snapshot survives a JSON
        round trip into :meth:`merge_snapshot` with percentiles intact.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            items = sorted(self._metrics.items())
        for (kind, name, labels), metric in items:
            if kind == "histogram":
                data = metric.snapshot(raw=include_raw)
            else:
                data = metric.snapshot()
            out[kind + "s"][_labelled_name(name, dict(labels))] = data
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add; gauges take the other's value
        (last-write-wins, matching their point-in-time semantics).
        """
        with other._lock:
            items = list(other._metrics.items())
        for (kind, name, labels), metric in items:
            label_dict = dict(labels)
            if kind == "counter":
                self.counter(name, **label_dict).inc(metric.value)
            elif kind == "gauge":
                self.gauge(name, **label_dict).set(metric.value)
            else:
                mine = self.histogram(
                    name, buckets=metric.bounds,
                    reservoir_size=metric._cap, **label_dict,
                )
                mine._merge_from(metric)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a serialized :meth:`snapshot` into this registry.

        The cross-process twin of :meth:`merge`: a worker snapshots,
        ships JSON, and an aggregator merges.  Counters add, gauges
        take the snapshot's value, histograms require raw snapshots
        (``snapshot(include_raw=True)``) and merge exactly — bucket
        counts add and reservoir samples re-enter the bounded pool, so
        percentile queries survive the trip.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_labelled_name(key)
            self.counter(name, **labels).inc(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_labelled_name(key)
            self.gauge(name, **labels).set(float(value))
        for key, data in snapshot.get("histograms", {}).items():
            name, labels = parse_labelled_name(key)
            if "bounds" not in data or "counts" not in data:
                raise ValueError(
                    f"histogram {key!r} lacks raw data; serialize with "
                    f"snapshot(include_raw=True) to merge histograms"
                )
            bounds = tuple(float(b) for b in data["bounds"])
            mine = self.histogram(
                name, buckets=bounds,
                reservoir_size=int(data.get("reservoir_size",
                                            DEFAULT_RESERVOIR)),
                **labels,
            )
            if mine.bounds != bounds:
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket layout "
                    f"differs from the registered metric"
                )
            with mine._lock:
                mine._count += int(data["count"])
                mine._sum += float(data["sum"])
                for i, count in enumerate(data["counts"]):
                    mine._counts[i] += int(count)
                for value in data.get("samples", []):
                    value = float(value)
                    if len(mine._reservoir) < mine._cap:
                        mine._reservoir.append(value)
                    else:
                        slot = mine._rng.randrange(len(mine._reservoir) * 2)
                        if slot < mine._cap:
                            mine._reservoir[slot] = value

    def reset(self) -> None:
        """Zero every metric, keeping registrations in place."""
        with self._lock:
            for (kind, _, _), metric in self._metrics.items():
                if kind == "histogram":
                    with metric._lock:
                        metric._count = 0
                        metric._sum = 0.0
                        metric._counts = [0] * len(metric._counts)
                        metric._reservoir = []
                else:
                    metric._value = 0.0


# ---------------------------------------------------------------------------
# process-wide default registry
# ---------------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry, returning the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
