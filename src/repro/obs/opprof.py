"""Autodiff op profiler: attribute training time to op kinds.

While enabled, every :class:`~repro.autodiff.tensor.Tensor` op, every
backward closure and every optimizer step is timed and attributed to an
op kind (``matmul``, ``gather``, ``matmul.bwd``, ``optimizer.step`` …).
Times are *exclusive*: a composite op (``square`` calls ``mul``) is
charged only for the time not already attributed to the ops it invoked,
so the per-kind totals sum to at most the traced wall time and can be
compared against it directly (the ≥90 % coverage check in
``tests/test_obs_integration.py``).

The profiler works by swapping the ``Tensor`` methods for timed
wrappers and restoring the originals on disable — **no** per-call check
is left behind when profiling is off, preserving the zero-cost-when-off
invariant.  Enabling is process-global and not re-entrant (a second
``enable`` raises).  Backward attribution rides on
``tensor.set_backward_op_hook`` plus a per-tensor ``_op`` tag the
wrappers stamp on their results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..autodiff import optim as _optim
from ..autodiff import tensor as _tensor_mod
from ..autodiff.tensor import Tensor

__all__ = ["OpStat", "OpProfiler", "enable_op_profiler", "disable_op_profiler",
           "profile_ops"]


# Tensor method name -> op kind reported in profiles.  Reflected variants
# share their base kind; dunder names map to readable labels.
_METHOD_KINDS = {
    "__add__": "add", "__radd__": "add",
    "__neg__": "neg",
    "__sub__": "sub", "__rsub__": "sub",
    "__mul__": "mul", "__rmul__": "mul",
    "__truediv__": "div", "__rtruediv__": "div",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "__getitem__": "index",
    "reshape": "reshape",
    "transpose": "transpose",
    "gather": "gather",
    "sum": "sum",
    "mean": "mean",
    "max": "max",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "abs": "abs",
    "sigmoid": "sigmoid",
    "tanh": "tanh",
    "relu": "relu",
    "softplus": "softplus",
    "cos": "cos",
    "sin": "sin",
    "clip": "clip",
    "square": "square",
    "norm": "norm",
    "l2_normalize": "l2_normalize",
    "softmax": "softmax",
}

# Module-level graph builders patched in the tensor module namespace so
# internal composite callers (maximum -> where, …) are covered.
_FUNCTION_KINDS = {
    "concat": "concat",
    "stack": "stack",
    "where": "where",
    "circular_correlation": "circular_correlation",
    "sparse_matmul": "sparse_matmul",
}


@dataclass
class OpStat:
    """Accumulated timing of one op kind."""

    kind: str
    count: int = 0
    total_seconds: float = 0.0   # inclusive (contains nested op time)
    self_seconds: float = 0.0    # exclusive (what this kind itself cost)


class OpProfiler:
    """Per-op-kind time attribution for one profiled region."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack: list[float] = []  # child-time accumulator per frame
        self.stats: dict[str, OpStat] = {}

    # ------------------------------------------------------------------
    def _timed(self, kind: str, fn, args, kwargs):
        clock = self._clock
        stack = self._stack
        start = clock()
        stack.append(0.0)
        try:
            return fn(*args, **kwargs)
        finally:
            elapsed = clock() - start
            child = stack.pop()
            if stack:
                stack[-1] += elapsed
            stat = self.stats.get(kind)
            if stat is None:
                stat = self.stats[kind] = OpStat(kind)
            stat.count += 1
            stat.total_seconds += elapsed
            stat.self_seconds += elapsed - child

    # ------------------------------------------------------------------
    def total_self_seconds(self) -> float:
        """Sum of exclusive times — the profiler's account of where the
        traced wall time went."""
        return sum(stat.self_seconds for stat in self.stats.values())

    def summary(self) -> list[dict]:
        """Per-kind rows sorted by exclusive time, heaviest first."""
        rows = [
            {
                "kind": stat.kind,
                "count": stat.count,
                "total_s": stat.total_seconds,
                "self_s": stat.self_seconds,
            }
            for stat in self.stats.values()
        ]
        rows.sort(key=lambda r: (-r["self_s"], r["kind"]))
        return rows

    def format(self, top: int = 15) -> str:
        total = self.total_self_seconds() or 1.0
        lines = [f"{'op':<22s} {'calls':>8s} {'self s':>9s} {'share':>6s}"]
        for row in self.summary()[:top]:
            lines.append(
                f"{row['kind']:<22s} {row['count']:8d} "
                f"{row['self_s']:9.4f} {row['self_s'] / total:6.1%}"
            )
        return "\n".join(lines)


def _wrap_callable(profiler: OpProfiler, kind: str, fn):
    def wrapper(*args, **kwargs):
        out = profiler._timed(kind, fn, args, kwargs)
        if isinstance(out, Tensor):
            out._op = kind
        return out

    wrapper.__name__ = getattr(fn, "__name__", kind)
    wrapper.__wrapped__ = fn
    return wrapper


def _wrap_step(profiler: OpProfiler, fn):
    def step(self) -> None:
        profiler._timed("optimizer.step", fn, (self,), {})

    step.__wrapped__ = fn
    return step


_ACTIVE: list[tuple[OpProfiler, dict, dict, object, object]] = []


def enable_op_profiler(profiler: OpProfiler | None = None) -> OpProfiler:
    """Patch op dispatch so every op reports into ``profiler``.

    Returns the (possibly fresh) profiler.  Process-global; raises if a
    profiler is already enabled.
    """
    if _ACTIVE:
        raise RuntimeError("an op profiler is already enabled")
    profiler = profiler or OpProfiler()
    method_originals = {}
    for name, kind in _METHOD_KINDS.items():
        original = getattr(Tensor, name)
        method_originals[name] = original
        setattr(Tensor, name, _wrap_callable(profiler, kind, original))
    function_originals = {}
    for name, kind in _FUNCTION_KINDS.items():
        original = getattr(_tensor_mod, name)
        function_originals[name] = original
        setattr(_tensor_mod, name, _wrap_callable(profiler, kind, original))
    step_original = _optim.Optimizer.step
    _optim.Optimizer.step = _wrap_step(profiler, step_original)

    def backward_hook(node, closure):
        kind = (node._op or "op") + ".bwd"
        profiler._timed(kind, closure, (node.grad,), {})

    previous_hook = _tensor_mod.set_backward_op_hook(backward_hook)
    _ACTIVE.append(
        (profiler, method_originals, function_originals, step_original,
         previous_hook)
    )
    return profiler


def disable_op_profiler() -> OpProfiler | None:
    """Restore the unpatched op dispatch; returns the profiler (or None)."""
    if not _ACTIVE:
        return None
    profiler, methods, functions, step_original, previous_hook = _ACTIVE.pop()
    for name, original in methods.items():
        setattr(Tensor, name, original)
    for name, original in functions.items():
        setattr(_tensor_mod, name, original)
    _optim.Optimizer.step = step_original
    _tensor_mod.set_backward_op_hook(previous_hook)
    return profiler


class profile_ops:
    """``with profile_ops() as prof: ...`` convenience wrapper."""

    def __init__(self, profiler: OpProfiler | None = None):
        self._profiler = profiler

    def __enter__(self) -> OpProfiler:
        self._profiler = enable_op_profiler(self._profiler)
        return self._profiler

    def __exit__(self, *exc):
        disable_op_profiler()
        return False
