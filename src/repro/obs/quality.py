"""Model-quality observability: probes, sentinels, paper conformance.

Three layers on one theme — watching *model quality*, not systems health
(docs/observability.md):

* :class:`QualityMonitor` — streaming evaluation probes inside
  ``EmbeddingApproach.fit``.  Every ``probe_every`` epochs it scores
  Hits@1/5/10 + MRR on a sampled validation-candidate subset (O(sample²),
  see :func:`repro.alignment.evaluate.sampled_rank_metrics`), plus
  embedding health (norm mean/spread, inter-epoch drift, nearest-neighbour
  collapse ratio) and gradient health (NaN/Inf counts, grad-norm EWMA).
  Probe results land in ``TrainingLog.probes``, a ``quality.jsonl`` bus,
  registry gauges (when tracing is on) and the live-progress sink that
  feeds sweep worker heartbeats.

* Divergence sentinels — rules evaluated by the same monitor: non-finite
  loss or parameters, loss explosion against its own EWMA, and (when
  probes run) probe-Hits@1 regression or stagnation.  A tripped sentinel
  returns a reason string; ``fit`` latches an abort at the epoch boundary
  exactly like SIGTERM and marks ``TrainingLog.status == "diverged"``.

* Paper conformance — :func:`conformance_report` joins ledger CV/sweep
  records against the checked-in reference tables
  (``benchmarks/reference/paper_tables.json``) and reports per
  approach/dataset metric deltas.  Exit-code contract (``obs-conformance``
  CLI): 0 within tolerance, 1 drifted, 2 no joinable runs.

Probe determinism contract: probes never touch the training RNG.  Each
probe epoch derives its own generator from ``(config.seed, epoch)``, so a
probe-on run is bit-identical to a probe-off run and crash-resumed probe
histories replay exactly (monitor state rides in the checkpoint under the
reserved extra key ``"__quality__"``).
"""

from __future__ import annotations

import json
import math
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..alignment.evaluate import sample_candidate_indices, sampled_rank_metrics
from ..alignment.metrics import similarity_matrix
from ..autodiff.sparse import SparseGrad
from .live import append_jsonl, open_bus, report_progress
from .registry import get_registry
from .trace import tracing_enabled

__all__ = [
    "QualityMonitor",
    "ConformanceRow",
    "ConformanceReport",
    "load_reference",
    "conformance_report",
    "DEFAULT_REFERENCE_PATH",
]

# EWMA smoothing for loss / grad-norm trend tracking.
_EWMA_ALPHA = 0.3
# Loss-explosion and probe checks only fire once the EWMA has warmed up.
_EWMA_WARMUP = 2
# Hits@1 improvements below this are treated as stagnation, not progress.
_HITS_MIN_DELTA = 1e-9
# The Hits@1-regression rule only arms once the best probe represents at
# least this many actual hits: on a small sample a best of 3/22 can fall
# to 0/22 by draw noise alone, which must not abort a healthy run.
_MIN_HITS_EVIDENCE = 5.0


class QualityMonitor:
    """Streaming quality probes + divergence sentinels for one ``fit``.

    Built by ``EmbeddingApproach.fit`` when ``config.probe_every > 0`` or
    ``config.sentinel`` is set; :meth:`observe` runs once per epoch after
    the loss is recorded and returns a divergence reason (or ``None``).
    All state needed to replay probe histories bit-identically across a
    crash/resume lives in :meth:`state_dict`.
    """

    def __init__(self, approach, pairs, path: Path | str | None = None):
        self.approach = approach
        self.config = approach.config
        self.pairs = list(pairs or [])
        self.path = Path(path) if path is not None else None
        self._bus = None
        # probe/sentinel state (checkpointed via state_dict)
        self.epochs_observed = 0
        self.loss_ewma: float | None = None
        self.grad_ewma: float | None = None
        self.best_hits1: float | None = None
        self.last_hits1: float | None = None
        self.stagnant_probes = 0
        self._prev_health: np.ndarray | None = None
        # timing is observability-only and never serialized
        self.probe_seconds = 0.0
        # the health sample is fixed for the whole run (derived from the
        # seed only) so inter-epoch drift compares the same rows
        rng = np.random.default_rng([_seed_entropy(self.config.seed), 0])
        indices = sample_candidate_indices(
            len(self.pairs), int(self.config.probe_sample), rng
        )
        self._health_sources = [self.pairs[int(i)][0] for i in indices]
        self._health_targets = [self.pairs[int(i)][1] for i in indices]

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable monitor state (checkpoint ``extra`` payload)."""
        return {
            "epochs_observed": self.epochs_observed,
            "loss_ewma": self.loss_ewma,
            "grad_ewma": self.grad_ewma,
            "best_hits1": self.best_hits1,
            "last_hits1": self.last_hits1,
            "stagnant_probes": self.stagnant_probes,
            "prev_health": (
                None if self._prev_health is None
                else [[float(v) for v in row] for row in self._prev_health]
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output after a checkpoint resume."""
        if not state:
            return
        self.epochs_observed = int(state.get("epochs_observed", 0))
        self.loss_ewma = state.get("loss_ewma")
        self.grad_ewma = state.get("grad_ewma")
        self.best_hits1 = state.get("best_hits1")
        self.last_hits1 = state.get("last_hits1")
        self.stagnant_probes = int(state.get("stagnant_probes", 0))
        prev = state.get("prev_health")
        self._prev_health = (
            None if prev is None else np.array(prev, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # per-epoch hook
    # ------------------------------------------------------------------
    def observe(self, epoch: int, loss: float) -> str | None:
        """Record epoch ``loss``, probe if due, evaluate sentinel rules.

        Returns a human-readable divergence reason when a sentinel trips
        (``fit`` latches the abort at the epoch boundary), else ``None``.
        """
        config = self.config
        reason: str | None = None
        loss = float(loss)
        previous_ewma = self.loss_ewma
        if math.isfinite(loss):
            self.loss_ewma = (
                loss if previous_ewma is None
                else _EWMA_ALPHA * loss + (1.0 - _EWMA_ALPHA) * previous_ewma
            )
        if config.sentinel:
            if not math.isfinite(loss):
                reason = f"non-finite loss at epoch {epoch}"
            elif (
                self.epochs_observed >= _EWMA_WARMUP
                and previous_ewma is not None
                and previous_ewma > 0.0
                and loss > config.sentinel_loss_factor * previous_ewma
            ):
                reason = (
                    f"loss explosion at epoch {epoch}: {loss:.4g} > "
                    f"{config.sentinel_loss_factor:g}x EWMA {previous_ewma:.4g}"
                )
        self.epochs_observed += 1

        probe_due = (
            config.probe_every > 0
            and epoch % config.probe_every == 0
            and self.pairs
        )
        if probe_due or (config.sentinel and reason is None):
            started = time.perf_counter()
            if probe_due:
                record, probe_reason = self._probe(epoch, loss)
                if reason is None:
                    reason = probe_reason
                self.approach.log.probes.append(record)
                self._emit(dict(record, type="probe"))
                self._gauges(record)
                report_progress(hits1=record["hits_at_1"])
            elif not _params_finite(self.approach._parameters()):
                # cheap per-epoch guard between probes: a summed-NaN scan,
                # not the full gradient walk the probe pays for
                reason = f"non-finite parameters at epoch {epoch}"
            self.probe_seconds += time.perf_counter() - started
        if reason is not None:
            self._emit({"type": "sentinel", "epoch": epoch, "reason": reason})
            report_progress(diverged=True)
            if tracing_enabled():
                get_registry().counter(
                    "quality.diverged", approach=self.approach.info.name
                ).inc()
        return reason

    def close(self) -> None:
        if self._bus is not None:
            self._bus.close()
            self._bus = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _probe(self, epoch: int, loss: float):
        """One full probe pass: gradient health, sampled ranking metrics
        and embedding health, plus the probe-level sentinel rules."""
        config = self.config
        approach = self.approach
        grad_sq, grad_nan, grad_inf, params_finite = _gradient_health(
            approach._parameters()
        )
        reason: str | None = None
        if config.sentinel and not params_finite:
            reason = f"non-finite parameters at epoch {epoch}"

        grad_norm = math.sqrt(grad_sq)
        self.grad_ewma = (
            grad_norm if self.grad_ewma is None
            else _EWMA_ALPHA * grad_norm + (1.0 - _EWMA_ALPHA) * self.grad_ewma
        )
        # ranking probe on a per-epoch sample: fresh rows each probe so a
        # lucky subset cannot hide regressions, deterministic by (seed, epoch)
        rng = np.random.default_rng([_seed_entropy(config.seed), int(epoch)])
        metrics = sampled_rank_metrics(
            approach.similarity_between,
            self.pairs,
            sample=int(config.probe_sample),
            rng=rng,
        )
        health = _embedding_health(
            approach, self._health_sources, self._health_targets,
            self._prev_health,
        )
        self._prev_health = health.pop("_matrix")

        hits1 = float(metrics.hits_at(1))
        self.last_hits1 = hits1
        if config.sentinel and reason is None and metrics.n > 0:
            if (
                self.best_hits1 is not None
                and self.best_hits1 * metrics.n >= _MIN_HITS_EVIDENCE
                and self.epochs_observed > _EWMA_WARMUP
                and hits1 < self.best_hits1 * (1.0 - config.sentinel_hits_drop)
            ):
                reason = (
                    f"probe Hits@1 regression at epoch {epoch}: "
                    f"{hits1:.3f} < {1.0 - config.sentinel_hits_drop:g}x "
                    f"best {self.best_hits1:.3f}"
                )
            elif (
                config.sentinel_patience > 0
                and self.best_hits1 is not None
                and hits1 <= self.best_hits1 + _HITS_MIN_DELTA
                and self.stagnant_probes + 1 >= config.sentinel_patience
            ):
                reason = (
                    f"probe Hits@1 stagnation at epoch {epoch}: "
                    f"{self.stagnant_probes + 1} probes without improvement"
                )
        if self.best_hits1 is None or hits1 > self.best_hits1 + _HITS_MIN_DELTA:
            self.best_hits1 = hits1
            self.stagnant_probes = 0
        else:
            self.stagnant_probes += 1

        record = {
            "epoch": int(epoch),
            "loss": loss,
            "loss_ewma": float(self.loss_ewma) if self.loss_ewma is not None else None,
            "hits_at_1": hits1,
            "hits_at_5": float(metrics.hits_at(5)),
            "hits_at_10": float(metrics.hits_at(10)),
            "mrr": float(metrics.mrr),
            "n": int(metrics.n),
            "grad_norm": grad_norm,
            "grad_norm_ewma": float(self.grad_ewma),
            "grad_nan": int(grad_nan),
            "grad_inf": int(grad_inf),
            **health,
        }
        return record, reason

    def _emit(self, record: dict) -> None:
        if self.path is None:
            return
        if self._bus is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._bus = open_bus(self.path)
        append_jsonl(self._bus, dict(
            record,
            approach=self.approach.info.name,
            ts_unix=time.time(),
        ))

    def _gauges(self, record: dict) -> None:
        if not tracing_enabled():
            return
        registry = get_registry()
        name = self.approach.info.name
        for metric in ("hits_at_1", "hits_at_5", "hits_at_10", "mrr",
                       "norm_mean", "norm_std", "drift", "collapse_ratio",
                       "grad_norm_ewma"):
            value = record.get(metric)
            if value is not None:
                registry.gauge(f"quality.{metric}", approach=name).set(value)
        if record.get("grad_nan") or record.get("grad_inf"):
            registry.counter("quality.grad_nonfinite", approach=name) \
                .inc(record["grad_nan"] + record["grad_inf"])


def _seed_entropy(seed: int) -> int:
    """Non-negative entropy word for SeedSequence from any int seed."""
    return int(seed) & 0x7FFFFFFFFFFFFFFF


def _params_finite(parameters) -> bool:
    """Fast non-finite parameter scan: a summed reduction per parameter
    (NaN/Inf poison the sum), avoiding the bool-array allocation of a
    full ``isfinite`` walk on the per-epoch sentinel path."""
    for parameter in parameters:
        if not math.isfinite(float(np.asarray(parameter.data).sum())):
            return False
    return True


def _gradient_health(parameters):
    """(grad_sq, nan_count, inf_count, params_finite) over all parameters.

    Walks gradients the same SparseGrad-aware way as the epoch gauges;
    also checks parameter values for non-finite entries (the cheapest
    reliable divergence signal)."""
    grad_sq = 0.0
    grad_nan = 0
    grad_inf = 0
    params_finite = True
    for parameter in parameters:
        data = np.asarray(parameter.data)
        if params_finite and not np.isfinite(data).all():
            params_finite = False
        grad = parameter.grad
        if grad is None:
            continue
        if isinstance(grad, SparseGrad):
            values = np.asarray(grad.coalesce().values)
        else:
            values = np.asarray(grad)
        grad_nan += int(np.isnan(values).sum())
        grad_inf += int(np.isinf(values).sum())
        finite = values[np.isfinite(values)] if (grad_nan or grad_inf) else values
        grad_sq += float((finite ** 2).sum())
    return grad_sq, grad_nan, grad_inf, params_finite


def _embedding_health(approach, sources, targets, prev_matrix):
    """Norm / drift / nearest-neighbour collapse stats on the fixed sample.

    Returns a dict including ``"_matrix"`` (the stacked source+target
    sample in comparison space) for the caller to keep as the next
    epoch's drift baseline."""
    if not sources:
        return {"norm_mean": 0.0, "norm_std": 0.0, "drift": 0.0,
                "collapse_ratio": 0.0, "_matrix": None}
    source = np.asarray(approach._source_matrix(sources), dtype=np.float64)
    target = np.asarray(approach._target_matrix(targets), dtype=np.float64)
    matrix = np.concatenate([source, target], axis=0)
    norms = np.linalg.norm(matrix, axis=1)
    norm_mean = float(norms.mean())
    norm_std = float(norms.std())
    drift = 0.0
    if prev_matrix is not None and prev_matrix.shape == matrix.shape:
        step = np.linalg.norm(matrix - prev_matrix, axis=1)
        drift = float(step.mean() / (norm_mean + 1e-12))
    # nearest-neighbour collapse: fraction of sources whose NN target is
    # shared with another source (1 - unique/k); embeddings collapsing to
    # a point drive this toward 1.  Reuses the matrices built above.
    similarity = similarity_matrix(source, target, approach.info.metric)
    nearest = np.asarray(similarity).argmax(axis=1)
    collapse = 1.0 - len(np.unique(nearest)) / float(len(sources))
    return {
        "norm_mean": norm_mean,
        "norm_std": norm_std,
        "drift": drift,
        "collapse_ratio": float(collapse),
        "_matrix": matrix,
    }


# ----------------------------------------------------------------------
# paper conformance
# ----------------------------------------------------------------------

DEFAULT_REFERENCE_PATH = Path("benchmarks/reference/paper_tables.json")

_CONFORMANCE_METRICS = ("hits_at_1", "hits_at_5", "hits_at_10", "mrr")


@dataclass(frozen=True)
class ConformanceRow:
    """One (approach, dataset, metric) comparison against the reference."""

    approach: str
    dataset: str
    metric: str
    value: float
    reference: float
    tolerance: float
    run_name: str = ""

    @property
    def delta(self) -> float:
        return self.value - self.reference

    @property
    def rel_delta(self) -> float:
        if self.reference == 0.0:
            return 0.0 if self.value == 0.0 else math.inf
        return (self.value - self.reference) / abs(self.reference)

    @property
    def within(self) -> bool:
        return abs(self.rel_delta) <= self.tolerance


@dataclass
class ConformanceReport:
    """Joined ledger-vs-paper comparison with the CLI exit-code contract."""

    rows: list[ConformanceRow] = field(default_factory=list)
    unmatched: list[str] = field(default_factory=list)

    @property
    def drifted(self) -> list[ConformanceRow]:
        return [row for row in self.rows if not row.within]

    @property
    def status(self) -> str:
        if not self.rows:
            return "no-runs"
        return "drift" if self.drifted else "within"

    @property
    def exit_code(self) -> int:
        return {"within": 0, "drift": 1, "no-runs": 2}[self.status]

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "unmatched": list(self.unmatched),
            "rows": [
                {
                    "approach": row.approach,
                    "dataset": row.dataset,
                    "metric": row.metric,
                    "value": row.value,
                    "reference": row.reference,
                    "delta": row.delta,
                    "rel_delta": row.rel_delta,
                    "tolerance": row.tolerance,
                    "within": row.within,
                    "run": row.run_name,
                }
                for row in self.rows
            ],
        }

    def format(self) -> str:
        if not self.rows:
            return "conformance: no ledger runs join the reference tables"
        lines = [
            f"{'approach':<12s} {'dataset':<14s} {'metric':<10s} "
            f"{'run':>7s} {'paper':>7s} {'Δrel':>8s}  verdict"
        ]
        for row in self.rows:
            rel = (
                f"{row.rel_delta:+8.1%}" if math.isfinite(row.rel_delta)
                else "     inf"
            )
            verdict = "ok" if row.within else "DRIFT"
            lines.append(
                f"{row.approach:<12s} {row.dataset:<14s} {row.metric:<10s} "
                f"{row.value:7.3f} {row.reference:7.3f} {rel}  {verdict}"
            )
        drifted = len(self.drifted)
        lines.append(
            f"-- {len(self.rows)} comparisons, {drifted} drifted "
            f"({self.status})"
        )
        if self.unmatched:
            lines.append(
                "unmatched reference entries: " + ", ".join(self.unmatched)
            )
        return "\n".join(lines)


def load_reference(path: Path | str | None = None) -> dict:
    """Load ``paper_tables.json`` (defaults to the checked-in copy)."""
    path = Path(path) if path is not None else DEFAULT_REFERENCE_PATH
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _norm_key(value: str) -> str:
    return re.sub(r"[^a-z0-9]", "", str(value).lower())


def _record_identity(record: dict) -> tuple[str, str]:
    """(approach, dataset) of a ledger record, best effort."""
    config = record.get("config") or {}
    approach = config.get("approach") or ""
    dataset = config.get("dataset") or ""
    if isinstance(dataset, dict):
        dataset = dataset.get("family") or dataset.get("path") or ""
    if not approach or not dataset:
        parts = [p for p in str(record.get("name") or "").split("/") if p]
        if not approach and len(parts) >= 2:
            approach = parts[-2] if len(parts) >= 2 else ""
        if not dataset and parts:
            dataset = parts[-1]
    return str(approach), str(dataset)


def conformance_report(
    records: list[dict],
    reference: dict,
    rel_tolerance: float | None = None,
) -> ConformanceReport:
    """Join ledger records against the paper reference tables.

    A reference entry ``{"approach": ..., "dataset": ..., "metrics": {...}}``
    matches the *latest* ledger record whose approach matches and whose
    dataset name starts with the entry's dataset family (normalized:
    ``"EN-FR"`` joins runs on ``"EN-FR-150-V1"``).  Only records that
    actually carry a referenced metric scalar participate.
    """
    default_tolerance = (
        rel_tolerance if rel_tolerance is not None
        else float(reference.get("default_rel_tolerance", 0.15))
    )
    report = ConformanceReport()
    entries = reference.get("entries", [])
    for entry in entries:
        ref_approach = _norm_key(entry.get("approach", ""))
        ref_dataset = _norm_key(entry.get("dataset", ""))
        metrics = entry.get("metrics") or {}
        tolerance = float(entry.get("rel_tolerance", default_tolerance))
        match = None
        for record in records:
            approach, dataset = _record_identity(record)
            if _norm_key(approach) != ref_approach:
                continue
            if not _norm_key(dataset).startswith(ref_dataset):
                continue
            scalars = record.get("scalars") or {}
            if not any(m in scalars for m in metrics):
                continue
            match = record  # keep scanning: latest matching record wins
        if match is None:
            report.unmatched.append(
                f"{entry.get('approach')}/{entry.get('dataset')}"
            )
            continue
        scalars = match.get("scalars") or {}
        approach, dataset = _record_identity(match)
        for metric in _CONFORMANCE_METRICS:
            if metric not in metrics or metric not in scalars:
                continue
            report.rows.append(ConformanceRow(
                approach=approach,
                dataset=dataset,
                metric=metric,
                value=float(scalars[metric]),
                reference=float(metrics[metric]),
                tolerance=tolerance,
                run_name=str(match.get("name") or ""),
            ))
    return report
