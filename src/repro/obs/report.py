"""Render recorded telemetry: per-phase breakdowns from ``events.jsonl``.

The JSONL event stream written by :class:`~repro.obs.trace.Tracer` (and
by ``repro obs-smoke`` / traced benchmarks) is aggregated here into the
table ``repro obs-report`` prints: one row per span name with call
count, wall time, CPU time, share of the root span and peak-RSS growth.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_events", "load_events_tolerant", "load_events_merged",
           "phase_breakdown", "format_phase_table", "format_op_table",
           "format_quality_table"]


def load_events(path) -> list[dict]:
    """Parse a JSON-lines event file (blank lines ignored).

    Strict: the first malformed line raises :class:`ValueError`.  For
    files that may end in a truncated line (an interrupted bench), use
    :func:`load_events_tolerant`.
    """
    events = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{lineno}: invalid JSON: {error}") from None
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: event must be a JSON object")
        events.append(event)
    return events


def load_events_tolerant(path) -> tuple[list[dict], int]:
    """Like :func:`load_events`, but skip unreadable lines.

    A bench killed mid-write leaves a truncated trailing line; that
    should cost a warning, not the whole report.  Returns the readable
    events plus the count of lines skipped (malformed JSON, non-object
    events, undecodable bytes).
    """
    events: list[dict] = []
    skipped = 0
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(event, dict):
            skipped += 1
            continue
        events.append(event)
    return events, skipped


def load_events_merged(paths) -> tuple[list[dict], int]:
    """Merge multi-process JSONL event files into one ordered stream.

    Takes the per-worker files a sweep's telemetry writes (each process
    appends to its own file, so no single file is totally ordered) and
    returns one list sorted by ``(trace_id, ts)`` — grouping each
    distributed trace together and time-ordering the spans within it.
    Events without those keys sort first under the empty trace.  Each
    file is read tolerantly: a worker killed mid-write leaves a torn
    trailing line, which is skipped and counted, not fatal.  Span ids
    from events stamped with a ``pid`` are namespaced per process —
    every worker counts its local spans from 1, and colliding ids would
    corrupt :func:`phase_breakdown`'s parent/child accounting.  Returns
    ``(events, skipped_lines)``.
    """
    events: list[dict] = []
    skipped = 0
    for path in paths:
        loaded, bad = load_events_tolerant(path)
        for event in loaded:
            pid = event.get("pid")
            if pid is not None and event.get("type") == "span":
                event = dict(event)
                event["id"] = f"{pid}.{event['id']}"
                if event.get("parent_id") is not None:
                    event["parent_id"] = f"{pid}.{event['parent_id']}"
            events.append(event)
        skipped += bad
    events.sort(key=lambda e: (str(e.get("trace_id", "")),
                               float(e.get("ts_unix", e.get("ts", 0.0)))))
    return events, skipped


def phase_breakdown(events: list[dict]) -> list[dict]:
    """Aggregate span events per name.

    Wall/CPU totals are summed over calls; ``self_s`` subtracts the time
    covered by direct child spans, so phases with instrumented children
    (``epoch`` containing ``forward``…) show their own overhead only.
    Rows come back sorted by exclusive wall time, heaviest first.
    """
    spans = [e for e in events if e.get("type") == "span"]
    child_wall: dict[int, float] = {}
    for event in spans:
        parent = event.get("parent_id")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + event.get("dur_s", 0.0)

    rows: dict[str, dict] = {}
    for event in spans:
        row = rows.setdefault(event["name"], {
            "name": event["name"], "count": 0, "wall_s": 0.0, "self_s": 0.0,
            "cpu_s": 0.0, "rss_peak_delta_bytes": 0, "min_depth": 1 << 30,
        })
        wall = float(event.get("dur_s", 0.0))
        row["count"] += 1
        row["wall_s"] += wall
        row["self_s"] += wall - child_wall.get(event.get("id"), 0.0)
        row["cpu_s"] += float(event.get("cpu_s", 0.0))
        row["rss_peak_delta_bytes"] = max(
            row["rss_peak_delta_bytes"], int(event.get("rss_peak_delta_bytes", 0))
        )
        row["min_depth"] = min(row["min_depth"], int(event.get("depth", 0)))
    out = sorted(rows.values(), key=lambda r: (-r["self_s"], r["name"]))
    for row in out:
        if row["min_depth"] == 1 << 30:
            row["min_depth"] = 0
    return out


def format_phase_table(events: list[dict]) -> str:
    """The human-readable per-phase table ``obs-report`` prints."""
    rows = phase_breakdown(events)
    if not rows:
        return "no span events"
    roots = [e for e in events
             if e.get("type") == "span" and e.get("parent_id") is None]
    total = sum(float(e.get("dur_s", 0.0)) for e in roots) or 1.0
    lines = [
        f"{'phase':<24s} {'calls':>7s} {'wall s':>9s} {'self s':>9s} "
        f"{'cpu s':>9s} {'share':>6s} {'peak-rss Δ':>11s}"
    ]
    for row in rows:
        rss = row["rss_peak_delta_bytes"]
        rss_text = f"{rss / 1024 / 1024:.1f} MB" if rss else "-"
        indent = " " * min(row["min_depth"], 6)
        name = (indent + row["name"])[:24]
        lines.append(
            f"{name:<24s} {row['count']:7d} {row['wall_s']:9.3f} "
            f"{row['self_s']:9.3f} {row['cpu_s']:9.3f} "
            f"{row['self_s'] / total:6.1%} {rss_text:>11s}"
        )
    lines.append(f"{'total (root spans)':<24s} {len(roots):7d} {total:9.3f}")
    return "\n".join(lines)


def format_quality_table(records: list[dict]) -> str:
    """Render a quality learning curve (``quality.jsonl`` probe records
    or ``TrainingLog.probes`` entries) as the per-epoch table the
    ``obs-quality`` verb and ``quality-smoke`` print.

    Accepts the raw record stream: non-probe records (sentinel events,
    unknown future kinds) pass through as annotation lines after the
    table rather than breaking it.
    """
    probes = [r for r in records if r.get("type", "probe") == "probe"]
    sentinels = [r for r in records if r.get("type") == "sentinel"]
    if not probes and not sentinels:
        return "no quality probe records"
    lines = []
    if probes:
        lines.append(
            f"{'epoch':>5s} {'loss':>10s} {'H@1':>6s} {'H@5':>6s} "
            f"{'H@10':>6s} {'MRR':>6s} {'drift':>7s} {'collapse':>8s} "
            f"{'grad-ewma':>10s}"
        )
        for probe in probes:
            lines.append(
                f"{int(probe.get('epoch', 0)):>5d} "
                f"{float(probe.get('loss', 0.0)):>10.4f} "
                f"{float(probe.get('hits_at_1', 0.0)):>6.3f} "
                f"{float(probe.get('hits_at_5', 0.0)):>6.3f} "
                f"{float(probe.get('hits_at_10', 0.0)):>6.3f} "
                f"{float(probe.get('mrr', 0.0)):>6.3f} "
                f"{float(probe.get('drift', 0.0)):>7.4f} "
                f"{float(probe.get('collapse_ratio', 0.0)):>8.3f} "
                f"{float(probe.get('grad_norm_ewma', 0.0)):>10.3g}"
            )
    for sentinel in sentinels:
        lines.append(
            f"sentinel @ epoch {int(sentinel.get('epoch', 0))}: "
            f"{sentinel.get('reason', '?')}"
        )
    return "\n".join(lines)


def format_op_table(events: list[dict], top: int = 15) -> str:
    """Render ``op_profile`` events (written by ``obs-smoke``), if any."""
    op_events = [e for e in events if e.get("type") == "op_profile"]
    if not op_events:
        return ""
    rows = []
    for event in op_events:
        rows.extend(event.get("ops", []))
    if not rows:
        return ""
    total = sum(float(r.get("self_s", 0.0)) for r in rows) or 1.0
    lines = [f"{'op':<22s} {'calls':>8s} {'self s':>9s} {'share':>6s}"]
    for row in sorted(rows, key=lambda r: -float(r.get("self_s", 0.0)))[:top]:
        lines.append(
            f"{row.get('kind', '?'):<22s} {int(row.get('count', 0)):8d} "
            f"{float(row.get('self_s', 0.0)):9.4f} "
            f"{float(row.get('self_s', 0.0)) / total:6.1%}"
        )
    return "\n".join(lines)
