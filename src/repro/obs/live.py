"""Live telemetry primitives: progress hook, JSONL tailing, stall
detection and the ``obs-top`` dashboard state.

This module is the generic half of the sweep telemetry stack (the
sweep-specific writers live in :mod:`repro.orchestrate.telemetry`):

* :func:`report_progress` — a zero-cost-when-off progress hook the
  training loop calls once per epoch.  Like :func:`repro.obs.span`,
  the disabled path is one global read and one ``None`` check, so the
  untelemetered hot path pays nothing.
* :func:`tail_jsonl` — incremental tolerant reader for append-only
  JSONL event buses: resumes from a byte offset, never consumes a torn
  trailing line (a writer may still be mid-append), and skips
  malformed lines the same way the run-ledger reader does.
* :class:`StallDetector` — heartbeat bookkeeping with an injectable
  clock: a key whose beats stop arriving for longer than ``timeout``
  transitions to *stalled*; a later beat transitions it back.
* :func:`read_state` / :func:`format_top` — reconstruct the live state
  of a sweep from its telemetry directory (any process can do this
  while the sweep runs; everything is plain files) and render it as
  the refreshing terminal dashboard ``repro obs-top`` shows.

On-disk layout of a sweep telemetry directory (all files are
append-only JSONL except the atomically-replaced JSON documents)::

    <workdir>/telemetry/
        meta.json              # sweep id, trace id, pids, intervals
        parent.jsonl           # job-state transitions + worker events
        worker_0.jsonl         # heartbeats of worker 0
        worker_0.trace.jsonl   # span events of worker 0 (stamped)
        ...
        summary.json           # written at the end: coverage, peaks
        trace.json             # stitched Chrome trace (parent+workers)
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "report_progress",
    "get_progress",
    "set_progress_sink",
    "ProgressSink",
    "tail_jsonl",
    "append_jsonl",
    "open_bus",
    "StallDetector",
    "read_state",
    "format_top",
]

TELEMETRY_DIR = "telemetry"


# ---------------------------------------------------------------------------
# the progress hook (training loop -> heartbeat thread)
# ---------------------------------------------------------------------------
class ProgressSink:
    """Latest-value mailbox between the training loop and a sampler.

    ``update`` overwrites fields; ``sample`` returns a copy.  Writes are
    a dict update under the GIL (single writer: the training loop), so
    no lock is needed on the hot path.
    """

    __slots__ = ("_fields",)

    def __init__(self):
        self._fields: dict = {}

    def update(self, fields: dict) -> None:
        self._fields.update(fields)

    def sample(self) -> dict:
        return dict(self._fields)


_PROGRESS_SINK: ProgressSink | None = None


def report_progress(**fields) -> None:
    """Publish training progress (stage, epoch, steps …) if anyone is
    listening.  Zero-cost when no sink is installed — safe to call once
    per epoch from every training loop."""
    sink = _PROGRESS_SINK
    if sink is None:
        return
    sink.update(fields)


def get_progress() -> ProgressSink | None:
    return _PROGRESS_SINK


def set_progress_sink(sink: ProgressSink | None) -> ProgressSink | None:
    """Install (or clear) the progress sink; returns the previous one."""
    global _PROGRESS_SINK
    previous = _PROGRESS_SINK
    _PROGRESS_SINK = sink
    return previous


# ---------------------------------------------------------------------------
# append-only JSONL buses
# ---------------------------------------------------------------------------
def append_jsonl(handle, record: dict) -> None:
    """Append one event to an open binary bus handle and flush it.

    The line is a single ``write`` call of a complete ``...\\n`` payload,
    so concurrent readers either see the whole line or (after a crash
    mid-write) a torn tail that :func:`tail_jsonl` refuses to consume.
    """
    handle.write(json.dumps(record, sort_keys=True, default=str)
                 .encode("utf-8") + b"\n")
    handle.flush()


def open_bus(path: Path | str):
    """Open an append-only JSONL bus, self-healing a torn trailing line.

    Mirrors the run-ledger appender: if a previous writer died mid-line,
    terminate the partial line first so this writer's records stay
    parseable (readers skip the torn fragment).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = open(path, "ab")
    if handle.tell() > 0:
        with open(path, "rb") as probe:
            probe.seek(-1, 2)
            torn = probe.read(1) != b"\n"
        if torn:
            handle.write(b"\n")
            handle.flush()
    return handle


def tail_jsonl(path: Path | str, offset: int = 0) -> tuple[list[dict], int, int]:
    """Read complete JSONL records appended since ``offset``.

    Returns ``(records, new_offset, skipped)``.  A trailing line without
    its newline is left unconsumed (the writer may still be appending
    it); malformed complete lines are counted in ``skipped`` and passed
    over, matching the ledger reader's tolerance for torn writes.
    """
    path = Path(path)
    records: list[dict] = []
    skipped = 0
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read()
    except (FileNotFoundError, OSError):
        return records, offset, skipped
    end = blob.rfind(b"\n")
    if end < 0:
        return records, offset, skipped
    for line in blob[:end].split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(record, dict):
            skipped += 1
            continue
        records.append(record)
    return records, offset + end + 1, skipped


# ---------------------------------------------------------------------------
# stall detection
# ---------------------------------------------------------------------------
class StallDetector:
    """Track heartbeat recency per key; flag gaps longer than ``timeout``.

    The clock is injectable so tests drive it deterministically::

        clock = lambda: now[0]
        detector = StallDetector(timeout=5.0, clock=clock)
        detector.beat("w0"); now[0] += 6
        assert detector.check() == (["w0"], [])   # newly stalled
        detector.beat("w0")
        assert detector.check() == ([], ["w0"])   # recovered
    """

    def __init__(self, timeout: float, clock=time.monotonic):
        if timeout <= 0:
            raise ValueError("stall timeout must be positive")
        self.timeout = float(timeout)
        self._clock = clock
        self._last_beat: dict = {}
        self._stalled: set = set()

    def beat(self, key, now: float | None = None) -> None:
        self._last_beat[key] = self._clock() if now is None else now

    def forget(self, key) -> None:
        """Stop watching a key (its worker exited); never counts as a
        stall afterwards."""
        self._last_beat.pop(key, None)
        self._stalled.discard(key)

    @property
    def stalled(self) -> set:
        return set(self._stalled)

    def check(self, now: float | None = None) -> tuple[list, list]:
        """Returns ``(newly_stalled, recovered)`` keys since last check."""
        now = self._clock() if now is None else now
        newly_stalled = []
        recovered = []
        for key, last in self._last_beat.items():
            if now - last > self.timeout:
                if key not in self._stalled:
                    self._stalled.add(key)
                    newly_stalled.append(key)
            elif key in self._stalled:
                self._stalled.discard(key)
                recovered.append(key)
        return newly_stalled, recovered


# ---------------------------------------------------------------------------
# dashboard state (files -> plain dict)
# ---------------------------------------------------------------------------
_OPEN_STATES = ("pending", "running")


def _job_counts(jobs: dict) -> dict:
    counts = {state: 0 for state in
              ("pending", "running", "done", "failed", "restored")}
    for info in jobs.values():
        counts[info["state"]] = counts.get(info["state"], 0) + 1
    return counts


def read_state(telemetry_dir: Path | str, now_unix: float | None = None) -> dict:
    """Reconstruct the live sweep state from a telemetry directory.

    Pure file reads (tolerant of torn tails), so any process — the
    ``obs-top`` dashboard, a test, a CI check — can call this while the
    sweep is still running.  Returns a plain JSON-friendly dict.
    """
    directory = Path(telemetry_dir)
    if directory.name != TELEMETRY_DIR and (directory / TELEMETRY_DIR).is_dir():
        directory = directory / TELEMETRY_DIR
    now_unix = time.time() if now_unix is None else now_unix
    state: dict = {
        "telemetry_dir": str(directory),
        "now_unix": now_unix,
        "sweep": {},
        "jobs": {},
        "counts": {},
        "requeues": 0,
        "stalls": 0,
        "workers": {},
        "rungs": {},
        "eta_seconds": None,
        "best_hits1": None,
        "diverged_jobs": [],
        "finished": False,
        "skipped_lines": 0,
    }
    meta_path = directory / "meta.json"
    if meta_path.is_file():
        try:
            state["sweep"] = json.loads(meta_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            pass
    interval = float(state["sweep"].get("heartbeat_interval", 1.0) or 1.0)
    stall_after = interval * float(state["sweep"].get("stall_intervals", 5))

    jobs = state["jobs"]
    workers = state["workers"]
    durations: list[float] = []
    events, _, skipped = tail_jsonl(directory / "parent.jsonl")
    state["skipped_lines"] += skipped
    for event in events:
        kind = event.get("type")
        if kind == "job_state":
            job_id = event.get("job_id", "?")
            job = jobs.setdefault(job_id, {
                "state": "pending", "worker": None, "attempts": 0,
                "describe": "", "stage": "", "rung": -1,
                "started_unix": None, "finished_unix": None,
                "score": None, "hits1": None, "diverged": False,
            })
            new = event.get("state")
            ts = event.get("ts_unix")
            for field in ("describe", "stage", "rung"):
                if field in event:
                    job[field] = event[field]
            if new == "enqueued":
                job["state"] = "pending"
            elif new == "running":
                job["state"] = "running"
                job["worker"] = event.get("worker")
                job["started_unix"] = ts
                job["attempts"] += 1
            elif new in ("done", "failed", "restored"):
                job["state"] = new
                job["finished_unix"] = ts
                if isinstance(event.get("score"), (int, float)):
                    job["score"] = float(event["score"])
                if event.get("status") == "diverged":
                    job["diverged"] = True
                if new == "done" and job["started_unix"] is not None \
                        and ts is not None:
                    durations.append(max(0.0, ts - job["started_unix"]))
            elif new == "requeued":
                job["state"] = "pending"
                job["worker"] = None
                state["requeues"] += 1
        elif kind == "worker":
            idx = event.get("worker")
            worker = workers.setdefault(idx, {
                "pid": event.get("pid"), "alive": False, "stalled": False,
                "last_beat_unix": None, "beat_age_s": None, "status": "-",
                "rss_bytes": 0, "peak_rss_bytes": 0, "steps_per_s": 0.0,
                "epoch": None, "epochs": None, "job_id": None,
                "jobs_done": 0, "heartbeats": 0,
                "hits1": None, "diverged": False,
            })
            what = event.get("event")
            if what == "spawned":
                worker.update(pid=event.get("pid"), alive=True,
                              stalled=False, status="ok")
            elif what == "died":
                worker.update(alive=False, stalled=False, status="dead")
            elif what == "exited":
                worker.update(alive=False, stalled=False, status="exited")
            elif what == "stalled":
                worker.update(stalled=True, status="stalled")
            elif what == "recovered":
                worker.update(stalled=False, status="ok")
        elif kind == "sweep" and event.get("event") == "finished":
            state["finished"] = True
        elif kind == "stall":
            state["stalls"] += 1

    for path in sorted(directory.glob("worker_*.jsonl")):
        if path.name.endswith(".trace.jsonl"):
            continue
        beats, _, skipped = tail_jsonl(path)
        state["skipped_lines"] += skipped
        for beat in beats:
            if beat.get("type") != "heartbeat":
                continue
            idx = beat.get("worker")
            worker = workers.setdefault(idx, {
                "pid": beat.get("pid"), "alive": True, "stalled": False,
                "last_beat_unix": None, "beat_age_s": None, "status": "ok",
                "rss_bytes": 0, "peak_rss_bytes": 0, "steps_per_s": 0.0,
                "epoch": None, "epochs": None, "job_id": None,
                "jobs_done": 0, "heartbeats": 0,
                "hits1": None, "diverged": False,
            })
            worker["heartbeats"] += 1
            worker["last_beat_unix"] = beat.get("ts_unix")
            rss = int(beat.get("rss_bytes", 0))
            worker["rss_bytes"] = rss
            worker["peak_rss_bytes"] = max(worker["peak_rss_bytes"], rss)
            worker["steps_per_s"] = float(beat.get("steps_per_s", 0.0))
            worker["epoch"] = beat.get("epoch")
            worker["epochs"] = beat.get("epochs")
            worker["job_id"] = beat.get("job_id")
            worker["jobs_done"] = int(beat.get("jobs_done", 0))
            # quality payload: live probe Hits@1 + sentinel flag, per
            # worker and attributed to the job it was beating on
            hits1 = beat.get("hits1")
            if isinstance(hits1, (int, float)):
                worker["hits1"] = float(hits1)
            diverged = bool(beat.get("diverged"))
            worker["diverged"] = diverged
            job = jobs.get(beat.get("job_id"))
            if job is not None:
                if isinstance(hits1, (int, float)):
                    job["hits1"] = float(hits1)
                if diverged:
                    job["diverged"] = True
            if beat.get("final") and worker["status"] != "dead":
                # a clean goodbye beat: the worker drained its queue and
                # exited — unlike a kill, which just stops beating
                worker["alive"] = False
                worker["status"] = "exited"

    for worker in workers.values():
        last = worker.get("last_beat_unix")
        if last is not None:
            age = max(0.0, now_unix - last)
            worker["beat_age_s"] = age
            if worker["status"] == "ok" and not state["finished"] \
                    and age > stall_after:
                # a gap visible to the dashboard even before the parent
                # notices (e.g. the parent itself was kill -9'd)
                worker["status"] = "late"

    state["counts"] = _job_counts(jobs)
    for job in jobs.values():
        stage, rung = job.get("stage", ""), job.get("rung", -1)
        key = f"{stage}@rung{rung}" if stage == "tune" else (stage or "?")
        bucket = state["rungs"].setdefault(key, {"total": 0, "done": 0})
        bucket["total"] += 1
        if job["state"] in ("done", "restored"):
            bucket["done"] += 1

    open_jobs = sum(state["counts"].get(s, 0) for s in _OPEN_STATES)
    alive = sum(1 for w in workers.values() if w["alive"] and not w["stalled"])
    if durations and open_jobs:
        trailing = durations[-5:]
        mean = sum(trailing) / len(trailing)
        state["eta_seconds"] = open_jobs * mean / max(1, alive)
    elif not open_jobs and jobs:
        state["eta_seconds"] = 0.0

    # sweep-level best Hits@1 so far: completed-job validation scores and
    # any fresher in-flight probe values, whichever is ahead
    candidates = [job["score"] for job in jobs.values()
                  if isinstance(job.get("score"), (int, float))]
    candidates += [job["hits1"] for job in jobs.values()
                   if isinstance(job.get("hits1"), (int, float))]
    candidates += [w["hits1"] for w in workers.values()
                   if isinstance(w.get("hits1"), (int, float))]
    if candidates:
        state["best_hits1"] = max(candidates)
    state["diverged_jobs"] = sorted(
        job_id for job_id, job in jobs.items() if job.get("diverged"))
    return state


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def _fmt_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.1f}G"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.0f}M"
    if n > 0:
        return f"{n / 1024:.0f}K"
    return "-"


def _fmt_age(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 60:
        return f"{seconds:.1f}s"
    return f"{seconds / 60:.1f}m"


def format_top(state: dict) -> str:
    """Render a :func:`read_state` dict as the ``obs-top`` dashboard."""
    meta = state.get("sweep", {})
    counts = state.get("counts", {})
    lines = []
    title = meta.get("sweep_id") or meta.get("sweep") or "sweep"
    phase = "finished" if state.get("finished") else "running"
    started = meta.get("started_unix")
    elapsed = ""
    if started is not None:
        elapsed = f" — {_fmt_age(max(0.0, state['now_unix'] - started))} elapsed"
    lines.append(f"== {title} [{phase}]{elapsed} — "
                 f"jobs={meta.get('jobs', '?')} "
                 f"trace={meta.get('trace_id', '-')} ==")
    lines.append(
        f"jobs: {counts.get('done', 0)} done / "
        f"{counts.get('running', 0)} running / "
        f"{counts.get('pending', 0)} pending / "
        f"{counts.get('failed', 0)} failed "
        f"({state.get('requeues', 0)} requeued, "
        f"{counts.get('restored', 0)} restored, "
        f"{len(state.get('diverged_jobs', []))} diverged, "
        f"{state.get('stalls', 0)} stalls)"
    )
    rungs = state.get("rungs", {})
    if rungs:
        cells = " · ".join(f"{key} {bucket['done']}/{bucket['total']}"
                           for key, bucket in sorted(rungs.items()))
        lines.append(f"rungs: {cells}")
    eta = state.get("eta_seconds")
    best_hits1 = state.get("best_hits1")
    status_bits = []
    if eta is not None:
        status_bits.append(f"eta: ~{_fmt_age(eta)}")
    if isinstance(best_hits1, (int, float)):
        status_bits.append(f"best H@1: {best_hits1:.3f}")
    if status_bits:
        lines.append(" — ".join(status_bits))
    workers = state.get("workers", {})
    if workers:
        lines.append("")
        lines.append(f"{'worker':>6s} {'pid':>7s} {'status':<8s} "
                     f"{'job':<18s} {'epoch':>7s} {'hits@1':>7s} "
                     f"{'steps/s':>9s} {'rss':>7s} {'beat':>8s} "
                     f"{'done':>5s}")
        for idx in sorted(workers, key=lambda k: (str(k))):
            worker = workers[idx]
            job_id = worker.get("job_id") or ""
            describe = ""
            job = state.get("jobs", {}).get(job_id)
            if job is not None and job.get("describe"):
                describe = job["describe"]
            epoch = worker.get("epoch")
            epochs = worker.get("epochs")
            epoch_cell = (f"{epoch}/{epochs}" if epoch is not None
                          and epochs else (str(epoch) if epoch else "-"))
            hits1 = worker.get("hits1")
            hits_cell = (f"{hits1:.3f}"
                         if isinstance(hits1, (int, float)) else "-")
            status = worker.get("status", "-")
            if worker.get("diverged"):
                status = "DIVERGED"
            lines.append(
                f"{str(idx):>6s} {str(worker.get('pid') or '-'):>7s} "
                f"{status:<8s} "
                f"{(describe or job_id or '-')[:18]:<18s} "
                f"{epoch_cell:>7s} {hits_cell:>7s} "
                f"{worker.get('steps_per_s', 0.0):>9.1f} "
                f"{_fmt_bytes(int(worker.get('rss_bytes', 0))):>7s} "
                f"{_fmt_age(worker.get('beat_age_s')):>8s} "
                f"{worker.get('jobs_done', 0):>5d}"
            )
    diverged_jobs = state.get("diverged_jobs", [])
    if diverged_jobs:
        jobs = state.get("jobs", {})
        names = []
        for job_id in diverged_jobs:
            job = jobs.get(job_id, {})
            names.append((job.get("describe") or job_id)[:24])
        lines.append("diverged: " + ", ".join(names))
    if state.get("skipped_lines"):
        lines.append(f"(skipped {state['skipped_lines']} torn/unreadable "
                     f"telemetry line(s))")
    return "\n".join(lines)
