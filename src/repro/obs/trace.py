"""Nested span tracing with wall/CPU time and peak-RSS deltas.

A :class:`Tracer` records a tree of spans — ``span("fit")`` containing
``span("epoch")`` containing ``span("forward")`` … — each carrying wall
time, CPU time and the growth of the process peak RSS while it was open.
Events export as JSON-lines (one event per line, consumed by
``repro obs-report``) and as a self-contained Chrome-trace file that
loads directly into ``chrome://tracing`` / Perfetto.

Instrumentation sites call the module-level :func:`span`; when no tracer
is installed it returns a shared no-op context manager, so a disabled
call costs one global read and one ``None`` check — the zero-cost-when-
off invariant guarded by the overhead test in ``tests/test_obs_integration.py``.

Clocks are injectable for deterministic tests:
``Tracer(clock=fake_wall, cpu_clock=fake_cpu, rss=lambda: 0)``.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time

__all__ = [
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "tracing_enabled",
    "peak_rss_bytes",
    "peak_rss_children_bytes",
    "peak_rss_tree_bytes",
]


def _ru_maxrss_bytes(who_name: str) -> int:
    """``ru_maxrss`` of ``RUSAGE_SELF`` / ``RUSAGE_CHILDREN``, in bytes."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix
        return 0
    peak = resource.getrusage(getattr(resource, who_name)).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def peak_rss_bytes() -> int:
    """High-water-mark resident set size of this process, in bytes.

    Uses ``getrusage`` (stdlib); returns 0 on platforms without it.
    """
    return _ru_maxrss_bytes("RUSAGE_SELF")


def peak_rss_children_bytes() -> int:
    """High-water mark over all *reaped* child processes, in bytes.

    ``RUSAGE_SELF`` stops at the process boundary, so a pool parent that
    forked its heavy work out reports a tiny peak while its workers ate
    gigabytes.  This is the ``RUSAGE_CHILDREN`` complement: the largest
    peak RSS any waited-for child reached (0 before any child exits).
    """
    return _ru_maxrss_bytes("RUSAGE_CHILDREN")


def peak_rss_tree_bytes() -> int:
    """``max(self, reaped children)`` — what a pool parent should report.

    For a single-process run this equals :func:`peak_rss_bytes`; for a
    scheduler parent it also sees the workers it already reaped.  Live
    (unreaped) workers are invisible here — their heartbeat-reported
    RSS (``repro.orchestrate.telemetry``) is the per-worker source of
    truth while they run.
    """
    return max(peak_rss_bytes(), peak_rss_children_bytes())


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One active span; records its event on exit."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent_id", "depth",
                 "_wall0", "_cpu0", "_rss0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = 0
        self.parent_id = None
        self.depth = 0

    def set(self, **attrs) -> None:
        """Attach attributes to this span (e.g. ``s.set(loss=0.12)``)."""
        self.attrs.update(attrs)

    def __enter__(self):
        tracer = self._tracer
        tracer._next_id += 1
        self.id = tracer._next_id
        stack = tracer._stack
        self.parent_id = stack[-1].id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._wall0 = tracer._clock()
        self._cpu0 = tracer._cpu_clock()
        self._rss0 = tracer._rss()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        wall = tracer._clock() - self._wall0
        cpu = tracer._cpu_clock() - self._cpu0
        rss = tracer._rss() - self._rss0
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "id": self.id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "ts": self._wall0 - tracer._epoch,
            "dur_s": wall,
            "cpu_s": cpu,
            "rss_peak_delta_bytes": rss,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        tracer.events.append(event)
        return False


# Process-unique tracer ids: pid plus a monotone counter, so log lines
# written by JsonLinesLogger can name the trace they belong to even
# when several tracers run in one interpreter.
_TRACE_COUNTER = itertools.count(1)


class Tracer:
    """Collects span events for one run.

    ``trace_id`` may be supplied to join a distributed trace started in
    another process (a sweep parent hands its own trace id to every
    worker); ``parent_span_id`` then names the remote span the first
    top-level local span should hang under when the event files are
    stitched back together.  ``epoch_unix`` anchors the tracer's
    relative ``ts`` values to the unix epoch so events from different
    processes can be placed on one shared timeline.
    """

    def __init__(self, clock=time.perf_counter, cpu_clock=time.process_time,
                 rss=peak_rss_bytes, *, trace_id: str | None = None,
                 parent_span_id: int | None = None):
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._rss = rss
        self._epoch = clock()
        self._stack: list[_Span] = []
        self._next_id = 0
        self.trace_id = trace_id or f"{os.getpid():x}-{next(_TRACE_COUNTER)}"
        self.parent_span_id = parent_span_id
        self.epoch_unix = time.time()
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """A new span context manager nested under the current one."""
        return _Span(self, name, attrs)

    def event(self, type: str, name: str, **fields) -> None:
        """Record a free-form (non-span) event, e.g. a metrics snapshot."""
        record = {"type": type, "name": name, "ts": self._clock() - self._epoch}
        record.update(fields)
        self.events.append(record)

    @property
    def current_span(self) -> _Span | None:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All events, one compact sorted-key JSON object per line."""
        return "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self.events
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def chrome_trace(self) -> dict:
        """The events as a Chrome Trace Event Format object."""
        return events_to_chrome(self.events)

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)


def events_to_chrome(events: list[dict], *, default_pid: int | None = None,
                     process_names: dict[int, str] | None = None) -> dict:
    """Convert span events to the Chrome Trace Event Format.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; the result loads in ``chrome://tracing`` and Perfetto.

    Multi-process traces (the sweep stitcher) stamp each event with its
    originating ``pid``/``tid``; events without one fall back to
    ``default_pid`` (this process by default).  ``process_names`` maps
    pid → human label (e.g. ``{1234: "worker 0"}``) and emits the
    ``process_name`` metadata rows Perfetto uses to title each track.
    """
    trace_events = []
    own_pid = default_pid if default_pid is not None else os.getpid()
    seen_pids: set[int] = set()
    for event in events:
        if event.get("type") != "span":
            continue
        args = dict(event.get("attrs") or {})
        args["cpu_ms"] = round(event.get("cpu_s", 0.0) * 1e3, 3)
        rss = event.get("rss_peak_delta_bytes", 0)
        if rss:
            args["rss_peak_delta_kb"] = rss // 1024
        pid = int(event.get("pid", own_pid))
        seen_pids.add(pid)
        trace_events.append({
            "name": event["name"],
            "ph": "X",
            "ts": event["ts"] * 1e6,
            "dur": event["dur_s"] * 1e6,
            "pid": pid,
            "tid": int(event.get("tid", 1)),
            "cat": "repro",
            "args": args,
        })
    trace_events.sort(key=lambda e: e["ts"])
    metadata = []
    for pid in sorted(seen_pids):
        name = (process_names or {}).get(pid)
        if name is None and process_names is None and pid == own_pid:
            continue  # single-process trace: no row titles needed
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name or f"pid {pid}"},
        })
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# process-wide current tracer
# ---------------------------------------------------------------------------
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with ``None``) the tracer; returns the previous."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def tracing_enabled() -> bool:
    return _TRACER is not None


def span(name: str, **attrs):
    """A span under the installed tracer, or a shared no-op when disabled.

    This is the function instrumentation sites call on hot paths; the
    disabled case allocates nothing.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, attrs)
