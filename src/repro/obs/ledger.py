"""Run ledger: an append-only, schema-versioned history of every run.

The paper's contribution is *comparable measurement*: Table 5 and
Figure 8 only mean something because every approach was timed and
scored under one harness.  PR 3's telemetry dies with the process;
this module gives it a memory.  Each training / benchmark / CV /
serving run appends one :class:`RunRecord` — a JSON object carrying a
run id, UTC timestamp, git provenance, a *config fingerprint* (the
hash under which runs are comparable), host info, the full
``MetricsRegistry.snapshot()`` and a flat dict of key scalars
(``steps_per_second``, ``hits_at_1``, serve percentiles, …) — to a
JSON-lines ledger (``reports/ledger.jsonl`` by default, overridable
via ``REPRO_LEDGER_PATH`` or an explicit path).

On top of the append-only file sit the query helpers the regression
sentinel (:mod:`repro.obs.regress`) needs: :meth:`RunLedger.history`
(metric series filtered by fingerprint/kind/name), trailing-N
:meth:`RunLedger.baseline` extraction, and :meth:`RunLedger.compact`
(bounded per-fingerprint retention, atomic rewrite).

Corrupt trailing lines — the normal aftermath of an interrupted bench —
are skipped, counted and reported, never fatal.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from ..faults import fault_point
from ..fingerprint import config_fingerprint, env_fingerprint
from .registry import MetricsRegistry, get_registry

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_LEDGER_PATH",
    "RunRecord",
    "RunLedger",
    "config_fingerprint",
    "env_fingerprint",
    "git_info",
    "host_info",
    "record_run",
    "record_sweep_id",
    "sweep_where",
    "validate_record",
    "default_ledger",
]

SCHEMA_VERSION = 1

DEFAULT_LEDGER_PATH = "reports/ledger.jsonl"

# Run kinds the ledger understands; free-form kinds are allowed but the
# canonical producers stick to these.
KNOWN_KINDS = ("train", "bench", "cv", "serve", "sweep")

_REQUIRED_FIELDS = {
    "schema_version": int,
    "run_id": str,
    "kind": str,
    "name": str,
    "ts_utc": str,
    "git": dict,
    "host": dict,
    "config": dict,
    "fingerprint": str,
    "scalars": dict,
    "metrics": dict,
}


# config_fingerprint / env_fingerprint live in repro.fingerprint (one
# digest shared by the ledger, cv_progress.json and sweep progress);
# they are re-exported here for their historical home.

def git_info(cwd: str | Path | None = None) -> dict:
    """``{"sha": ..., "dirty": ...}`` for the enclosing git repo.

    Never raises: outside a repo (or without git) both fields degrade
    to ``None`` so ledgers still work in exported tarballs.
    """
    try:
        base = Path(cwd) if cwd is not None else Path(__file__).resolve()
        directory = base if base.is_dir() else base.parent
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=directory,
            capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return {"sha": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=directory,
            capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"sha": sha.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def host_info() -> dict:
    """Hardware/interpreter context a timing number is meaningless without."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _utc_now_iso() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class RunRecord:
    """One run, as the ledger stores it (all plain JSON-friendly data)."""

    kind: str
    name: str
    config: dict = field(default_factory=dict)
    scalars: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    ts_utc: str = field(default_factory=_utc_now_iso)
    git: dict = field(default_factory=git_info)
    host: dict = field(default_factory=host_info)
    fingerprint: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not self.fingerprint:
            self.fingerprint = config_fingerprint(self.config)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "ts_utc": self.ts_utc,
            "git": self.git,
            "host": self.host,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "scalars": self.scalars,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        validate_record(data)
        return cls(
            kind=data["kind"], name=data["name"], config=data["config"],
            scalars=data["scalars"], metrics=data["metrics"],
            run_id=data["run_id"], ts_utc=data["ts_utc"], git=data["git"],
            host=data["host"], fingerprint=data["fingerprint"],
            schema_version=data["schema_version"],
        )


def validate_record(data: dict) -> dict:
    """Check ``data`` against the ledger schema; returns it on success.

    Raises :class:`ValueError` naming the first offending field, so a
    truncated or hand-edited line is diagnosable.
    """
    if not isinstance(data, dict):
        raise ValueError(f"record must be an object, got {type(data).__name__}")
    for key, expected in _REQUIRED_FIELDS.items():
        if key not in data:
            raise ValueError(f"record missing field {key!r}")
        if not isinstance(data[key], expected):
            raise ValueError(
                f"record field {key!r} must be {expected.__name__}, "
                f"got {type(data[key]).__name__}"
            )
    if data["schema_version"] > SCHEMA_VERSION:
        raise ValueError(
            f"record schema_version {data['schema_version']} is newer than "
            f"this reader ({SCHEMA_VERSION})"
        )
    scalars = data["scalars"]
    for key, value in scalars.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"scalar {key!r} must be numeric, got {value!r}")
    return data


# ---------------------------------------------------------------------------
# metric resolution
# ---------------------------------------------------------------------------
def record_metric_value(record: dict, metric: str) -> float | None:
    """Resolve ``metric`` inside one record: scalars first, then the
    metrics snapshot.

    Snapshot lookup accepts the exact labelled key
    (``"serve.queries{approach=MTransE}"``), a bare name that matches a
    single labelled series, and ``name:count`` / ``name:sum`` /
    ``name:mean`` for histograms.  ``None`` when absent or ambiguous.
    """
    scalars = record.get("scalars", {})
    if metric in scalars:
        return float(scalars[metric])
    snapshot = record.get("metrics", {})
    base, _, suffix = metric.partition(":")
    for section in ("gauges", "counters", "histograms"):
        series = snapshot.get(section, {})
        matches = [key for key in series
                   if key == base or key.partition("{")[0] == base]
        if len(matches) != 1:
            continue
        value = series[matches[0]]
        if isinstance(value, dict):  # histogram snapshot
            if suffix in ("count", "sum"):
                return float(value.get(suffix, 0.0))
            if suffix in ("", "mean"):
                count = value.get("count", 0)
                return float(value.get("sum", 0.0)) / count if count else None
            return None
        if suffix:
            return None
        return float(value)
    return None


# ---------------------------------------------------------------------------
# the ledger
# ---------------------------------------------------------------------------
class RunLedger:
    """Append-only JSON-lines run history with query helpers."""

    def __init__(self, path: str | Path | None = None):
        if path is None:
            path = os.environ.get("REPRO_LEDGER_PATH") or DEFAULT_LEDGER_PATH
        self.path = Path(path)

    # -- writing -------------------------------------------------------
    def append(self, record: RunRecord | dict) -> dict:
        """Append one record (validated) and return its dict form.

        Raises :class:`OSError` when the ledger location is unwritable;
        callers on shutdown paths should use :meth:`try_append`.
        """
        data = record.to_dict() if isinstance(record, RunRecord) else record
        validate_record(data)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(data, sort_keys=True, default=str)
        # A crash mid-append leaves at most one torn trailing line,
        # which read() skips and compact() garbage-collects; the
        # crash-replay suite injects here to prove it.
        fault_point("ledger.append", path=self.path, data=(line + "\n").encode())
        with open(self.path, "a+b") as handle:
            # self-heal after a torn append: if the last byte is not a
            # newline, start a fresh line so this record stays readable
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write((line + "\n").encode("utf-8"))
        return data

    def try_append(self, record: RunRecord | dict) -> dict | None:
        """Best-effort :meth:`append`: warn on stderr instead of raising."""
        try:
            return self.append(record)
        except (OSError, ValueError) as error:
            print(f"warning: could not append to run ledger {self.path}: "
                  f"{error}", file=sys.stderr)
            return None

    # -- reading -------------------------------------------------------
    def read(self) -> tuple[list[dict], int]:
        """All schema-valid records plus the count of skipped bad lines."""
        if not self.path.is_file():
            return [], 0
        records: list[dict] = []
        skipped = 0
        text = self.path.read_text(encoding="utf-8", errors="replace")
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(validate_record(json.loads(line)))
            except (json.JSONDecodeError, ValueError):
                skipped += 1
        return records, skipped

    def records(self) -> list[dict]:
        return self.read()[0]

    def __len__(self) -> int:
        return len(self.records())

    def __iter__(self):
        return iter(self.records())

    def last(self, *, kind: str | None = None,
             run_id: str | None = None, where=None) -> dict | None:
        """The most recent record (optionally of one kind / exact id /
        matching a ``where`` predicate)."""
        for record in reversed(self.records()):
            if kind is not None and record["kind"] != kind:
                continue
            if run_id is not None and record["run_id"] != run_id:
                continue
            if where is not None and not where(record):
                continue
            return record
        return None

    def tail(self, n: int = 10) -> list[dict]:
        return self.records()[-n:]

    # -- querying ------------------------------------------------------
    def history(
        self,
        metric: str,
        *,
        where=None,
        kind: str | None = None,
        name: str | None = None,
        fingerprint: str | None = None,
        limit: int | None = None,
    ) -> list[tuple[dict, float]]:
        """``(record, value)`` pairs for every run where ``metric``
        resolves, oldest first.

        ``where`` narrows further: a callable ``record -> bool`` or a
        dict of top-level equality constraints.
        """
        out: list[tuple[dict, float]] = []
        for record in self.records():
            if kind is not None and record["kind"] != kind:
                continue
            if name is not None and record["name"] != name:
                continue
            if fingerprint is not None and record["fingerprint"] != fingerprint:
                continue
            if callable(where):
                if not where(record):
                    continue
            elif isinstance(where, dict):
                if any(record.get(k) != v for k, v in where.items()):
                    continue
            value = record_metric_value(record, metric)
            if value is not None:
                out.append((record, value))
        if limit is not None:
            out = out[-limit:]
        return out

    def baseline(
        self,
        metric: str,
        fingerprint: str,
        *,
        n: int = 5,
        exclude_run_id: str | None = None,
        kind: str | None = None,
        name: str | None = None,
        where=None,
    ) -> list[float]:
        """The trailing-``n`` values of ``metric`` among comparable runs.

        This is what the regression sentinel compares the current run
        against: same fingerprint, most recent ``n``, the current run
        itself excluded.  ``where`` narrows the pool further — e.g. to
        one sweep's records via :func:`sweep_where`.
        """
        series = self.history(metric, fingerprint=fingerprint, kind=kind,
                              name=name, where=where)
        values = [value for record, value in series
                  if record["run_id"] != exclude_run_id]
        return values[-n:]

    # -- maintenance ---------------------------------------------------
    def compact(self, keep_last: int = 20, *, where=None) -> tuple[int, int]:
        """Atomically rewrite the ledger keeping the trailing
        ``keep_last`` runs per ``(fingerprint, kind, name)`` group.

        With ``where`` (a ``record -> bool`` predicate) only matching
        records are subject to retention — everything else is rewritten
        untouched, so one sweep can be compacted without disturbing
        unrelated bench history.  Returns ``(kept, dropped)``; bad
        lines are dropped too.
        """
        if keep_last <= 0:
            raise ValueError("keep_last must be positive")
        records, skipped = self.read()
        kept: list[dict] = []
        seen_per_group: dict[tuple, int] = {}
        for record in reversed(records):
            if where is not None and not where(record):
                kept.append(record)
                continue
            group = (record["fingerprint"], record["kind"], record["name"])
            if seen_per_group.get(group, 0) < keep_last:
                seen_per_group[group] = seen_per_group.get(group, 0) + 1
                kept.append(record)
        kept.reverse()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record, sort_keys=True, default=str)
                             + "\n")
        tmp.replace(self.path)
        return len(kept), len(records) - len(kept) + skipped


def record_sweep_id(record: dict) -> str | None:
    """The sweep id a record was produced under, if any."""
    sweep_id = record.get("config", {}).get("sweep_id")
    return sweep_id if isinstance(sweep_id, str) else None


def sweep_where(sweep: str):
    """A ``where`` predicate selecting one sweep's ledger records.

    Matches the full sweep id (``tables@1a2b3c4d``) or just the sweep
    spec name (``tables``), which selects every run of that spec.
    """
    def _match(record: dict) -> bool:
        sweep_id = record_sweep_id(record)
        if sweep_id is None:
            return False
        return sweep_id == sweep or sweep_id.partition("@")[0] == sweep
    return _match


def default_ledger() -> RunLedger | None:
    """The environment-configured ledger, or ``None`` when recording is
    off.

    Library call sites (``cross_validate``, ``serve-query``) record
    through this so plain test runs never write files: recording only
    activates when ``REPRO_LEDGER_PATH`` names a destination.
    """
    path = os.environ.get("REPRO_LEDGER_PATH")
    return RunLedger(path) if path else None


def record_run(
    kind: str,
    name: str,
    *,
    config: dict | None = None,
    scalars: dict | None = None,
    registry: MetricsRegistry | None = None,
    ledger: RunLedger | None = None,
    path: str | Path | None = None,
    strict: bool = False,
    fingerprint: str | None = None,
) -> dict | None:
    """Build a :class:`RunRecord` from the current process state and
    append it.

    ``registry`` defaults to the process-wide one; its snapshot rides
    along so the ledger holds the full metric state, while ``scalars``
    carries the handful of headline numbers the regression gate reads.
    Without an explicit ``ledger``/``path`` the environment decides via
    :func:`default_ledger` — and when that is unset, this is a no-op.
    ``fingerprint`` overrides the config-derived digest — sweep jobs
    use it to keep run-identity tags (``sweep_id``) out of the
    comparability pool.
    """
    if ledger is None:
        ledger = RunLedger(path) if path is not None else default_ledger()
        if ledger is None:
            return None
    registry = registry if registry is not None else get_registry()
    clean_scalars = {
        key: float(value) for key, value in (scalars or {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
        and value == value  # drop NaNs: they poison median baselines
    }
    record = RunRecord(
        kind=kind, name=name, config=dict(config or {}),
        scalars=clean_scalars, metrics=registry.snapshot(),
        fingerprint=fingerprint or "",
    )
    if strict:
        return ledger.append(record)
    return ledger.try_append(record)
