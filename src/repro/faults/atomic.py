"""Crash-safe file writing: tmp + fsync + ``os.replace``.

Every on-disk artifact this project produces (datasets, checkpoints,
snapshots, manifests, CSV exports) goes through :func:`atomic_write`:
the payload is written to a ``*.tmp`` sibling, flushed and fsynced,
then promoted with :func:`os.replace` — so a reader can only ever see
the old complete file or the new complete file, never a torn one.  A
crash leaves at worst a stale ``*.tmp`` sibling, which writers ignore
and overwrite.

Each writer names a fault site (see :mod:`repro.faults.inject`): the
site fires with ``stage="pre"`` on the tmp file just before promotion
(crash simulation — ``raise`` / ``kill`` / ``partial``) and with
``stage="post"`` on the final artifact (``corrupt`` simulation), which
is how the crash-replay suite proves the atomicity actually holds.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable

from .inject import fault_point

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_write_lines",
    "atomic_write_with",
    "sha256_file",
]


def _promote(tmp: Path, path: Path, site: str | None) -> None:
    """Fsync and promote a fully-written tmp file to its final name."""
    if site is not None:
        fault_point(site, path=tmp, stage="pre")
    os.replace(tmp, path)
    if site is not None:
        fault_point(site, path=path, stage="post")


def _fsync_handle(handle) -> None:
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except OSError:  # e.g. filesystems without fsync; best effort
        pass


def atomic_write_bytes(path: Path | str, payload: bytes,
                       site: str | None = None) -> Path:
    """Atomically write ``payload`` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        _fsync_handle(handle)
    _promote(tmp, path, site)
    return path


def atomic_write_text(path: Path | str, text: str,
                      site: str | None = None) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"), site=site)


def atomic_write_json(path: Path | str, payload,
                      site: str | None = None, indent: int | None = 2) -> Path:
    text = json.dumps(payload, indent=indent, sort_keys=True, default=str)
    return atomic_write_text(path, text + "\n", site=site)


def atomic_write_lines(path: Path | str, lines,
                       site: str | None = None) -> Path:
    """Atomically write an iterable of (unterminated) text lines."""
    return atomic_write_text(path, "".join(line + "\n" for line in lines),
                             site=site)


def atomic_write_with(path: Path | str, writer: Callable,
                      site: str | None = None, mode: str = "wb") -> Path:
    """Atomically write via ``writer(handle)`` — for payloads that are
    produced by a streaming API (``np.savez``, ``csv.writer`` …)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    kwargs = {} if "b" in mode else {"newline": "", "encoding": "utf-8"}
    with open(tmp, mode, **kwargs) as handle:
        writer(handle)
        _fsync_handle(handle)
    _promote(tmp, path, site)
    return path


def sha256_file(path: Path | str) -> str:
    """Streaming sha256 of a file (hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
