"""``repro.faults`` — crash-safety primitives and fault injection.

Two halves of one robustness story:

* :mod:`repro.faults.atomic` — the atomic-write helpers (tmp + fsync +
  ``os.replace`` + sha256) every on-disk artifact goes through, so a
  crash can never leave a torn readable file;
* :mod:`repro.faults.inject` — the deterministic fault-injection
  harness (named :func:`fault_point` sites, ``REPRO_FAULTS`` seeded
  schedules, raise/kill/partial-write/corrupt-bytes modes) that the
  crash-replay test suite uses to *prove* it.

See ``docs/robustness.md``.
"""

from __future__ import annotations

from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_lines,
    atomic_write_text,
    atomic_write_with,
    sha256_file,
)
from .inject import (
    ENV_VAR,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_point,
    inject,
    install,
    is_active,
    parse_plan,
    reset,
)

__all__ = [
    "ENV_VAR", "KILL_EXIT_CODE",
    "InjectedFault", "FaultRule", "FaultPlan",
    "fault_point", "parse_plan", "install", "reset", "active_plan",
    "is_active", "inject",
    "atomic_write_bytes", "atomic_write_text", "atomic_write_json",
    "atomic_write_lines", "atomic_write_with", "sha256_file",
]
