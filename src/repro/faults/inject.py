"""Deterministic fault injection for crash-safety testing.

Production code is sprinkled with *fault points* — named sites at the
exact places where a crash, torn write or bit flip would hurt::

    from ..faults import fault_point
    ...
    fault_point("checkpoint.write", path=tmp_path)

With nothing configured a fault point is a single module-global ``is
None`` check, so the hot paths pay (almost) nothing.  A *fault plan*
arms some sites with seeded schedules and failure modes; plans come
from the ``REPRO_FAULTS`` environment variable (so a whole subprocess
run can be made to die at epoch 3) or from the :func:`inject` context
manager (for in-process tests)::

    REPRO_FAULTS="epoch.end:nth=3:mode=kill"
    REPRO_FAULTS="checkpoint.write:nth=1:mode=partial;io.read:p=0.5:seed=7"

Grammar: rules separated by ``;``, fields by ``:``; the first field is
the site name, the rest are ``key=value`` pairs:

``mode``
    ``raise`` (default) — raise :class:`InjectedFault`;
    ``kill`` — ``os._exit(137)``, the honest SIGKILL simulation;
    ``partial`` — leave a torn half-written artifact, then raise;
    ``corrupt`` — flip bytes in the finished artifact and *continue*
    (the silent-corruption scenario checksums must catch).
``nth``
    fire on the N-th hit of the site (1-based, default 1).
``p`` / ``seed``
    instead of ``nth``: fire independently with probability ``p``
    using a dedicated seeded generator.
``times``
    how many times the rule may fire in total (default 1 for ``nth``
    rules, unlimited for probabilistic ones).

Sites that write through :mod:`repro.faults.atomic` call their fault
point twice — ``stage="pre"`` just before the tmp file is promoted and
``stage="post"`` on the final artifact — so crash-style modes tear the
tmp file while ``corrupt`` hits the real one.  Rules default to the
stage their mode needs.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass, field

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "parse_plan",
    "fault_point",
    "install",
    "reset",
    "active_plan",
    "is_active",
    "inject",
]

ENV_VAR = "REPRO_FAULTS"

MODES = ("raise", "kill", "partial", "corrupt")

# Exit code used by mode=kill; 137 == 128 + SIGKILL, what an OOM-killed
# or `kill -9`-ed training process reports.
KILL_EXIT_CODE = 137


class InjectedFault(RuntimeError):
    """Raised by an armed fault point (modes ``raise`` and ``partial``)."""

    def __init__(self, site: str, mode: str = "raise"):
        super().__init__(f"injected fault at {site!r} (mode={mode})")
        self.site = site
        self.mode = mode


@dataclass
class FaultRule:
    """One armed site: when to fire and what failure to produce."""

    site: str
    mode: str = "raise"
    nth: int | None = None
    p: float | None = None
    seed: int = 0
    times: int | None = None
    stage: str | None = None  # "pre" / "post" / None (mode default)

    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"choose from {MODES}")
        if self.nth is not None and self.p is not None:
            raise ValueError("a rule takes nth= or p=, not both")
        if self.nth is None and self.p is None:
            self.nth = 1
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.times is None and self.nth is not None:
            self.times = 1
        if self.stage is None:
            # corrupt must act on the finished artifact; crash-style
            # modes must act before it exists
            self.stage = "post" if self.mode == "corrupt" else "pre"
        self._rng = None

    def matches_stage(self, stage: str | None) -> bool:
        """Stageless call sites accept any rule; staged sites (the
        atomic writer) only trigger rules armed for that stage."""
        return stage is None or stage == self.stage

    def should_fire(self) -> bool:
        """Count one hit and decide (deterministically) whether to fire."""
        if self.times is not None and self.fired >= self.times:
            return False
        self.hits += 1
        if self.p is not None:
            if self._rng is None:
                import numpy as np

                self._rng = np.random.default_rng(self.seed)
            fire = bool(self._rng.random() < self.p)
        else:
            fire = self.hits == self.nth
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A set of :class:`FaultRule` indexed by site name."""

    def __init__(self, rules: list[FaultRule] | None = None):
        self._rules: dict[str, list[FaultRule]] = {}
        self.log: list[tuple[str, str]] = []  # (site, mode) of every firing
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self._rules.setdefault(rule.site, []).append(rule)
        return self

    def rules_for(self, site: str) -> list[FaultRule]:
        return self._rules.get(site, [])

    @property
    def sites(self) -> list[str]:
        return sorted(self._rules)

    def hits(self, site: str) -> int:
        return sum(rule.hits for rule in self.rules_for(site))


def parse_plan(spec: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultPlan`."""
    plan = FaultPlan()
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = chunk.split(":")
        site = fields[0].strip()
        if not site:
            raise ValueError(f"fault rule {chunk!r} has no site name")
        kwargs: dict = {}
        for pair in fields[1:]:
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(
                    f"fault rule field {pair!r} is not key=value (in {chunk!r})"
                )
            key = key.strip()
            value = value.strip()
            if key in ("nth", "seed", "times"):
                kwargs[key] = int(value)
            elif key == "p":
                kwargs[key] = float(value)
            elif key in ("mode", "stage"):
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault rule key {key!r} (in {chunk!r})")
        plan.add(FaultRule(site=site, **kwargs))
    return plan


# ---------------------------------------------------------------------------
# the active plan
# ---------------------------------------------------------------------------
_PLAN: FaultPlan | None = None
_LOCK = threading.Lock()


def _plan_from_env() -> FaultPlan | None:
    spec = os.environ.get(ENV_VAR, "").strip()
    return parse_plan(spec) if spec else None


def install(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install ``plan`` (or a spec string) process-wide; returns it."""
    global _PLAN
    if isinstance(plan, str):
        plan = parse_plan(plan)
    _PLAN = plan
    return plan


def reset() -> None:
    """Disarm every fault point (and ignore ``REPRO_FAULTS``)."""
    install(None)


def active_plan() -> FaultPlan | None:
    return _PLAN


def is_active() -> bool:
    return _PLAN is not None


class inject:
    """``with faults.inject("epoch.end:nth=2"):`` — a scoped plan.

    Restores the previously installed plan (usually none) on exit and
    exposes the plan as the ``as`` target for hit/firing assertions.
    """

    def __init__(self, plan: FaultPlan | str):
        self.plan = parse_plan(plan) if isinstance(plan, str) else plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        global _PLAN
        self._previous = _PLAN
        _PLAN = self.plan
        return self.plan

    def __exit__(self, *exc):
        global _PLAN
        _PLAN = self._previous
        return False


# ---------------------------------------------------------------------------
# firing
# ---------------------------------------------------------------------------
def fault_point(site: str, *, path=None, data=None, stage: str | None = None) -> None:
    """Declare a named fault site.  No-op unless a plan arms ``site``.

    ``path`` names the artifact the site is about to produce (or just
    produced, for ``stage="post"``); ``data`` is the payload an append-
    style writer is about to write.  Both are only consulted by the
    ``partial`` and ``corrupt`` modes.
    """
    plan = _PLAN
    if plan is None:
        return
    rules = plan.rules_for(site)
    if not rules:
        return
    with _LOCK:
        for rule in rules:
            if not rule.matches_stage(stage):
                continue
            if not rule.should_fire():
                continue
            plan.log.append((site, rule.mode))
            _fire(rule, site, path, data)


def _fire(rule: FaultRule, site: str, path, data) -> None:
    if rule.mode == "kill":
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(KILL_EXIT_CODE)
    if rule.mode == "partial":
        _tear(path, data)
        raise InjectedFault(site, "partial")
    if rule.mode == "corrupt":
        _flip_bytes(path, seed=rule.seed)
        return  # silent corruption: execution continues
    raise InjectedFault(site, "raise")


def _tear(path, data) -> None:
    """Leave a half-written artifact behind, like a crash mid-``write``."""
    if path is None:
        return
    path = os.fspath(path)
    if data is not None:
        payload = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        with open(path, "ab") as handle:
            handle.write(payload[: max(1, len(payload) // 2)])
    elif os.path.exists(path):
        size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.truncate(max(0, size // 2))


def _flip_bytes(path, seed: int = 0, n_flips: int = 4) -> None:
    """Deterministically flip a few bytes of ``path`` (if it exists)."""
    if path is None or not os.path.exists(path):
        return
    import numpy as np

    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        return
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, size, size=min(n_flips, size))
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(int(offset))
            byte = handle.read(1)
            handle.seek(int(offset))
            handle.write(bytes([byte[0] ^ 0xFF]))


# Arm from the environment at import time so `REPRO_FAULTS=... python -m
# repro.cli train ...` works with no code changes in the child process.
_PLAN = _plan_from_env()
