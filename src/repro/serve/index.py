"""Pluggable ANN indexes with a uniform ``search(queries, k)`` contract.

Three implementations trade accuracy for speed (paper §7.2 names
candidate-space reduction as the open direction for large-scale
alignment):

* :class:`ExactIndex` — blockwise exact cosine top-k, the ground truth
  (wraps :func:`repro.alignment.topk_similarity`);
* :class:`LSHIndex` — random-hyperplane LSH
  (:class:`repro.alignment.HyperplaneLSH`) with multi-probe and an
  exact fallback for queries whose buckets are all empty;
* :class:`IVFIndex` — an inverted-file index over a spherical k-means
  coarse quantizer: queries visit only the ``n_probe`` nearest
  clusters.

All indexes return ``(ids, scores)`` of shape ``(n_queries, k)`` sorted
by decreasing cosine score; rows with fewer than ``k`` candidates are
padded with id ``-1`` and score ``-inf``.  The approximate indexes
score candidates in *bucket-grouped batches* (one matmul per visited
bucket, not per query), which is what makes them beat a single big
exact matmul on CPU.
"""

from __future__ import annotations

import numpy as np

from ..alignment.blocking import HyperplaneLSH
from ..alignment.streaming import topk_similarity

__all__ = ["ANNIndex", "ExactIndex", "LSHIndex", "IVFIndex",
           "INDEX_KINDS", "make_index"]


def _normalize(matrix: np.ndarray, dtype=np.float64) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return (matrix / np.maximum(norms, 1e-12)).astype(dtype, copy=False)


def _merge_topk(ids_buf: np.ndarray, scores_buf: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of a candidate buffer, deduplicating ids.

    The same target can enter the buffer through several buckets (LSH
    tables / probes); keep its best score only.  Fully vectorized:
    sort by score, stable-sort by id (so the best copy of each id comes
    first), mask the repeats, then top-k what survives.
    """
    order = np.argsort(-scores_buf, axis=1, kind="stable")
    ids_s = np.take_along_axis(ids_buf, order, axis=1)
    scores_s = np.take_along_axis(scores_buf, order, axis=1)
    order = np.argsort(ids_s, axis=1, kind="stable")
    ids_s = np.take_along_axis(ids_s, order, axis=1)
    scores_s = np.take_along_axis(scores_s, order, axis=1)
    dup = np.zeros(scores_s.shape, dtype=bool)
    dup[:, 1:] = ids_s[:, 1:] == ids_s[:, :-1]
    scores_s[dup | (ids_s < 0)] = -np.inf
    kk = min(k, scores_s.shape[1])
    top = np.argpartition(-scores_s, kk - 1, axis=1)[:, :kk]
    top_ids = np.take_along_axis(ids_s, top, axis=1)
    top_scores = np.take_along_axis(scores_s, top, axis=1)
    order = np.argsort(-top_scores, axis=1, kind="stable")
    n = len(ids_buf)
    out_ids = np.full((n, k), -1, dtype=np.int64)
    out_scores = np.full((n, k), -np.inf)
    out_ids[:, :kk] = np.take_along_axis(top_ids, order, axis=1)
    out_scores[:, :kk] = np.take_along_axis(top_scores, order, axis=1)
    out_ids[~np.isfinite(out_scores)] = -1
    return out_ids, out_scores


def _score_rank(queries: np.ndarray, group_of_query: np.ndarray,
                bucket_of_group, ids_buf: np.ndarray,
                scores_buf: np.ndarray, col: int, k: int) -> None:
    """Score one probe rank, grouped by bucket.

    ``group_of_query[q]`` names the bucket query ``q`` visits at this
    rank; ``bucket_of_group(bucket)`` returns ``(member_rows,
    submatrix_T)`` — the bucket's target rows and their pre-gathered,
    transposed vectors — or ``None``.  Queries sharing a bucket are
    scored in one matmul and their per-bucket top-k lands in
    ``buf[:, col:col+k]``.
    """
    order = np.argsort(group_of_query, kind="stable")
    sorted_groups = group_of_query[order]
    starts = np.flatnonzero(np.r_[True, sorted_groups[1:] !=
                                  sorted_groups[:-1]])
    bounds = np.append(starts, len(order))
    for gi, start in enumerate(starts):
        entry = bucket_of_group(int(sorted_groups[start]))
        if entry is None:
            continue
        members, submatrix = entry
        rows = order[start:bounds[gi + 1]]
        sims = queries[rows] @ submatrix
        kk = min(k, members.size)
        if kk < members.size:
            top = np.argpartition(-sims, kk - 1, axis=1)[:, :kk]
            ids_buf[rows, col:col + kk] = members[top]
            scores_buf[rows, col:col + kk] = \
                np.take_along_axis(sims, top, axis=1)
        else:
            ids_buf[rows, col:col + kk] = members[None, :]
            scores_buf[rows, col:col + kk] = sims


class ANNIndex:
    """Interface: ``build(vectors)`` then ``search(queries, k)``.

    Indexes whose built state is worth persisting additionally expose
    ``params()`` (constructor kwargs), ``state_arrays()`` (the arrays a
    store can checkpoint) and ``load_state(vectors, arrays)`` (rebuild
    against the same vectors without re-running construction) — see
    :meth:`repro.serve.EmbeddingStore.save_index`.
    """

    kind = "base"

    def build(self, vectors: np.ndarray) -> None:
        raise NotImplementedError

    def search(self, queries: np.ndarray,
               k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def params(self) -> dict:
        """JSON-able constructor kwargs to recreate this index empty."""
        return {}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of indexed vectors (0 before :meth:`build`)."""
        return getattr(self, "_n_indexed", 0)

    def _require_built(self) -> None:
        if self.size == 0:
            raise RuntimeError("call build() before search()")

    @staticmethod
    def _check_k(k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")


class ExactIndex(ANNIndex):
    """Blockwise exact cosine top-k — the recall=1.0 reference.

    ``block`` trades peak memory against BLAS efficiency; 256 keeps the
    per-block similarity slab inside L2/L3 and measures fastest on a
    single core, so it is also the fairest baseline for the approximate
    indexes to beat.
    """

    kind = "exact"

    def __init__(self, block: int = 256):
        self.block = block
        self._vectors: np.ndarray | None = None
        self._n_indexed = 0

    def build(self, vectors: np.ndarray) -> None:
        self._vectors = np.asarray(vectors, dtype=np.float64)
        self._n_indexed = len(self._vectors)

    def params(self) -> dict:
        return {"block": self.block}

    def search(self, queries: np.ndarray,
               k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        self._check_k(k)
        self._require_built()
        kk = min(k, self._n_indexed)
        ids, scores = topk_similarity(np.asarray(queries, dtype=np.float64),
                                      self._vectors, k=kk, block=self.block)
        if kk == k:
            return ids, scores
        out_ids = np.full((len(ids), k), -1, dtype=np.int64)
        out_scores = np.full((len(ids), k), -np.inf)
        out_ids[:, :kk] = ids
        out_scores[:, :kk] = scores
        return out_ids, out_scores


class LSHIndex(ANNIndex):
    """Multi-probe random-hyperplane LSH over unit vectors.

    ``n_bits``/``n_tables`` follow :class:`HyperplaneLSH`; ``probes``
    extra buckets per table are visited by flipping the lowest-margin
    sign bits.  Queries whose visited buckets yield fewer than
    ``min(k, size)`` candidates are answered by exact search over the
    whole index (the serving-grade empty-bucket fallback).

    Candidates are scored in float32 — like any production ANN engine,
    the approximation budget includes the scoring precision; recall is
    always measured against the float64 exact reference.
    """

    kind = "lsh"

    def __init__(self, n_bits: int = 6, n_tables: int = 4, probes: int = 1,
                 seed: int = 0):
        if probes < 0:
            raise ValueError("probes must be non-negative")
        self.n_bits = n_bits
        self.n_tables = n_tables
        self.probes = probes
        self.seed = seed
        self._lsh: HyperplaneLSH | None = None
        self._targets: np.ndarray | None = None
        self._n_indexed = 0

    def params(self) -> dict:
        return {"n_bits": self.n_bits, "n_tables": self.n_tables,
                "probes": self.probes, "seed": self.seed}

    def build(self, vectors: np.ndarray) -> None:
        targets64 = _normalize(vectors)
        self._targets = targets64.astype(np.float32)
        self._n_indexed = len(self._targets)
        self._lsh = HyperplaneLSH(targets64.shape[1], n_bits=self.n_bits,
                                  n_tables=self.n_tables, seed=self.seed)
        self._lsh.index(targets64)
        # pre-gather each bucket's (members, transposed float32 submatrix):
        # search-time matmuls then skip the fancy-index copy per call,
        # trading ~n_tables x matrix memory for steady-state latency.
        self._buckets = [
            {signature: (members,
                         np.ascontiguousarray(self._targets[members].T))
             for signature, members in self._lsh._tables[table].items()}
            for table in range(self.n_tables)
        ]

    def search(self, queries: np.ndarray,
               k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        self._check_k(k)
        self._require_built()
        queries64 = _normalize(queries)
        queries = queries64.astype(np.float32)
        n = len(queries)
        ranks = 1 + self.probes
        width = self.n_tables * ranks * k
        ids_buf = np.full((n, width), -1, dtype=np.int64)
        scores_buf = np.full((n, width), -np.inf, dtype=np.float32)
        col = 0
        for table in range(self.n_tables):
            signatures = self._lsh._probe_signatures(
                self._lsh._projections(queries64, table), self.probes
            )
            buckets = self._buckets[table]
            for rank in range(signatures.shape[1]):
                _score_rank(queries, signatures[:, rank], buckets.get,
                            ids_buf, scores_buf, col, k)
                col += k
        ids, scores = _merge_topk(ids_buf, scores_buf, k)
        # empty-bucket fallback: exact search for starved queries — rows
        # whose visited buckets held fewer than min(k, size) candidates
        kk = min(k, self._n_indexed)
        starved = np.where(ids[:, kk - 1] < 0)[0]
        if starved.size:
            exact_ids, exact_scores = topk_similarity(
                queries64[starved], self._targets, k=kk
            )
            ids[starved[:, None], np.arange(kk)[None, :]] = exact_ids
            scores[starved[:, None], np.arange(kk)[None, :]] = exact_scores
        return ids, scores


class IVFIndex(ANNIndex):
    """Inverted-file index: spherical k-means + ``n_probe`` cluster scan.

    ``n_clusters`` defaults to ``~sqrt(n)`` at build time.  Clusters
    partition the index, so the scored fraction is roughly
    ``n_probe / n_clusters`` — the speed knob.  Like :class:`LSHIndex`,
    candidate scoring runs in float32.
    """

    kind = "ivf"

    def __init__(self, n_clusters: int | None = None, n_probe: int = 4,
                 iters: int = 8, seed: int = 0):
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        if iters <= 0:
            raise ValueError("iters must be positive")
        self.n_clusters = n_clusters
        self.n_probe = n_probe
        self.iters = iters
        self.seed = seed
        self._targets: np.ndarray | None = None
        self._centroids: np.ndarray | None = None
        self._members: list[np.ndarray] = []
        self._n_indexed = 0

    def build(self, vectors: np.ndarray) -> None:
        targets = _normalize(vectors)
        n = len(targets)
        n_clusters = self.n_clusters or max(1, int(round(np.sqrt(n))))
        n_clusters = min(n_clusters, n)
        rng = np.random.default_rng(self.seed)
        centroids = targets[rng.choice(n, size=n_clusters, replace=False)]
        assignment = np.zeros(n, dtype=np.int64)
        for _ in range(self.iters):
            assignment = (targets @ centroids.T).argmax(axis=1)
            centroids = centroids.copy()
            for cluster in range(n_clusters):
                mask = assignment == cluster
                if mask.any():
                    mean = targets[mask].mean(axis=0)
                    centroids[cluster] = mean / max(np.linalg.norm(mean),
                                                    1e-12)
        self._targets = targets.astype(np.float32)
        self._centroids = centroids.astype(np.float32)
        self._members = [np.where(assignment == cluster)[0]
                         for cluster in range(n_clusters)]
        # same pre-gathered layout as LSHIndex (clusters partition the
        # index, so this costs one extra matrix copy in total)
        self._clusters = [
            (members, np.ascontiguousarray(self._targets[members].T))
            if members.size else None
            for members in self._members
        ]
        self._n_indexed = n

    def search(self, queries: np.ndarray,
               k: int = 10) -> tuple[np.ndarray, np.ndarray]:
        self._check_k(k)
        self._require_built()
        queries = _normalize(queries, dtype=np.float32)
        n = len(queries)
        n_probe = min(self.n_probe, len(self._members))
        centroid_sims = queries @ self._centroids.T
        if n_probe < centroid_sims.shape[1]:
            probe = np.argpartition(-centroid_sims, n_probe - 1,
                                    axis=1)[:, :n_probe]
        else:
            probe = np.tile(np.arange(centroid_sims.shape[1]), (n, 1))
        width = n_probe * k
        ids_buf = np.full((n, width), -1, dtype=np.int64)
        scores_buf = np.full((n, width), -np.inf, dtype=np.float32)
        clusters = self._clusters
        for rank in range(n_probe):
            _score_rank(queries, probe[:, rank], lambda c: clusters[c],
                        ids_buf, scores_buf, rank * k, k)
        return _merge_topk(ids_buf, scores_buf, k)

    # -- persistence ---------------------------------------------------
    def params(self) -> dict:
        return {"n_clusters": self.n_clusters, "n_probe": self.n_probe,
                "iters": self.iters, "seed": self.seed}

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The built quantizer: centroids plus per-target assignment.

        Together with the target matrix (which the store already holds)
        this is the whole index — k-means never has to rerun at load.
        """
        self._require_built()
        assignment = np.empty(self._n_indexed, dtype=np.int64)
        for cluster, members in enumerate(self._members):
            assignment[members] = cluster
        return {"centroids": np.asarray(self._centroids),
                "assignment": assignment}

    def load_state(self, vectors: np.ndarray,
                   arrays: dict[str, np.ndarray]) -> None:
        """Rebuild from :meth:`state_arrays` against the same vectors."""
        targets = _normalize(vectors)
        centroids = np.asarray(arrays["centroids"], dtype=np.float32)
        assignment = np.asarray(arrays["assignment"], dtype=np.int64)
        if assignment.shape != (len(targets),):
            raise ValueError(
                f"index state covers {assignment.shape[0]} targets, "
                f"the store holds {len(targets)}"
            )
        if centroids.ndim != 2 or centroids.shape[1] != targets.shape[1]:
            raise ValueError("centroid dimensionality mismatch")
        if assignment.size and not (
                0 <= assignment.min() and
                assignment.max() < len(centroids)):
            raise ValueError("assignment references unknown clusters")
        self._targets = targets.astype(np.float32)
        self._centroids = centroids
        self._members = [np.where(assignment == cluster)[0]
                         for cluster in range(len(centroids))]
        self._clusters = [
            (members, np.ascontiguousarray(self._targets[members].T))
            if members.size else None
            for members in self._members
        ]
        self._n_indexed = len(targets)


INDEX_KINDS: dict[str, type[ANNIndex]] = {
    "exact": ExactIndex,
    "lsh": LSHIndex,
    "ivf": IVFIndex,
}


def make_index(kind: str, **params) -> ANNIndex:
    """Factory: ``make_index("lsh", n_tables=4)``."""
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown index kind {kind!r}; choose from {sorted(INDEX_KINDS)}"
        ) from None
    return cls(**params)
