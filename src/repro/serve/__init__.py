"""Online entity-alignment serving: store -> index -> engine -> metrics.

The training side of the repository answers "how good is approach X?";
this package answers "align this entity now".  A trained run is frozen
into a versioned :class:`EmbeddingStore`, loaded back memory-mapped,
indexed by one of the pluggable ANN indexes (exact / multi-probe LSH /
IVF) and served through a batched, cached :class:`QueryEngine` whose
traffic is measured by :class:`ServingMetrics` — including sampled
recall of the approximate index against exact search.

Quickstart::

    from repro.serve import EmbeddingStore, QueryEngine

    store = EmbeddingStore("store/")
    store.save(snapshot)                      # EmbeddingSnapshot from training
    engine = QueryEngine(store.load(), index="ivf", k=10)
    print(engine.query("entity_42").neighbors)
    print(engine.metrics.format())
"""

from .engine import QueryEngine, QueryResult
from .index import (
    ANNIndex,
    ExactIndex,
    INDEX_KINDS,
    IVFIndex,
    LSHIndex,
    make_index,
)
from .metrics import LatencyHistogram, ServingMetrics, recall_vs_exact
from .store import EmbeddingStore, StoreCorruption, StoredEmbeddings

__all__ = [
    "EmbeddingStore", "StoredEmbeddings", "StoreCorruption",
    "ANNIndex", "ExactIndex", "LSHIndex", "IVFIndex",
    "INDEX_KINDS", "make_index",
    "QueryEngine", "QueryResult",
    "ServingMetrics", "LatencyHistogram", "recall_vs_exact",
]
