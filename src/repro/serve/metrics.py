"""Serving telemetry: latency histograms, QPS, cache and recall tracking.

A production alignment service is only as good as its observability —
"A Critical Assessment of State-of-the-Art in Entity Alignment"
(arXiv:2010.16314) argues that serving-time candidate ranking must
report calibrated top-k quality, so besides the classic latency/QPS/
cache counters this module can estimate an approximate index's
recall@k against exact search on a query sample.
"""

from __future__ import annotations

import time

import numpy as np

from ..alignment.streaming import topk_similarity
from ..obs import Histogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServingMetrics", "recall_vs_exact"]

# Latency-scaled buckets (seconds): sub-ms to multi-second tails.
LATENCY_BUCKETS = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class LatencyHistogram:
    """Latency observations with percentile reporting.

    Backed by a shared-registry :class:`repro.obs.Histogram`: bucket
    counts for export plus a bounded reservoir of raw samples (default
    10 000) for percentiles — exact below the cap, an unbiased uniform
    sample above it.  The bound keeps long-running serving loops from
    growing memory with every request, which the raw-sample list this
    class used to keep did.
    """

    def __init__(self, max_samples: int = 10_000,
                 histogram: Histogram | None = None):
        self._hist = histogram or Histogram(
            "serve.latency_seconds", buckets=LATENCY_BUCKETS,
            reservoir_size=max_samples,
        )

    def observe(self, seconds: float) -> None:
        self._hist.observe(float(seconds))

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def n_samples(self) -> int:
        """Raw samples currently retained (``<= max_samples``)."""
        return self._hist.n_samples

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile in seconds (nan when empty)."""
        return self._hist.percentile(q)

    def summary(self) -> dict[str, float]:
        """p50/p95/p99 in milliseconds, plus the sample count."""
        return {
            "count": self.count,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


class ServingMetrics:
    """Counters for one serving session (engine + index + cache).

    All numbers live in a :class:`repro.obs.MetricsRegistry` — private
    by default, or one shared across engines/subsystems when passed in —
    while this class keeps its original read API (``queries``,
    ``cache_hits``, ``latency.summary()`` …) for existing callers.
    """

    def __init__(self, clock=time.perf_counter,
                 registry: MetricsRegistry | None = None):
        self._clock = clock
        self.registry = registry or MetricsRegistry()
        self.latency = LatencyHistogram(
            histogram=self.registry.histogram(
                "serve.latency_seconds", buckets=LATENCY_BUCKETS,
            )
        )
        self._queries = self.registry.counter("serve.queries")
        self._batches = self.registry.counter("serve.batches")
        self._cache_hits = self.registry.counter("serve.cache_hits")
        self._cache_misses = self.registry.counter("serve.cache_misses")
        self._busy = self.registry.counter("serve.busy_seconds")
        self._degraded = self.registry.counter("serve.degraded")
        self._abstained = self.registry.counter("serve.abstained")
        self.degradation_reasons: list[str] = []

    # ------------------------------------------------------------------
    def time_batch(self):
        """Context manager timing one micro-batch."""
        return _BatchTimer(self)

    def record_batch(self, n_queries: int, seconds: float) -> None:
        self._queries.inc(int(n_queries))
        self._batches.inc()
        self._busy.inc(float(seconds))
        self.latency.observe(seconds)

    def record_cache(self, hits: int = 0, misses: int = 0) -> None:
        self._cache_hits.inc(int(hits))
        self._cache_misses.inc(int(misses))

    def record_degraded(self, reason: str) -> None:
        """Count one ANN→exact degradation (corrupt or failed index)."""
        self._degraded.inc()
        self.degradation_reasons.append(str(reason))

    def record_abstained(self, n: int = 1) -> None:
        """Count served answers that abstained (below the confidence
        threshold); cache hits count every time they are served."""
        self._abstained.inc(int(n))

    # ------------------------------------------------------------------
    @property
    def queries(self) -> int:
        return int(self._queries.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def degraded(self) -> int:
        return int(self._degraded.value)

    @property
    def abstained(self) -> int:
        return int(self._abstained.value)

    @property
    def _busy_seconds(self) -> float:
        return self._busy.value

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def qps(self) -> float:
        """Queries per second of index service time (cache hits excluded)."""
        return self.queries / self._busy_seconds if self._busy_seconds else 0.0

    def summary(self) -> dict[str, float]:
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "qps": self.qps,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "degraded": self.degraded,
            "abstained": self.abstained,
        }
        out.update(self.latency.summary())
        return out

    def format(self) -> str:
        s = self.summary()
        return (
            f"queries={s['queries']} batches={s['batches']} "
            f"qps={s['qps']:.0f} "
            f"latency p50={s['p50_ms']:.2f}ms p95={s['p95_ms']:.2f}ms "
            f"p99={s['p99_ms']:.2f}ms "
            f"cache hit-rate={s['cache_hit_rate']:.1%} "
            f"({s['cache_hits']}/{s['cache_hits'] + s['cache_misses']})"
        )


class _BatchTimer:
    def __init__(self, metrics: ServingMetrics):
        self._metrics = metrics
        self._started = 0.0
        self.n_queries = 0

    def __enter__(self):
        self._started = self._metrics._clock()
        return self

    def __exit__(self, *exc):
        elapsed = self._metrics._clock() - self._started
        self._metrics.record_batch(self.n_queries, elapsed)
        return False


def recall_vs_exact(
    index,
    queries: np.ndarray,
    targets: np.ndarray,
    k: int = 10,
    sample: int = 256,
    seed: int = 0,
) -> float:
    """Mean recall@k of ``index`` against exact search on a query sample.

    Samples ``sample`` query rows, computes the exact cosine top-k via
    :func:`repro.alignment.topk_similarity`, and reports the average
    fraction of exact neighbors the index retrieved.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    queries = np.asarray(queries, dtype=np.float64)
    rows = np.arange(len(queries))
    if sample and sample < len(queries):
        rows = np.random.default_rng(seed).choice(
            len(queries), size=sample, replace=False
        )
    sampled = queries[rows]
    k = min(k, len(targets))
    exact_ids, _ = topk_similarity(sampled, targets, k=k)
    got_ids, _ = index.search(sampled, k=k)
    hits = 0
    for row in range(len(sampled)):
        hits += len(set(exact_ids[row].tolist())
                    & set(got_ids[row, got_ids[row] >= 0].tolist()))
    return hits / (len(sampled) * k)
