"""Versioned on-disk embedding store for the serving layer.

Training is the expensive step; serving must reload its artifacts in
milliseconds and survive redeploys.  An :class:`EmbeddingStore` is a
directory of immutable versions::

    store/
      manifest.json            # version registry + checksums + metadata
      v001/
        source_matrix.npy      # mmap-able (np.load(..., mmap_mode="r"))
        target_matrix.npy
        vocab.json             # entity name lists + metric + model name
      v002/ ...

Matrices are stored as raw ``.npy`` (not inside an ``.npz`` archive)
precisely so :func:`numpy.load` can memory-map them — a zipped archive
would force a full copy into RAM at every load.  The manifest is JSON
so operators can inspect a deployment with ``cat``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..pipeline.checkpoint import EmbeddingSnapshot

__all__ = ["EmbeddingStore", "StoredEmbeddings"]

_MANIFEST = "manifest.json"
_VOCAB = "vocab.json"
_SOURCE = "source_matrix.npy"
_TARGET = "target_matrix.npy"


@dataclass
class StoredEmbeddings:
    """One loaded store version; matrices may be ``np.memmap`` views."""

    version: str
    sources: list[str]
    targets: list[str]
    source_matrix: np.ndarray
    target_matrix: np.ndarray
    metric: str = "cosine"
    name: str = "snapshot"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.sources) != len(self.source_matrix):
            raise ValueError("source names and matrix rows disagree")
        if len(self.targets) != len(self.target_matrix):
            raise ValueError("target names and matrix rows disagree")
        self._source_row = {e: i for i, e in enumerate(self.sources)}
        self._target_row = {e: i for i, e in enumerate(self.targets)}

    def source_row(self, entity: str) -> int:
        return self._source_row[entity]

    def target_row(self, entity: str) -> int:
        return self._target_row[entity]

    @property
    def dim(self) -> int:
        return int(self.source_matrix.shape[1])

    def snapshot(self) -> EmbeddingSnapshot:
        """Materialize as an in-memory :class:`EmbeddingSnapshot`."""
        return EmbeddingSnapshot(
            self.sources, np.asarray(self.source_matrix),
            self.targets, np.asarray(self.target_matrix),
            metric=self.metric, name=self.name,
        )


def _checksum(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class EmbeddingStore:
    """Append-only registry of embedding versions under one root."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def describe(self) -> dict:
        """The manifest contents (``{"versions": [...]}``)."""
        path = self._manifest_path()
        if not path.exists():
            return {"versions": []}
        return json.loads(path.read_text(encoding="utf-8"))

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self._manifest_path().with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(self._manifest_path())

    def versions(self) -> list[str]:
        return [entry["id"] for entry in self.describe()["versions"]]

    def latest(self) -> str | None:
        versions = self.versions()
        return versions[-1] if versions else None

    # ------------------------------------------------------------------
    def save(self, snapshot: EmbeddingSnapshot,
             metadata: dict | None = None) -> str:
        """Persist a snapshot as the next version; returns its id."""
        manifest = self.describe()
        version = f"v{len(manifest['versions']) + 1:03d}"
        directory = self.root / version
        directory.mkdir(parents=True, exist_ok=False)
        np.save(directory / _SOURCE, np.ascontiguousarray(
            snapshot.source_matrix))
        np.save(directory / _TARGET, np.ascontiguousarray(
            snapshot.target_matrix))
        vocab = {
            "sources": list(snapshot.sources),
            "targets": list(snapshot.targets),
            "metric": snapshot.metric,
            "name": snapshot.name,
        }
        (directory / _VOCAB).write_text(json.dumps(vocab),
                                        encoding="utf-8")
        manifest["versions"].append({
            "id": version,
            "name": snapshot.name,
            "metric": snapshot.metric,
            "n_sources": len(snapshot.sources),
            "n_targets": len(snapshot.targets),
            "dim": int(snapshot.source_matrix.shape[1]),
            "checksums": {
                _SOURCE: _checksum(directory / _SOURCE),
                _TARGET: _checksum(directory / _TARGET),
            },
            "metadata": dict(metadata or {}),
        })
        self._write_manifest(manifest)
        return version

    def save_cv_result(self, result, pairs: list[tuple[str, str]],
                       metadata: dict | None = None) -> str:
        """Persist the best fold of a :class:`repro.pipeline.CVResult`.

        Picks the fold with the highest test Hits@1 — the model a
        deployment would actually promote — and records which fold won.
        """
        if not result.folds:
            raise ValueError("CVResult has no folds to persist")
        best = max(range(len(result.folds)),
                   key=lambda i: result.folds[i].metrics.hits_at(1))
        approach = result.folds[best].approach
        snapshot = EmbeddingSnapshot.from_approach(approach, pairs,
                                                   name=result.name)
        info = {"dataset": result.dataset, "fold": best,
                "hits@1": result.folds[best].metrics.hits_at(1)}
        info.update(metadata or {})
        return self.save(snapshot, metadata=info)

    # ------------------------------------------------------------------
    def load(self, version: str | None = None,
             mmap: bool = True) -> StoredEmbeddings:
        """Load a version (default: latest), memory-mapped by default."""
        manifest = self.describe()
        if not manifest["versions"]:
            raise FileNotFoundError(f"empty embedding store at {self.root}")
        if version is None:
            entry = manifest["versions"][-1]
        else:
            matches = [e for e in manifest["versions"] if e["id"] == version]
            if not matches:
                raise KeyError(
                    f"version {version!r} not in store "
                    f"(have {self.versions()})"
                )
            entry = matches[0]
        directory = self.root / entry["id"]
        vocab = json.loads((directory / _VOCAB).read_text(encoding="utf-8"))
        mmap_mode = "r" if mmap else None
        return StoredEmbeddings(
            version=entry["id"],
            sources=vocab["sources"],
            targets=vocab["targets"],
            source_matrix=np.load(directory / _SOURCE, mmap_mode=mmap_mode),
            target_matrix=np.load(directory / _TARGET, mmap_mode=mmap_mode),
            metric=vocab["metric"],
            name=vocab["name"],
            metadata=dict(entry.get("metadata", {})),
        )
