"""Versioned on-disk embedding store for the serving layer.

Training is the expensive step; serving must reload its artifacts in
milliseconds and survive redeploys.  An :class:`EmbeddingStore` is a
directory of immutable versions::

    store/
      manifest.json            # version registry + checksums + metadata
      v001/
        source_matrix.npy      # mmap-able (np.load(..., mmap_mode="r"))
        target_matrix.npy
        vocab.json             # entity name lists + metric + model name
      v002/ ...

Matrices are stored as raw ``.npy`` (not inside an ``.npz`` archive)
precisely so :func:`numpy.load` can memory-map them — a zipped archive
would force a full copy into RAM at every load.  The manifest is JSON
so operators can inspect a deployment with ``cat``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..faults import atomic_write_json, atomic_write_with, fault_point
from ..pipeline.checkpoint import EmbeddingSnapshot
from .index import ANNIndex, make_index

__all__ = ["EmbeddingStore", "StoredEmbeddings", "StoreCorruption"]

_MANIFEST = "manifest.json"
_VOCAB = "vocab.json"
_SOURCE = "source_matrix.npy"
_TARGET = "target_matrix.npy"


@dataclass
class StoredEmbeddings:
    """One loaded store version; matrices may be ``np.memmap`` views."""

    version: str
    sources: list[str]
    targets: list[str]
    source_matrix: np.ndarray
    target_matrix: np.ndarray
    metric: str = "cosine"
    name: str = "snapshot"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.sources) != len(self.source_matrix):
            raise ValueError("source names and matrix rows disagree")
        if len(self.targets) != len(self.target_matrix):
            raise ValueError("target names and matrix rows disagree")
        self._source_row = {e: i for i, e in enumerate(self.sources)}
        self._target_row = {e: i for i, e in enumerate(self.targets)}

    def source_row(self, entity: str) -> int:
        return self._source_row[entity]

    def target_row(self, entity: str) -> int:
        return self._target_row[entity]

    @property
    def dim(self) -> int:
        return int(self.source_matrix.shape[1])

    def snapshot(self) -> EmbeddingSnapshot:
        """Materialize as an in-memory :class:`EmbeddingSnapshot`."""
        return EmbeddingSnapshot(
            self.sources, np.asarray(self.source_matrix),
            self.targets, np.asarray(self.target_matrix),
            metric=self.metric, name=self.name,
        )


class StoreCorruption(RuntimeError):
    """A store artifact exists but fails its manifest sha256 check."""


def _checksum(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class EmbeddingStore:
    """Append-only registry of embedding versions under one root."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def describe(self) -> dict:
        """The manifest contents (``{"versions": [...]}``)."""
        path = self._manifest_path()
        if not path.exists():
            return {"versions": []}
        return json.loads(path.read_text(encoding="utf-8"))

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_json(self._manifest_path(), manifest,
                          site="store.manifest")

    def _find_entry(self, version: str | None) -> dict:
        manifest = self.describe()
        if not manifest["versions"]:
            raise FileNotFoundError(f"empty embedding store at {self.root}")
        if version is None:
            return manifest["versions"][-1]
        matches = [e for e in manifest["versions"] if e["id"] == version]
        if not matches:
            raise KeyError(
                f"version {version!r} not in store (have {self.versions()})"
            )
        return matches[0]

    def versions(self) -> list[str]:
        return [entry["id"] for entry in self.describe()["versions"]]

    def latest(self) -> str | None:
        versions = self.versions()
        return versions[-1] if versions else None

    # ------------------------------------------------------------------
    def save(self, snapshot: EmbeddingSnapshot,
             metadata: dict | None = None) -> str:
        """Persist a snapshot as the next version; returns its id."""
        manifest = self.describe()
        version = f"v{len(manifest['versions']) + 1:03d}"
        directory = self.root / version
        directory.mkdir(parents=True, exist_ok=False)
        for fname, matrix in ((_SOURCE, snapshot.source_matrix),
                              (_TARGET, snapshot.target_matrix)):
            atomic_write_with(
                directory / fname,
                lambda handle, m=matrix: np.save(
                    handle, np.ascontiguousarray(m)),
                site="store.save",
            )
        vocab = {
            "sources": list(snapshot.sources),
            "targets": list(snapshot.targets),
            "metric": snapshot.metric,
            "name": snapshot.name,
        }
        atomic_write_json(directory / _VOCAB, vocab, site="store.save")
        manifest["versions"].append({
            "id": version,
            "name": snapshot.name,
            "metric": snapshot.metric,
            "n_sources": len(snapshot.sources),
            "n_targets": len(snapshot.targets),
            "dim": int(snapshot.source_matrix.shape[1]),
            "checksums": {
                _SOURCE: _checksum(directory / _SOURCE),
                _TARGET: _checksum(directory / _TARGET),
                _VOCAB: _checksum(directory / _VOCAB),
            },
            "metadata": dict(metadata or {}),
        })
        self._write_manifest(manifest)
        return version

    def save_cv_result(self, result, pairs: list[tuple[str, str]],
                       metadata: dict | None = None) -> str:
        """Persist the best fold of a :class:`repro.pipeline.CVResult`.

        Picks the fold with the highest test Hits@1 — the model a
        deployment would actually promote — and records which fold won.
        """
        if not result.folds:
            raise ValueError("CVResult has no folds to persist")
        best = max(range(len(result.folds)),
                   key=lambda i: result.folds[i].metrics.hits_at(1))
        approach = result.folds[best].approach
        snapshot = EmbeddingSnapshot.from_approach(approach, pairs,
                                                   name=result.name)
        info = {"dataset": result.dataset, "fold": best,
                "hits@1": result.folds[best].metrics.hits_at(1)}
        info.update(metadata or {})
        return self.save(snapshot, metadata=info)

    # ------------------------------------------------------------------
    def verify(self, version: str | None = None,
               include_index: bool = False) -> str:
        """Check a version's manifest checksums; returns its id.

        Raises :class:`StoreCorruption` naming the first damaged file —
        a flipped bit in an embedding matrix would otherwise serve
        silently-wrong alignments.  The persisted ANN index file is
        excluded by default: it is verified by :meth:`load_index`, whose
        callers can *survive* its corruption by degrading to exact
        search, whereas matrix corruption is fatal.
        """
        entry = self._find_entry(version)
        directory = self.root / entry["id"]
        index_file = entry.get("index", {}).get("file")
        for fname, expected in entry.get("checksums", {}).items():
            if fname == index_file and not include_index:
                continue
            path = directory / fname
            if not path.is_file():
                raise StoreCorruption(
                    f"store file {path} is missing (manifest lists it)"
                )
            if _checksum(path) != expected:
                raise StoreCorruption(
                    f"store file {path} fails its sha256 check"
                )
        return entry["id"]

    def load(self, version: str | None = None,
             mmap: bool = True, verify: bool = False) -> StoredEmbeddings:
        """Load a version (default: latest), memory-mapped by default.

        ``verify=True`` checks all manifest checksums first (reads every
        byte, so it defeats mmap laziness once — the serving layer pays
        this at startup, not per query).
        """
        entry = self._find_entry(version)
        if verify:
            self.verify(entry["id"])
        directory = self.root / entry["id"]
        vocab = json.loads((directory / _VOCAB).read_text(encoding="utf-8"))
        mmap_mode = "r" if mmap else None
        return StoredEmbeddings(
            version=entry["id"],
            sources=vocab["sources"],
            targets=vocab["targets"],
            source_matrix=np.load(directory / _SOURCE, mmap_mode=mmap_mode),
            target_matrix=np.load(directory / _TARGET, mmap_mode=mmap_mode),
            metric=vocab["metric"],
            name=vocab["name"],
            metadata=dict(entry.get("metadata", {})),
        )

    # -- persisted ANN indexes -----------------------------------------
    def save_index(self, index: ANNIndex, version: str | None = None) -> Path:
        """Persist a built index's state next to a version's matrices.

        The index must expose ``state_arrays()`` (currently
        :class:`~repro.serve.index.IVFIndex`; exact search needs no
        state).  The file is checksummed into the manifest so a damaged
        index is detected at load time and serving degrades to exact
        search instead of answering from garbage centroids.
        """
        state = getattr(index, "state_arrays", None)
        if state is None:
            raise TypeError(
                f"{type(index).__name__} has no persistable state "
                f"(only kinds with state_arrays(), e.g. 'ivf', can be saved)"
            )
        manifest = self.describe()
        entry = self._find_entry(version)
        # _find_entry re-reads the manifest; mutate the copy we persist.
        entry = next(e for e in manifest["versions"]
                     if e["id"] == entry["id"])
        directory = self.root / entry["id"]
        fname = f"index_{index.kind}.npz"
        path = directory / fname
        arrays = state()
        atomic_write_with(
            path,
            lambda handle: np.savez_compressed(handle, **arrays),
            site="store.save",
        )
        entry.setdefault("checksums", {})[fname] = _checksum(path)
        entry["index"] = {"kind": index.kind, "file": fname,
                          "params": index.params()}
        self._write_manifest(manifest)
        return path

    def load_index(self, version: str | None = None,
                   stored: StoredEmbeddings | None = None) -> ANNIndex:
        """Rebuild the persisted index of a version, checksum-verified.

        Raises :class:`FileNotFoundError` when the version never saved
        an index and :class:`StoreCorruption` when the saved state fails
        its sha256 check or no longer matches the target matrix — the
        caller (:meth:`repro.serve.QueryEngine.from_store`) treats both
        corruption and load failure as a cue to degrade to exact search.
        """
        entry = self._find_entry(version)
        info = entry.get("index")
        if not info:
            raise FileNotFoundError(
                f"version {entry['id']} has no persisted index"
            )
        directory = self.root / entry["id"]
        path = directory / info["file"]
        fault_point("serve.index_load", path=path)
        if not path.is_file():
            raise StoreCorruption(f"persisted index {path} is missing")
        expected = entry.get("checksums", {}).get(info["file"])
        if expected and _checksum(path) != expected:
            raise StoreCorruption(
                f"persisted index {path} fails its sha256 check"
            )
        if stored is None or stored.version != entry["id"]:
            stored = self.load(entry["id"])
        index = make_index(info["kind"], **info.get("params", {}))
        with np.load(path, allow_pickle=False) as npz:
            index.load_state(np.asarray(stored.target_matrix), dict(npz))
        return index
