"""Batched query engine: "align this entity now", observably.

The engine owns one store version and one ANN index and turns entity
names into ranked alignment candidates:

* **micro-batching** — lookups are grouped into index batches of at
  most ``batch_size`` queries, bounding per-request latency and peak
  memory while amortizing the per-call numpy overhead;
* **LRU cache** — repeated queries (the head of any real traffic
  distribution) are served from an ``(entity, k)``-keyed cache without
  touching the index;
* **confidence** — each answer carries the top-1/top-2 cosine margin,
  the standard serving-time proxy for alignment certainty (a crowded
  neighborhood means an unreliable match);
* **abstention** — with ``abstain_threshold`` / ``abstain_margin`` set
  (explicitly or calibrated into the store's metadata), low-confidence
  answers come back with ``abstained=True`` and ``best is None``
  instead of a forced wrong match — the serving face of the dangling-
  entity evaluation (docs/robustness.md, "Data-level robustness").

All traffic is accounted in a :class:`~repro.serve.metrics.ServingMetrics`.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..faults import fault_point
from .index import ANNIndex, ExactIndex, make_index
from .metrics import ServingMetrics
from .store import EmbeddingStore, StoredEmbeddings

__all__ = ["QueryEngine", "QueryResult"]


@dataclass
class QueryResult:
    """Ranked alignment candidates for one source entity."""

    query: str
    neighbors: list[tuple[str, float]]  # (target entity, cosine score)
    confidence: float  # top-1 minus top-2 score; 0 when < 2 candidates
    # True when the engine's abstention policy rejected the answer: the
    # query entity is best treated as dangling (no counterpart).  The
    # ranked neighbors stay available for inspection, but ``best``
    # becomes None.
    abstained: bool = field(default=False)

    @property
    def best(self) -> str | None:
        if self.abstained or not self.neighbors:
            return None
        return self.neighbors[0][0]


class QueryEngine:
    """Serve top-k alignment queries over a :class:`StoredEmbeddings`."""

    def __init__(self, stored: StoredEmbeddings,
                 index: ANNIndex | str = "exact",
                 k: int = 10, batch_size: int = 256, cache_size: int = 1024,
                 metrics: ServingMetrics | None = None,
                 abstain_threshold: float | None = None,
                 abstain_margin: float | None = None, **index_params):
        if k <= 0:
            raise ValueError("k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.stored = stored
        self.abstain_threshold = abstain_threshold
        self.abstain_margin = abstain_margin
        self.index = (make_index(index, **index_params)
                      if isinstance(index, str) else index)
        self.k = k
        self.batch_size = batch_size
        self.cache_size = cache_size
        self.metrics = metrics or ServingMetrics()
        self._cache: OrderedDict[tuple[str, int], QueryResult] = OrderedDict()
        if self.index.size == 0:  # pre-built (store-loaded) indexes skip this
            try:
                self.index.build(np.asarray(stored.target_matrix))
            except Exception as error:  # degraded, never down
                self._degrade(f"index build failed: {error}")

    @classmethod
    def from_store(
        cls, store: EmbeddingStore, version: str | None = None,
        verify: bool = True, metrics: ServingMetrics | None = None,
        **kwargs,
    ) -> "QueryEngine":
        """Serve a store version with its persisted ANN index, safely.

        The store checksums are verified up front (``verify=False`` to
        skip): corrupt *embeddings* are fatal — there is no correct
        answer to degrade to.  A corrupt, missing or unloadable *index*
        is survivable: the engine logs it, bumps the ``serve.degraded``
        counter and falls back to exact search, which is slower but
        exactly right.

        A calibrated abstention policy persisted in the store's
        metadata (``abstain_threshold`` / ``abstain_margin``, e.g. from
        :func:`repro.alignment.evaluate.calibrate_abstention`) is
        honoured automatically; explicit keyword arguments win.
        """
        metrics = metrics or ServingMetrics()
        stored = store.load(version, verify=verify)
        for knob in ("abstain_threshold", "abstain_margin"):
            if knob not in kwargs and stored.metadata.get(knob) is not None:
                kwargs[knob] = float(stored.metadata[knob])
        index: ANNIndex
        try:
            index = store.load_index(stored.version, stored=stored)
        except FileNotFoundError:
            index = "exact"  # nothing persisted; exact is the default
        except Exception as error:
            metrics.record_degraded(f"index load failed: {error}")
            print(f"[repro.serve] persisted index for {stored.version} "
                  f"unusable ({error}); degrading to exact search",
                  file=sys.stderr)
            index = ExactIndex()
        return cls(stored, index=index, metrics=metrics, **kwargs)

    # ------------------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        """Swap the index for exact search and surface why."""
        self.metrics.record_degraded(reason)
        print(f"[repro.serve] degrading to exact search: {reason}",
              file=sys.stderr)
        self.index = ExactIndex()
        self.index.build(np.asarray(self.stored.target_matrix))

    @property
    def degraded(self) -> bool:
        return self.metrics.degraded > 0

    def _search(self, vectors: np.ndarray,
                k: int) -> tuple[np.ndarray, np.ndarray]:
        """``index.search`` with a one-shot exact fallback on failure."""
        try:
            # Injectable query-time failure (docs/robustness.md): under
            # ``inject("serve.query:...")`` the raise lands here, so the
            # degrade-to-exact path below — including abstention on the
            # degraded engine — is exercised exactly like a real index
            # fault.
            fault_point("serve.query")
            return self.index.search(vectors, k=k)
        except Exception as error:
            if isinstance(self.index, ExactIndex):
                raise  # exact search itself failing is not survivable
            self._degrade(f"index search failed: {error}")
            return self.index.search(vectors, k=k)

    # ------------------------------------------------------------------
    def query(self, entity: str, k: int | None = None) -> QueryResult:
        """Align one source entity."""
        return self.query_batch([entity], k=k)[0]

    def query_batch(self, entities: list[str],
                    k: int | None = None) -> list[QueryResult]:
        """Align many source entities; cache first, micro-batch the rest."""
        k = self.k if k is None else k
        results: dict[int, QueryResult] = {}
        missed: list[int] = []
        hits = 0
        for position, entity in enumerate(entities):
            cached = self._cache_get((entity, k))
            if cached is not None:
                results[position] = cached
                hits += 1
            else:
                missed.append(position)
        self.metrics.record_cache(hits=hits, misses=len(missed))
        for start in range(0, len(missed), self.batch_size):
            chunk = missed[start:start + self.batch_size]
            with self.metrics.time_batch() as timer:
                timer.n_queries = len(chunk)
                rows = [self.stored.source_row(entities[p]) for p in chunk]
                vectors = np.asarray(self.stored.source_matrix[rows])
                ids, scores = self._search(vectors, k=k)
            for out_row, position in enumerate(chunk):
                result = self._to_result(entities[position], ids[out_row],
                                         scores[out_row])
                results[position] = result
                self._cache_put((entities[position], k), result)
        ordered = [results[position] for position in range(len(entities))]
        abstained = sum(1 for result in ordered if result.abstained)
        if abstained:
            self.metrics.record_abstained(abstained)
        return ordered

    def query_vectors(self, vectors: np.ndarray,
                      k: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Raw vector interface (no names, no cache): ``(ids, scores)``."""
        k = self.k if k is None else k
        with self.metrics.time_batch() as timer:
            timer.n_queries = len(vectors)
            ids, scores = self._search(np.asarray(vectors), k=k)
        self.metrics.record_cache(misses=len(vectors))
        return ids, scores

    # ------------------------------------------------------------------
    def _to_result(self, entity: str, ids: np.ndarray,
                   scores: np.ndarray) -> QueryResult:
        neighbors = [
            (self.stored.targets[int(target)], float(score))
            for target, score in zip(ids, scores) if target >= 0
        ]
        if len(neighbors) >= 2:
            confidence = neighbors[0][1] - neighbors[1][1]
        else:
            confidence = 0.0
        abstained = bool(neighbors) and (
            (self.abstain_threshold is not None
             and neighbors[0][1] < self.abstain_threshold)
            or (self.abstain_margin is not None
                and len(neighbors) >= 2
                and confidence < self.abstain_margin)
        )
        return QueryResult(query=entity, neighbors=neighbors,
                           confidence=confidence, abstained=abstained)

    def _cache_get(self, key: tuple[str, int]) -> QueryResult | None:
        if self.cache_size <= 0:
            return None
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: tuple[str, int], result: QueryResult) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def metrics_text(self) -> str:
        """This engine's serving metrics in Prometheus text exposition
        format — the body a deployment's ``/metrics`` endpoint serves."""
        from ..obs.exporters import render_prometheus

        return render_prometheus(self.metrics.registry)
