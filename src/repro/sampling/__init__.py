"""Dataset sampling: IDS (Algorithm 1), baselines and PageRank."""

from .baselines import degree_biased_sample, prs_sample, ras_sample
from .ids import IDSResult, ids_sample
from .pagerank import pagerank

__all__ = [
    "ids_sample", "IDSResult", "ras_sample", "prs_sample",
    "degree_biased_sample", "pagerank",
]
