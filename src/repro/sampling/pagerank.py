"""PageRank over a :class:`~repro.kg.graph.KnowledgeGraph`.

IDS (Algorithm 1, line 8) weights entity-deletion probabilities by
PageRank so that structurally influential entities survive sampling.
Implemented as plain power iteration on the undirected entity structure;
the test suite checks it against networkx.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..kg import KnowledgeGraph

__all__ = ["pagerank"]


def pagerank(
    kg: KnowledgeGraph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> dict[str, float]:
    """PageRank scores for every entity of ``kg`` (sums to 1).

    Uses the undirected relation structure with uniform teleportation;
    dangling (isolated) entities redistribute their mass uniformly, the
    standard convention.
    """
    entities = sorted(kg.entities)
    n = len(entities)
    if n == 0:
        return {}
    index = {entity: i for i, entity in enumerate(entities)}
    adjacency = kg.adjacency()
    rows: list[int] = []
    cols: list[int] = []
    for entity in entities:
        i = index[entity]
        for neighbor in adjacency.get(entity, ()):
            rows.append(index[neighbor])
            cols.append(i)
    matrix = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n, n)
    )
    out_degree = np.asarray(matrix.sum(axis=0)).ravel()
    dangling = out_degree == 0

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        contribution = np.where(dangling, 0.0, rank / np.maximum(out_degree, 1.0))
        new_rank = matrix @ contribution
        dangling_mass = rank[dangling].sum()
        new_rank = (1.0 - damping) / n + damping * (new_rank + dangling_mass / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return {entity: float(rank[index[entity]]) for entity in entities}
