"""Iterative degree-based sampling (IDS) — Algorithm 1 of the paper.

IDS simultaneously deletes entities from two source KGs (keeping the
reference alignment synchronized) until the requested entity size is
reached, while holding each sample's degree distribution close to its
source's, measured by Jensen-Shannon divergence.

Per round, the number of degree-``x`` entities to delete is

    ``dsize(x, mu) = mu * (1 + P(x) - Q(x))``

where ``Q`` is the source's degree distribution and ``P`` the current
sample's: over-represented degrees are culled faster.  Within a degree
group, deletion probability is inversely proportional to PageRank, so
influential entities survive (Algorithm 1, line 8).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..kg import KGPair, degree_distribution, js_divergence
from .pagerank import pagerank

__all__ = ["ids_sample", "IDSResult"]


@dataclass
class IDSResult:
    """An IDS run's outcome plus its fidelity diagnostics."""

    pair: KGPair
    js1: float
    js2: float
    rounds: int
    attempts: int


def _filter_by_alignment(pair: KGPair) -> KGPair:
    """Drop alignment pairs whose entities vanished, then re-induce both KGs."""
    ent1, ent2 = pair.kg1.entities, pair.kg2.entities
    alignment = [(a, b) for a, b in pair.alignment if a in ent1 and b in ent2]
    keep1 = {a for a, _ in alignment}
    keep2 = {b for _, b in alignment}
    return KGPair(
        kg1=pair.kg1.filtered(keep1),
        kg2=pair.kg2.filtered(keep2),
        alignment=alignment,
        name=pair.name,
        metadata=dict(pair.metadata),
    )


def _dsize_by_degree(
    by_degree: dict[int, list[str]],
    source: dict[int, float],
    mu: int,
    surplus: int,
) -> dict[int, int]:
    """Per-degree deletion counts for one round.

    The paper's ``dsize(x, mu) = mu * (1 + P(x) - Q(x))`` deletes roughly
    ``mu`` entities per degree group, culling over-represented degrees
    faster.  At small sample scales that adjustment is too weak to keep
    the JS divergence under the paper's 5% threshold, so we size groups by
    *proportional fitting*: the round's total budget is the paper's
    ``mu * #groups`` and each group is trimmed towards the source share
    ``Q(x)`` of the post-round size.  The spirit (degree-aware, mu-scaled
    deletion) is unchanged; only the per-group split is more aggressive.
    """
    n_current = sum(len(members) for members in by_degree.values())
    budget = min(mu * max(1, len(by_degree)), surplus)
    post_size = n_current - budget
    desired = {
        degree: max(0.0, len(members) - post_size * source.get(degree, 0.0))
        for degree, members in by_degree.items()
    }
    total_desired = sum(desired.values())
    if total_desired <= 0:
        # Already matching the source: trim uniformly.
        return {
            degree: min(len(members), int(np.ceil(budget * len(members) / n_current)))
            for degree, members in by_degree.items()
        }
    # Isolated entities get absolute priority: the paper's IDS samples
    # contain none (Table 3), and they carry no structure to preserve.
    result: dict[int, int] = {}
    if 0 in by_degree and source.get(0, 0.0) == 0.0:
        result[0] = min(len(by_degree[0]), budget)
        budget -= result[0]
        total_desired -= desired.pop(0, 0.0)
    if budget <= 0 or total_desired <= 0:
        return result
    scale = budget / total_desired
    for degree, want in desired.items():
        result[degree] = min(len(by_degree[degree]), int(round(want * scale)))
    return result


def _delete_round(
    pair: KGPair,
    reference: dict[int, dict[int, float]],
    mu: int,
    target: int,
    rng: np.random.Generator,
) -> KGPair:
    """One deletion round over both KGs (Algorithm 1, lines 6-10)."""
    doomed_pairs: set[tuple[str, str]] = set()
    counterpart = {1: dict(pair.alignment), 2: {b: a for a, b in pair.alignment}}
    for side, kg in ((1, pair.kg1), (2, pair.kg2)):
        source = reference[side]
        degrees = kg.degrees()
        ranks = pagerank(kg)
        by_degree: dict[int, list[str]] = defaultdict(list)
        for entity, degree in degrees.items():
            by_degree[degree].append(entity)
        surplus = len(kg.entities) - target
        if surplus <= 0:
            continue
        dsizes = _dsize_by_degree(by_degree, source, mu, surplus)
        budget = 0
        for degree_value, members in sorted(by_degree.items()):
            dsize = min(dsizes.get(degree_value, 0), max(0, surplus - budget))
            if dsize <= 0:
                continue
            budget += dsize
            # Inverse-PageRank weights: low-influence entities go first.
            weights = np.array([1.0 / max(ranks[m], 1e-12) for m in members])
            weights /= weights.sum()
            chosen = rng.choice(len(members), size=dsize, replace=False, p=weights)
            for i in chosen:
                entity = members[int(i)]
                other = counterpart[side].get(entity)
                if other is None:
                    continue
                doomed_pairs.add((entity, other) if side == 1 else (other, entity))
    if not doomed_pairs:
        return pair
    alignment = [p for p in pair.alignment if p not in doomed_pairs]
    keep1 = {a for a, _ in alignment}
    keep2 = {b for _, b in alignment}
    return KGPair(
        kg1=pair.kg1.filtered(keep1),
        kg2=pair.kg2.filtered(keep2),
        alignment=alignment,
        name=pair.name,
        metadata=dict(pair.metadata),
    )


def ids_sample(
    source: KGPair,
    n_entities: int,
    mu: int | None = None,
    epsilon: float = 0.05,
    seed: int = 0,
    max_attempts: int = 3,
    return_details: bool = False,
) -> KGPair | IDSResult:
    """Run IDS on ``source`` down to ``n_entities`` aligned entities.

    Parameters follow Algorithm 1; ``mu`` defaults to the paper's scaling
    (100 for 15K entities, i.e. ``n_entities / 150``).  If after
    ``max_attempts`` restarts the JS divergence still exceeds ``epsilon``,
    the best attempt is returned (a warning case the paper's "if fails,
    run it again" comment acknowledges).
    """
    if n_entities <= 0:
        raise ValueError("n_entities must be positive")
    if mu is None:
        mu = max(1, n_entities // 150)

    filtered = _filter_by_alignment(source)
    if len(filtered.alignment) < n_entities:
        raise ValueError(
            f"source has only {len(filtered.alignment)} aligned entities; "
            f"cannot sample {n_entities}"
        )
    reference = {
        1: degree_distribution(filtered.kg1),
        2: degree_distribution(filtered.kg2),
    }

    best: tuple[float, KGPair, int] | None = None
    rounds_used = 0
    for attempt in range(max_attempts):
        rng = np.random.default_rng(seed + attempt)
        current = filtered
        rounds = 0
        while len(current.alignment) > n_entities:
            rounds += 1
            shrunk = _delete_round(current, reference, mu, n_entities, rng)
            if len(shrunk.alignment) == len(current.alignment):
                break  # nothing deletable this round
            current = shrunk
        # Deleting triples can orphan aligned entities (no facts left at
        # all); drop those pairs until the alignment is self-consistent.
        while True:
            refiltered = _filter_by_alignment(current)
            if len(refiltered.alignment) == len(current.alignment):
                break
            current = refiltered
        js1 = js_divergence(reference[1], degree_distribution(current.kg1))
        js2 = js_divergence(reference[2], degree_distribution(current.kg2))
        score = max(js1, js2)
        if best is None or score < best[0]:
            best = (score, current, rounds)
        rounds_used = rounds
        if score <= epsilon:
            break
    assert best is not None
    score, pair, rounds_used = best
    js1 = js_divergence(reference[1], degree_distribution(pair.kg1))
    js2 = js_divergence(reference[2], degree_distribution(pair.kg2))
    if return_details:
        return IDSResult(pair=pair, js1=js1, js2=js2, rounds=rounds_used,
                         attempts=attempt + 1)
    return pair
