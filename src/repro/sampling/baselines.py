"""Baseline samplers the paper evaluates IDS against (Table 3).

* **RAS** (random alignment sampling): pick N alignment pairs uniformly at
  random and keep only the induced triples.
* **PRS** (PageRank-based sampling): sample entities from KG1 with
  probability proportional to PageRank, then take their counterparts in
  KG2.
* **degree-biased sampling**: prefers high-degree entities — the kind of
  bias that makes DBP15K/WK3L twice as dense as their source (Figure 2).
"""

from __future__ import annotations

import numpy as np

from ..kg import KGPair
from .pagerank import pagerank

__all__ = ["ras_sample", "prs_sample", "degree_biased_sample"]


def _induce(source: KGPair, alignment: list[tuple[str, str]]) -> KGPair:
    keep1 = {a for a, _ in alignment}
    keep2 = {b for _, b in alignment}
    return KGPair(
        kg1=source.kg1.filtered(keep1),
        kg2=source.kg2.filtered(keep2),
        alignment=alignment,
        name=source.name,
        metadata=dict(source.metadata),
    )


def _check_size(source: KGPair, n_entities: int) -> None:
    if n_entities <= 0:
        raise ValueError("n_entities must be positive")
    if n_entities > len(source.alignment):
        raise ValueError(
            f"cannot sample {n_entities} pairs from {len(source.alignment)}"
        )


def ras_sample(source: KGPair, n_entities: int, seed: int = 0) -> KGPair:
    """Random alignment sampling."""
    _check_size(source, n_entities)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(source.alignment), size=n_entities, replace=False)
    alignment = [source.alignment[int(i)] for i in chosen]
    return _induce(source, alignment)


def prs_sample(source: KGPair, n_entities: int, seed: int = 0) -> KGPair:
    """PageRank-based sampling from KG1; counterparts pulled from KG2."""
    _check_size(source, n_entities)
    rng = np.random.default_rng(seed)
    ranks = pagerank(source.kg1)
    counterpart = dict(source.alignment)
    candidates = [e for e in counterpart if e in ranks]
    weights = np.array([ranks[e] for e in candidates])
    weights /= weights.sum()
    chosen = rng.choice(len(candidates), size=n_entities, replace=False, p=weights)
    alignment = [(candidates[int(i)], counterpart[candidates[int(i)]]) for i in chosen]
    return _induce(source, alignment)


def degree_biased_sample(
    source: KGPair, n_entities: int, bias: float = 2.0, seed: int = 0
) -> KGPair:
    """Sample alignment pairs with probability proportional to degree^bias.

    With ``bias >= 2`` this reproduces the density inflation of the legacy
    DBP15K/WK3L datasets relative to their source KGs.
    """
    _check_size(source, n_entities)
    rng = np.random.default_rng(seed)
    weights = np.array(
        [max(source.alignment_degree(p), 1) ** bias for p in source.alignment],
        dtype=np.float64,
    )
    weights /= weights.sum()
    chosen = rng.choice(len(source.alignment), size=n_entities, replace=False, p=weights)
    alignment = [source.alignment[int(i)] for i in chosen]
    return _induce(source, alignment)
