"""The orchestrator's job model.

A *job* is the unit the scheduler fans out: one (approach config,
dataset, fold) triple, trained for a given epoch budget.  Everything
about a job is plain data, so a job can be shipped to a worker process,
recorded in the run ledger and replayed from a progress file:

* ``job_id`` — a deterministic sha256-16 over the job's canonical
  payload, computed with the same :func:`repro.fingerprint.fingerprint`
  the ledger uses, so job identity and ledger comparability are one
  concept.
* ``lineage_id`` — the job id with the epoch budget (and tuning-round
  bookkeeping) removed.  Successive-halving rungs of one candidate
  share a lineage, which is what lets rung promotion *resume* the
  candidate's checkpoint instead of retraining from scratch.
* ``seed()`` — the per-job RNG seed, derived from
  ``np.random.SeedSequence`` keyed by the lineage id.  Because the
  seed is a pure function of job identity, results are bit-identical
  no matter which worker runs the job or in what order
  (``jobs=1`` == ``jobs=4``), and a candidate resumed at a higher
  budget continues the exact RNG stream it checkpointed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

import numpy as np

from ..approaches.base import ApproachConfig
from ..fingerprint import fingerprint

__all__ = ["JobSpec", "JobResult", "execute_job", "load_dataset",
           "dataset_key", "derive_seed"]

_CONFIG_FIELDS = {f.name for f in fields(ApproachConfig)}


def dataset_key(dataset: dict) -> str:
    """Stable identity of a dataset spec (used to share loaded pairs)."""
    return fingerprint(dict(dataset))


def derive_seed(base_seed: int, lineage_id: str) -> int:
    """The per-job seed: ``SeedSequence`` spawned off the lineage id.

    ``spawn_key`` carries the 64-bit lineage fingerprint, so every job
    of a sweep draws from a statistically independent stream while
    remaining a pure function of (sweep seed, job identity).
    """
    sequence = np.random.SeedSequence(
        entropy=base_seed, spawn_key=(int(lineage_id, 16),)
    )
    return int(sequence.generate_state(1)[0])


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of a sweep: train + evaluate a single fold."""

    approach: str
    #: dataset spec: either generator knobs (``family``/``size``/
    #: ``version``/``method``/``seed``) or ``{"path": ...}``.
    dataset: dict = field(default_factory=dict)
    fold: int = 1
    cv_seed: int = 0
    #: :class:`ApproachConfig` overrides (never ``seed`` — that is derived).
    config: dict = field(default_factory=dict)
    #: training budget in epochs (halving rungs shrink this).
    epochs: int = 10
    #: sweep bookkeeping: which candidate of which tuning round.
    candidate: str = ""
    stage: str = "final"  # "tune" (halving rung) or "final" (full CV)
    rung: int = -1
    hits_at: tuple = (1, 5, 10)
    base_seed: int = 0
    #: Distributed-trace context (sweep root), stamped by the sweep
    #: driver when telemetry is on.  Deliberately EXCLUDED from
    #: ``payload()`` and the lineage: trace ids change every run, and
    #: job identity (ids, seeds, ledger fingerprints, bit-identity
    #: comparisons) must not.
    trace_id: str = ""
    parent_span_id: int = 0

    def __post_init__(self):
        unknown = set(self.config) - _CONFIG_FIELDS
        if unknown:
            raise ValueError(
                f"unknown ApproachConfig fields in job config: "
                f"{sorted(unknown)}"
            )
        if "seed" in self.config:
            raise ValueError(
                "job configs must not pin 'seed'; per-job seeds are "
                "derived from SeedSequence keyed by the job id"
            )
        if "epochs" in self.config:
            raise ValueError(
                "set the epoch budget via JobSpec.epochs, not the config "
                "dict, so halving rungs stay one lineage"
            )

    # -- identity ------------------------------------------------------
    def _lineage_payload(self) -> dict:
        return {
            "approach": self.approach,
            "dataset": dict(self.dataset),
            "fold": self.fold,
            "cv_seed": self.cv_seed,
            "config": dict(self.config),
            "candidate": self.candidate,
            "hits_at": list(self.hits_at),
            "base_seed": self.base_seed,
        }

    def payload(self) -> dict:
        """The canonical plain-data form (job id / ledger / progress).

        Trace context (``trace_id`` / ``parent_span_id``) is not part
        of the payload — see the field comment above.
        """
        return {**self._lineage_payload(),
                "epochs": self.epochs, "stage": self.stage,
                "rung": self.rung}

    def with_trace(self, trace_id: str, parent_span_id: int) -> "JobSpec":
        """The same job carrying the sweep's trace context."""
        return replace(self, trace_id=trace_id,
                       parent_span_id=parent_span_id)

    @property
    def job_id(self) -> str:
        return fingerprint(self.payload())

    @property
    def lineage_id(self) -> str:
        """Identity across budgets: rungs of one candidate share this."""
        return fingerprint(self._lineage_payload())

    def seed(self) -> int:
        return derive_seed(self.base_seed, self.lineage_id)

    def at_budget(self, epochs: int, *, stage: str | None = None,
                  rung: int | None = None) -> "JobSpec":
        """The same lineage at a different epoch budget."""
        return replace(self, epochs=epochs,
                       stage=self.stage if stage is None else stage,
                       rung=self.rung if rung is None else rung)

    def build_config(self) -> ApproachConfig:
        return ApproachConfig(**self.config, epochs=self.epochs,
                              seed=self.seed())

    def describe(self) -> str:
        bits = [self.approach]
        if self.candidate:
            bits.append(self.candidate)
        bits.append(f"fold{self.fold}")
        if self.stage == "tune":
            bits.append(f"rung{self.rung}@{self.epochs}ep")
        return "/".join(bits)


def load_dataset(dataset: dict):
    """Materialize a dataset spec into a :class:`~repro.kg.KGPair`."""
    spec = dict(dataset)
    if "path" in spec:
        from ..kg import load_pair

        return load_pair(Path(spec["path"]))
    from ..datagen import benchmark_pair

    family = spec.pop("family")
    return benchmark_pair(family, **spec)


def execute_job(spec: JobSpec, *, pairs: dict | None = None,
                workdir: Path | str | None = None) -> dict:
    """Run one job to completion; returns a plain-data result payload.

    Runs in a worker process (or inline for ``jobs=1``): builds the
    dataset (or takes it from ``pairs``, the parent-loaded cache that
    forked workers inherit), trains the fold crash-safely when a
    ``workdir`` is given — rung promotions of the same lineage resume
    the checkpoint under ``workdir/ckpt/<lineage_id>`` — and evaluates
    validation Hits@1 (the tuner's score) plus the test metrics.
    """
    from .sweep import _dataset_name  # late: avoids import cycle

    from ..approaches import get_approach
    from ..pipeline.runner import FoldResult, fold_to_dict

    pair = (pairs or {}).get(dataset_key(spec.dataset))
    if pair is None:
        pair = load_dataset(spec.dataset)
    split = pair.five_fold_splits(seed=spec.cv_seed)[spec.fold - 1]
    approach = get_approach(spec.approach, spec.build_config())
    started = time.perf_counter()
    if workdir is not None:
        ckpt = Path(workdir) / "ckpt" / spec.lineage_id
        log = approach.fit(pair, split, checkpoint_dir=ckpt,
                           resume_from=True)
    else:
        log = approach.fit(pair, split)
    seconds = time.perf_counter() - started
    if log.status == "interrupted":
        raise RuntimeError(
            f"job {spec.job_id} ({spec.describe()}) was interrupted "
            f"mid-training; rerun the sweep to resume"
        )
    metrics = approach.evaluate(split.test, hits_at=tuple(spec.hits_at))
    if split.valid:
        score = approach.evaluate(split.valid, hits_at=(1,)).hits_at(1)
    else:  # degenerate toy split: fall back to the test metric
        score = metrics.hits_at(1)
    fold = FoldResult(metrics=metrics, log=log, seconds=seconds,
                      approach=None)
    return {
        "job_id": spec.job_id,
        "approach": spec.approach,
        "dataset": _dataset_name(spec.dataset, pair),
        "fold": spec.fold,
        "candidate": spec.candidate,
        "stage": spec.stage,
        "rung": spec.rung,
        "epochs": spec.epochs,
        "seed": spec.seed(),
        "score": float(score),
        # "diverged" flows to the dashboard via the done job_event; a
        # diverged job still returns a result (the best snapshot was
        # restored) and halving prunes it naturally through its score
        "status": log.status,
        "fold_result": fold_to_dict(fold),
    }


#: JobResult is a documented alias: the plain dict ``execute_job``
#: returns (see its docstring for the schema).
JobResult = dict
