"""Sweep driver: spec -> jobs -> scheduler -> tables.

A *sweep spec* (TOML or JSON) declares datasets, approaches, optional
per-approach candidate grids and the fold protocol::

    [sweep]
    name = "smoke"
    n_folds = 2
    seed = 0
    epochs = 6            # default full budget per approach

    [halving]
    min_epochs = 2
    eta = 2

    [[datasets]]
    family = "EN-FR"
    size = 150
    method = "direct"

    [[approaches]]
    name = "MTransE"
    config = { dim = 16, lr = 0.05, valid_every = 2 }
    grid = { lr = [0.02, 0.05, 0.2, 1.0] }

:func:`run_sweep` turns that into two phases:

1. **Tuning** — for every (approach, dataset) group with more than one
   grid candidate, successive-halving rungs on a single tuning fold
   cull the grid down to one winner (scored on validation Hits@1,
   never test).  Rung promotions resume the candidate's training
   checkpoint, so a survivor pays each epoch once.
2. **Final cross-validation** — every winner (and every grid-less
   approach) trains all ``n_folds`` folds at the full budget.

Both phases run through :func:`repro.orchestrate.scheduler.run_jobs`,
so they parallelize over worker processes, stream into the sweep
progress file (crash-safe resume) and append one ledger record per
completed job tagged with the sweep id.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..fingerprint import config_fingerprint
from ..obs import get_registry, record_run, span
from ..pipeline.runner import CVResult, fold_from_dict
from .halving import HalvingSchedule
from .jobs import JobSpec, dataset_key, execute_job, load_dataset
from .progress import SweepProgress
from .scheduler import ScheduleStats, run_jobs
from .telemetry import SweepTelemetry

__all__ = ["SweepSpec", "SweepResult", "load_spec", "parse_spec",
           "run_sweep", "expand_grid", "payload_metrics"]


def payload_metrics(payload: dict) -> dict:
    """The deterministic portion of a job payload.

    Drops wall-clock and memory fields (``seconds``, ``train_seconds``,
    ``epoch_seconds``, ``peak_rss_bytes``) so two runs of the same job —
    serial vs parallel, clean vs crash-resumed — can be compared for
    bit-identity.  Everything that remains (metrics, losses, validation
    history, seeds, epochs) must match exactly.
    """
    payload = json.loads(json.dumps(payload))  # deep copy, plain data
    # status differs between clean ("completed") and crash-resumed
    # ("resumed") executions of the same job; the metrics must not
    payload.pop("status", None)
    fold = payload.get("fold_result", {})
    for key in ("seconds", "train_seconds", "peak_rss_bytes"):
        fold.pop(key, None)
    log = fold.get("log") or {}
    log.pop("epoch_seconds", None)
    return payload


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------
@dataclass
class SweepSpec:
    """Parsed, validated sweep specification."""

    name: str
    datasets: list[dict]
    approaches: list[dict]  # {"name", "config", "grid", "epochs"}
    n_folds: int = 2
    seed: int = 0
    epochs: int = 10
    hits_at: tuple = (1, 5, 10)
    min_epochs: int = 1
    eta: int = 2
    tune_fold: int = 1

    def payload(self) -> dict:
        """Canonical plain-data form (fingerprint / progress / ledger)."""
        return {
            "name": self.name,
            "datasets": [dict(d) for d in self.datasets],
            "approaches": [
                {"name": a["name"], "config": dict(a["config"]),
                 "grid": {k: list(v) for k, v in a["grid"].items()},
                 "epochs": a["epochs"]}
                for a in self.approaches
            ],
            "n_folds": self.n_folds,
            "seed": self.seed,
            "hits_at": list(self.hits_at),
            "halving": {"min_epochs": self.min_epochs, "eta": self.eta,
                        "tune_fold": self.tune_fold},
        }

    @property
    def sweep_id(self) -> str:
        """Stable sweep identity: spec name + config fingerprint.

        Re-running (or resuming) the same spec yields the same id, so
        ledger baselines built "within this sweep" survive restarts.
        """
        digest = config_fingerprint(self.payload(), include_env=False)
        return f"{self.name}@{digest[:8]}"


def parse_spec(data: dict, *, name: str = "sweep") -> SweepSpec:
    """Validate a raw spec mapping (parsed TOML/JSON) into a SweepSpec."""
    sweep = dict(data.get("sweep", {}))
    halving = dict(data.get("halving", {}))
    datasets = [dict(d) for d in data.get("datasets", [])]
    if not datasets:
        raise ValueError("sweep spec needs at least one [[datasets]] entry")
    raw_approaches = data.get("approaches", [])
    if not raw_approaches:
        raise ValueError("sweep spec needs at least one [[approaches]] entry")
    default_epochs = int(sweep.get("epochs", 10))
    approaches = []
    for entry in raw_approaches:
        entry = dict(entry)
        config = dict(entry.get("config", {}))
        epochs = int(config.pop("epochs", entry.get("epochs",
                                                    default_epochs)))
        grid = {key: list(values)
                for key, values in dict(entry.get("grid", {})).items()}
        for key in grid:
            if key == "epochs" or key == "seed":
                raise ValueError(
                    f"grid may not sweep {key!r}: epochs is the halving "
                    f"budget and seeds are derived per job"
                )
        approaches.append({
            "name": str(entry["name"]), "config": config,
            "grid": grid, "epochs": epochs,
        })
    n_folds = int(sweep.get("n_folds", 2))
    if not 1 <= n_folds <= 5:
        raise ValueError("sweep.n_folds must be between 1 and 5")
    return SweepSpec(
        name=str(sweep.get("name", name)),
        datasets=datasets,
        approaches=approaches,
        n_folds=n_folds,
        seed=int(sweep.get("seed", 0)),
        epochs=default_epochs,
        hits_at=tuple(int(k) for k in sweep.get("hits_at", (1, 5, 10))),
        min_epochs=int(halving.get("min_epochs", 1)),
        eta=int(halving.get("eta", 2)),
        tune_fold=int(halving.get("tune_fold", 1)),
    )


def load_spec(path: Path | str) -> SweepSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix.lower() not in (".toml", ".json"):
        raise ValueError(
            f"unsupported sweep spec format {path.suffix!r} "
            f"(use .toml or .json)"
        )
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        import tomllib

        data = tomllib.loads(text)
    else:
        data = json.loads(text)
    return parse_spec(data, name=path.stem)


def expand_grid(grid: dict) -> list[tuple[str, dict]]:
    """Cartesian product of a grid into (candidate id, overrides) pairs.

    Candidate ids are canonical ``key=value`` strings sorted by key, so
    they are stable across runs and order survivor tie-breaking."""
    if not grid:
        return [("", {})]
    keys = sorted(grid)
    candidates = []
    for values in itertools.product(*(grid[key] for key in keys)):
        overrides = dict(zip(keys, values))
        cand_id = ",".join(f"{key}={overrides[key]!r}"
                           if isinstance(overrides[key], str)
                           else f"{key}={overrides[key]}"
                           for key in keys)
        candidates.append((cand_id, overrides))
    return candidates


def _dataset_name(dataset: dict, pair=None) -> str:
    """Human name of a dataset spec (the KGPair name when available)."""
    if pair is not None:
        return pair.name
    if "path" in dataset:
        return Path(str(dataset["path"])).name
    return str(dataset.get("family", "dataset"))


# ---------------------------------------------------------------------------
# the result
# ---------------------------------------------------------------------------
@dataclass
class SweepResult:
    """Everything one sweep run produced."""

    sweep_id: str
    spec: SweepSpec
    tables: dict = field(default_factory=dict)   # (approach, ds) -> CVResult
    winners: dict = field(default_factory=dict)  # (approach, ds) -> cand id
    pruned: dict = field(default_factory=dict)   # (approach, ds) -> [cand]
    job_payloads: dict = field(default_factory=dict)  # job_id -> payload
    stats: ScheduleStats = field(default_factory=ScheduleStats)
    notes: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def n_pruned(self) -> int:
        return sum(len(cands) for cands in self.pruned.values())

    def format(self) -> str:
        lines = [f"== sweep {self.sweep_id}: {self.stats.summary()}, "
                 f"{self.n_pruned} candidate(s) pruned, "
                 f"{self.seconds:.1f}s wall =="]
        lines += [f"   {note}" for note in self.notes]
        header = (f"{'approach':10s} {'dataset':18s} {'H@1':>11s} "
                  f"{'H@5':>11s} {'MRR':>11s} {'s/fold':>7s}  winner")
        lines += [header, "-" * len(header)]
        for (approach, dataset), cv in sorted(self.tables.items()):
            hits1 = cv.mean_std("hits@1")
            hits5 = cv.mean_std("hits@5")
            mrr = cv.mean_std("mrr")
            winner = self.winners.get((approach, dataset), "") or "-"
            lines.append(
                f"{approach:10s} {dataset:18s} "
                f"{hits1[0]:.3f}±{hits1[1]:.3f} "
                f"{hits5[0]:.3f}±{hits5[1]:.3f} "
                f"{mrr[0]:.3f}±{mrr[1]:.3f} {cv.train_seconds:7.1f}  "
                f"{winner}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    workdir: Path | str | None = None,
    record: bool = True,
    max_attempts: int = 3,
    telemetry: bool = True,
    heartbeat_interval: float = 1.0,
    stall_intervals: int = 5,
) -> SweepResult:
    """Run one sweep end to end; see the module docstring.

    ``workdir`` enables crash safety: sweep progress, training
    checkpoints and rung-resume lineages all live there, and re-running
    with the same workdir restores completed jobs instead of
    recomputing them.  ``record=False`` suppresses ledger records (the
    ledger is also a no-op unless ``REPRO_LEDGER_PATH`` is set).

    With a ``workdir`` (and ``telemetry=True``, the default) the sweep
    also runs the live-telemetry stack (docs/observability.md): a
    ``<workdir>/telemetry/`` directory carries the parent event bus,
    per-worker heartbeat files (sampled every ``heartbeat_interval``
    seconds; a worker silent for ``stall_intervals`` intervals is
    flagged stalled), and the stitched distributed Chrome trace —
    watch it live with ``repro obs-top <workdir>``.  Telemetry only
    observes: results remain bit-identical to a serial, untelemetered
    run.
    """
    started = time.perf_counter()
    registry = get_registry()
    result = SweepResult(sweep_id=spec.sweep_id, spec=spec)

    progress: SweepProgress | None = None
    restored: dict[str, dict] = {}
    if workdir is not None:
        workdir = Path(workdir)
        progress = SweepProgress(workdir, spec.payload())
        restored = progress.load()

    sweep_telemetry: SweepTelemetry | None = None
    if telemetry and workdir is not None:
        sweep_telemetry = SweepTelemetry(
            workdir, sweep_id=spec.sweep_id, jobs=jobs, registry=registry,
            heartbeat_interval=heartbeat_interval,
            stall_intervals=stall_intervals,
        )

    def on_complete(job_spec: JobSpec, payload: dict) -> None:
        if progress is not None:
            progress.record(job_spec.job_id, payload)
        if record:
            _record_job(spec, job_spec, payload)

    def schedule(batch: list[JobSpec]) -> dict[str, dict]:
        if sweep_telemetry is not None:
            batch = [job.with_trace(sweep_telemetry.trace_id,
                                    sweep_telemetry.root_span_id)
                     for job in batch]
        payloads, stats = run_jobs(
            batch, jobs=jobs, runner=execute_job,
            runner_kwargs={"pairs": pairs, "workdir": workdir},
            label=spec.sweep_id, registry=registry,
            on_complete=on_complete, already=restored,
            max_attempts=max_attempts, telemetry=sweep_telemetry,
        )
        result.stats.executed += stats.executed
        result.stats.restored += stats.restored
        result.stats.requeued += stats.requeued
        result.stats.failed.update(stats.failed)
        result.stats.worker_deaths += stats.worker_deaths
        if stats.failed:
            details = "; ".join(f"{job_id}: {error}"
                                for job_id, error in stats.failed.items())
            raise RuntimeError(f"sweep {spec.sweep_id} jobs failed: "
                              f"{details}")
        restored.update(payloads)  # later phases reuse earlier results
        result.job_payloads.update(payloads)
        return payloads

    with (sweep_telemetry if sweep_telemetry is not None else nullcontext()), \
            span("sweep", sweep_id=spec.sweep_id, jobs=jobs,
                 n_datasets=len(spec.datasets),
                 n_approaches=len(spec.approaches)):
        # Datasets are built once in the parent; forked workers inherit
        # them instead of regenerating per job.
        pairs = {dataset_key(ds): load_dataset(ds) for ds in spec.datasets}

        # -- phase 1: successive halving per (approach, dataset) grid --
        final_jobs: list[JobSpec] = []
        with span("sweep.tune", sweep_id=spec.sweep_id):
            for entry in spec.approaches:
                for ds in spec.datasets:
                    ds_name = _dataset_name(ds, pairs[dataset_key(ds)])
                    winner_cand, winner_overrides, pruned = _tune_group(
                        spec, entry, ds, schedule, registry)
                    result.winners[(entry["name"], ds_name)] = winner_cand
                    result.pruned[(entry["name"], ds_name)] = pruned
                    if pruned:
                        result.notes.append(
                            f"{entry['name']}/{ds_name}: kept "
                            f"{winner_cand or 'sole candidate'}, pruned "
                            f"{len(pruned)} candidate(s) "
                            f"({', '.join(pruned)})"
                        )
                    config = {**entry["config"], **winner_overrides}
                    final_jobs += [
                        JobSpec(
                            approach=entry["name"], dataset=dict(ds),
                            fold=fold, cv_seed=spec.seed, config=config,
                            epochs=entry["epochs"],
                            candidate=winner_cand, stage="final",
                            hits_at=spec.hits_at, base_seed=spec.seed,
                        )
                        for fold in range(1, spec.n_folds + 1)
                    ]

        # -- phase 2: full cross-validation of the winners -------------
        with span("sweep.final", sweep_id=spec.sweep_id,
                  n_jobs=len(final_jobs)):
            payloads = schedule(final_jobs)

        for job in final_jobs:
            payload = payloads[job.job_id]
            key = (job.approach, payload["dataset"])
            cv = result.tables.get(key)
            if cv is None:
                cv = CVResult(name=job.approach, dataset=payload["dataset"])
                result.tables[key] = cv
            cv.folds.append(fold_from_dict(payload["fold_result"]))

    result.seconds = time.perf_counter() - started
    if record:
        scalars = {
            "jobs_executed": len(result.stats.executed),
            "jobs_restored": len(result.stats.restored),
            "jobs_requeued": len(result.stats.requeued),
            "jobs_failed": len(result.stats.failed),
            "candidates_pruned": result.n_pruned,
            "sweep_seconds": result.seconds,
        }
        if sweep_telemetry is not None:
            # per-worker peak RSS, heartbeat coverage, stall count —
            # obs-gate can guard parallel-efficiency regressions on these
            scalars.update(sweep_telemetry.scalars())
        record_run(
            "sweep", f"{spec.name}/summary",
            config={**spec.payload(), "sweep_id": spec.sweep_id},
            fingerprint=config_fingerprint(spec.payload()),
            scalars=scalars,
            registry=registry,
        )
    return result


def _tune_group(spec, entry, ds, schedule, registry):
    """Halving rungs for one (approach, dataset) group.

    Returns ``(winner candidate id, winner overrides, pruned ids)``.
    """
    candidates = expand_grid(entry["grid"])
    if len(candidates) == 1:
        return candidates[0][0], candidates[0][1], []
    overrides_by_id = dict(candidates)
    plan = HalvingSchedule(
        n_candidates=len(candidates), max_epochs=entry["epochs"],
        min_epochs=spec.min_epochs, eta=spec.eta,
    )
    ds_name = _dataset_name(ds)

    alive = [cand_id for cand_id, _ in candidates]
    pruned: list[str] = []
    for rung, budget in enumerate(plan.budgets()):
        if len(alive) == 1:
            break
        batch = [
            JobSpec(
                approach=entry["name"], dataset=dict(ds),
                fold=spec.tune_fold, cv_seed=spec.seed,
                config={**entry["config"], **overrides_by_id[cand_id]},
                epochs=budget, candidate=cand_id, stage="tune",
                rung=rung, hits_at=spec.hits_at, base_seed=spec.seed,
            )
            for cand_id in alive
        ]
        payloads = schedule(batch)
        scores = {job.candidate: payloads[job.job_id]["score"]
                  for job in batch}
        keep = plan.keep_after(rung, len(alive))
        from .halving import select_survivors

        survivors = select_survivors(scores, keep)
        dropped = [cand_id for cand_id in alive
                   if cand_id not in survivors]
        for _ in dropped:
            registry.counter("sweep.jobs_pruned",
                             sweep=spec.sweep_id).inc()
        pruned += dropped
        alive = survivors
    winner = alive[0]
    return winner, overrides_by_id[winner], pruned


def _record_job(spec: SweepSpec, job: JobSpec, payload: dict) -> None:
    """One ledger record per completed job, tagged with the sweep id.

    The record's *fingerprint* excludes the sweep id (job identity is
    comparable across sweeps of the same spec), while the *config*
    carries it so ``obs-ledger --sweep`` / ``obs-gate --sweep`` can
    scope queries to this sweep only.
    """
    fold = payload["fold_result"]
    scalars = {
        "score": payload["score"],
        "train_seconds": fold["train_seconds"],
        "seconds": fold["seconds"],
        "epochs": payload["epochs"],
        "mrr": fold["metrics"]["mrr"],
    }
    for k, hits in fold["metrics"]["hits"].items():
        scalars[f"hits_at_{k}"] = hits
    name = f"{spec.name}/{job.approach}/{payload['dataset']}/fold{job.fold}"
    if job.stage == "tune":
        name += f"@rung{job.rung}"
    record_run(
        "sweep", name,
        config={**job.payload(), "sweep_id": spec.sweep_id},
        fingerprint=config_fingerprint(job.payload()),
        scalars=scalars,
    )
