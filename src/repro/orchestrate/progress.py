"""The atomic sweep-progress file: crash-safe sweep resume.

Mirrors ``cv_progress.json`` (PR 5) one level up: every completed job's
payload is rewritten atomically to ``sweep_progress.json`` in the sweep
workdir, keyed by job id, under the sweep's config fingerprint — the
same :func:`repro.fingerprint.config_fingerprint` the ledger and the CV
runner use.  Re-running a sweep with the same workdir restores the
completed jobs and only schedules the remainder; a progress file
written by a *different* sweep spec refuses to load instead of merging
incomparable jobs.

Writes go through :func:`repro.faults.atomic_write_json` with the
``sweep.progress`` fault site, so the crash-replay suite can tear them.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..faults import atomic_write_json, fault_point
from ..fingerprint import config_fingerprint

__all__ = ["SweepProgress", "PROGRESS_FILE"]

PROGRESS_FILE = "sweep_progress.json"


class SweepProgress:
    """Completed-job store for one sweep workdir."""

    def __init__(self, workdir: Path | str, sweep_config: dict):
        self.path = Path(workdir) / PROGRESS_FILE
        self.config = dict(sweep_config)
        self.fingerprint = config_fingerprint(self.config,
                                              include_env=False)
        self.jobs: dict[str, dict] = {}

    def load(self) -> dict[str, dict]:
        """Restore completed jobs; ``{}`` when starting fresh.

        Raises on a fingerprint mismatch or an unreadable file — both
        mean the workdir belongs to some other experiment.
        """
        if not self.path.is_file():
            return {}
        fault_point("sweep.progress", path=self.path)
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise RuntimeError(
                f"unreadable sweep progress file {self.path}: {error}"
            ) from error
        stored = data.get("fingerprint")
        if stored != self.fingerprint:
            raise ValueError(
                f"sweep progress at {self.path} was written for "
                f"{data.get('sweep', {})}, not {self.config}; use a "
                f"fresh --workdir"
            )
        self.jobs = dict(data.get("jobs", {}))
        return dict(self.jobs)

    def record(self, job_id: str, payload: dict) -> None:
        """Add one completed job and atomically rewrite the file."""
        self.jobs[job_id] = payload
        atomic_write_json(self.path, {
            "schema": 1,
            "sweep": self.config,
            "fingerprint": self.fingerprint,
            "jobs": self.jobs,
        }, site="sweep.progress")
