"""Process-pool scheduler: fan jobs out, stream results back, survive
worker crashes.

The scheduler is deliberately simple and deliberately paranoid:

* **Parent-side assignment.**  Each worker has a private task queue and
  the parent records ``assigned[pid] = spec`` *before* putting the spec
  on it, so there is no window in which a job has left the parent but
  is not attributed to a worker.  A worker that dies (SIGKILL, OOM,
  ``os._exit``) therefore always leaves an identifiable torn job, which
  is requeued to a fresh worker — up to ``max_attempts`` times, after
  which it is reported as failed instead of looping forever on a
  deterministic crash.
* **Plain-data results.**  Workers return JSON-friendly payloads plus a
  raw :class:`~repro.obs.registry.MetricsRegistry` snapshot; the parent
  folds the snapshot in via ``merge_snapshot`` so per-worker counters
  and histograms aggregate exactly as PR 3 designed.
* **Determinism by construction.**  The scheduler never influences job
  results: every job seeds its own RNG from its identity (see
  :mod:`repro.orchestrate.jobs`), so ``jobs=4`` is bit-identical to
  ``jobs=1`` no matter how the pool interleaves.

``fault_point("sweep.job")`` fires in the worker just before each job
runs — the crash-replay suite arms it (or any training-side site such
as ``epoch.end``) with ``mode=kill`` to prove the requeue path.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import sys
from collections import deque
from dataclasses import dataclass, field

from ..faults import fault_point
from ..obs import MetricsRegistry, get_registry, set_registry, span
from ..obs.registry import label_snapshot

__all__ = ["ScheduleStats", "run_jobs"]

# How long the parent waits on the result queue before checking worker
# liveness; purely a responsiveness knob, never a correctness one.
_POLL_SECONDS = 0.1


@dataclass
class ScheduleStats:
    """What the scheduler did, for logs, metrics and tests."""

    executed: list[str] = field(default_factory=list)
    restored: list[str] = field(default_factory=list)
    requeued: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    worker_deaths: int = 0

    def summary(self) -> str:
        return (f"{len(self.executed)} executed, {len(self.restored)} "
                f"restored, {len(self.requeued)} requeued, "
                f"{len(self.failed)} failed")


def _job_attrs(spec) -> dict:
    """Attributes of the per-job root span (tolerant of bare specs)."""
    attrs = {"job_id": spec.job_id}
    describe = getattr(spec, "describe", None)
    if callable(describe):
        attrs["job"] = describe()
    return attrs


def _worker_main(task_q, result_q, runner, runner_kwargs,
                 telemetry_cfg=None) -> None:
    """Worker loop: take a spec, run it, ship the payload + metrics.

    With ``telemetry_cfg`` (a :class:`~repro.orchestrate.telemetry.
    WorkerTelemetryConfig`) the worker joins the sweep's distributed
    trace — a fresh tracer carrying the sweep's ``trace_id`` wraps each
    job in a ``job`` span — and runs the heartbeat thread that appends
    to this worker's JSONL bus.  Telemetry only observes; the job
    computation (seeds, scheduling, payloads) is untouched, preserving
    jobs=N ≡ jobs=1 bit-identity.
    """
    telemetry = None
    if telemetry_cfg is not None:
        from .telemetry import install_worker_telemetry

        telemetry = install_worker_telemetry(telemetry_cfg, task_q=task_q)
    while True:
        spec = task_q.get()
        if spec is None:
            break
        # The crash-injection site: mode=kill here simulates a worker
        # dying the instant it picks up a job.
        fault_point("sweep.job")
        if telemetry is not None:
            telemetry.job_started(spec.job_id)
        set_registry(MetricsRegistry())
        ok = False
        try:
            with span("job", **_job_attrs(spec)):
                payload = runner(spec, **runner_kwargs)
            snapshot = get_registry().snapshot(include_raw=True)
            result_q.put(("done", spec.job_id, payload, snapshot))
            ok = True
        except Exception as error:  # noqa: BLE001 — forwarded to parent
            result_q.put(("error", spec.job_id,
                          f"{type(error).__name__}: {error}"))
        if telemetry is not None:
            telemetry.job_finished(spec.job_id, ok)
    if telemetry is not None:
        telemetry.stop()


def run_jobs(
    specs,
    *,
    jobs: int = 1,
    runner,
    runner_kwargs: dict | None = None,
    label: str = "sweep",
    registry=None,
    on_complete=None,
    already: dict | None = None,
    max_attempts: int = 3,
    telemetry=None,
) -> tuple[dict, ScheduleStats]:
    """Run every spec and return ``(results, stats)``.

    ``specs`` is any sequence of objects with a ``job_id`` attribute
    (deduplicated, first occurrence wins); ``runner(spec,
    **runner_kwargs)`` must be a top-level callable returning a
    picklable payload.  ``already`` maps job ids to payloads restored
    from a progress file — those jobs are not re-run.  ``on_complete``
    fires in the parent for each newly executed job, in completion
    order; sweep drivers use it to persist progress and append ledger
    records as results stream in.

    ``jobs=1`` executes inline (the bit-exact reference path);
    ``jobs>1`` forks that many workers.  Worker crashes are survived by
    requeueing the torn job (see module docstring).

    ``telemetry`` (a :class:`~repro.orchestrate.telemetry.
    SweepTelemetry`) enables the live observability path: job-state
    transitions stream to the parent event bus, each worker is spawned
    with the sweep's trace context and a heartbeat loop, the drain loop
    polls for stalled workers, and merged worker snapshots gain
    ``worker="<idx>"`` labels so per-worker series survive the merge.
    """
    registry = registry if registry is not None else get_registry()
    runner_kwargs = runner_kwargs or {}
    seen: dict[str, object] = {}
    for spec in specs:
        seen.setdefault(spec.job_id, spec)
    results: dict[str, dict] = {}
    stats = ScheduleStats()
    pending: deque = deque()
    for job_id, spec in seen.items():
        if already and job_id in already:
            results[job_id] = already[job_id]
            stats.restored.append(job_id)
        else:
            pending.append(spec)
    counters = {
        outcome: registry.counter(f"sweep.jobs_{outcome}", sweep=label)
        for outcome in ("completed", "failed", "requeued")
    }
    if telemetry is not None:
        for spec in pending:
            telemetry.job_event(spec, "enqueued")
        for job_id in stats.restored:
            telemetry.job_event(seen[job_id], "restored")

    def complete(spec, payload, snapshot=None, worker=None) -> None:
        results[spec.job_id] = payload
        stats.executed.append(spec.job_id)
        counters["completed"].inc()
        if worker is not None:
            # per-worker series survive the merge (Prometheus export
            # exposes `sweep.jobs_completed{..., worker="<idx>"}`)
            registry.counter("sweep.jobs_completed", sweep=label,
                             worker=str(worker)).inc()
            if snapshot is not None:
                snapshot = label_snapshot(snapshot, worker=str(worker))
        if snapshot is not None:
            registry.merge_snapshot(snapshot)
        if telemetry is not None:
            telemetry.job_event(spec, "done", worker=worker,
                                payload=payload if isinstance(payload, dict)
                                else None)
        if on_complete is not None:
            on_complete(spec, payload)

    def fail(spec, message, worker=None) -> None:
        stats.failed[spec.job_id] = message
        counters["failed"].inc()
        if worker is not None:
            registry.counter("sweep.jobs_failed", sweep=label,
                             worker=str(worker)).inc()
        if telemetry is not None:
            telemetry.job_event(spec, "failed", worker=worker)

    with span("sweep.schedule", label=label, jobs=jobs,
              n_jobs=len(pending), n_restored=len(stats.restored)):
        if jobs <= 1 or len(pending) <= 1:
            for spec in pending:
                fault_point("sweep.job")
                if telemetry is not None:
                    telemetry.job_event(spec, "running")
                try:
                    with span("job", **_job_attrs(spec)):
                        payload = runner(spec, **runner_kwargs)
                    complete(spec, payload)
                except Exception as error:  # noqa: BLE001
                    fail(spec, f"{type(error).__name__}: {error}")
            return results, stats
        _run_pool(pending, jobs, runner, runner_kwargs, complete, fail,
                  stats, counters, max_attempts, telemetry)
    return results, stats


def _run_pool(pending, jobs, runner, runner_kwargs, complete, fail,
              stats, counters, max_attempts, telemetry=None) -> None:
    """The parallel path: a fork-based pool with crash requeueing."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" not in methods:  # pragma: no cover — non-POSIX fallback
        print("warning: fork start method unavailable; running jobs "
              "serially", file=sys.stderr)
        for spec in list(pending):
            try:
                complete(spec, runner(spec, **runner_kwargs))
            except Exception as error:  # noqa: BLE001
                fail(spec, f"{type(error).__name__}: {error}")
        return
    ctx = multiprocessing.get_context("fork")
    result_q = ctx.Queue()
    specs_by_id = {spec.job_id: spec for spec in pending}
    attempts = {job_id: 0 for job_id in specs_by_id}
    outstanding = set(specs_by_id)

    workers: dict[int, tuple] = {}  # pid -> (process, task_q)
    assigned: dict[int, str | None] = {}  # pid -> in-flight job id
    completed_by: dict[int, int] = {}  # pid -> jobs finished by worker
    worker_idx: dict[int, int] = {}  # pid -> stable worker index
    idx_counter = itertools.count()

    def spawn() -> None:
        # telemetry owns index allocation so indices stay unique across
        # every pool (rung batches, final CV, crash replacements) of
        # one sweep; the local counter covers the untelemetered case
        idx = (telemetry.allocate_worker() if telemetry is not None
               else next(idx_counter))
        task_q = ctx.Queue()
        telemetry_cfg = (telemetry.worker_config(idx)
                         if telemetry is not None else None)
        process = ctx.Process(
            target=_worker_main,
            args=(task_q, result_q, runner, runner_kwargs, telemetry_cfg),
            daemon=True,
        )
        process.start()
        workers[process.pid] = (process, task_q)
        assigned[process.pid] = None
        completed_by[process.pid] = 0
        worker_idx[process.pid] = idx
        if telemetry is not None:
            telemetry.worker_spawned(idx, process.pid)

    def dispatch() -> None:
        """Hand pending jobs to idle workers (assignment before send)."""
        for pid, (process, task_q) in workers.items():
            if not pending:
                break
            if assigned[pid] is None and process.is_alive():
                spec = pending.popleft()
                attempts[spec.job_id] += 1
                assigned[pid] = spec.job_id
                task_q.put(spec)
                if telemetry is not None:
                    telemetry.job_event(spec, "running",
                                        worker=worker_idx[pid])

    def requeue_or_fail(job_id: str, reason: str, *,
                        charge: bool = True) -> None:
        """Put a torn/errored job back, or give up after ``max_attempts``.

        ``charge=False`` requeues without counting an attempt: used when
        a *veteran* worker (one that already completed jobs since it was
        forked) dies, which proves the pool made progress and therefore
        cannot loop forever.  A poison job — one that deterministically
        kills any worker that runs it — always dies on the fresh
        replacement worker too, so it still accumulates charged
        attempts and fails out.
        """
        if job_id not in outstanding:
            return  # its result arrived before the worker died
        if not charge:
            attempts[job_id] -= 1  # undo the dispatch-time increment
        if attempts[job_id] >= max_attempts:
            fail(specs_by_id[job_id], reason)
            outstanding.discard(job_id)
            return
        stats.requeued.append(job_id)
        counters["requeued"].inc()
        if telemetry is not None:
            telemetry.job_event(specs_by_id[job_id], "requeued")
        pending.appendleft(specs_by_id[job_id])

    for _ in range(min(jobs, len(pending))):
        spawn()
    dispatch()

    try:
        while outstanding:
            # Drain everything already queued before judging liveness,
            # so a worker that reported its result and *then* died is
            # never treated as having torn the job.
            drained = True
            try:
                message = result_q.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                drained = False
            while True:
                if drained:
                    kind, job_id, *rest = message
                    source = None
                    for pid, inflight in assigned.items():
                        if inflight == job_id:
                            assigned[pid] = None
                            source = worker_idx.get(pid)
                            if kind == "done":
                                completed_by[pid] += 1
                    if job_id in outstanding:
                        if kind == "done":
                            payload, snapshot = rest
                            complete(specs_by_id[job_id], payload, snapshot,
                                     worker=source)
                            outstanding.discard(job_id)
                        else:  # "error": retry, then fail
                            requeue_or_fail(job_id, rest[0])
                try:
                    message = result_q.get_nowait()
                    drained = True
                except queue_module.Empty:
                    break

            if telemetry is not None:
                # Tail worker heartbeat buses: updates per-worker gauges
                # and flags stalled workers (counter + warning + event).
                telemetry.poll()
                if getattr(telemetry, "kill_stalled", False):
                    # Opt-in escalation: a stalled-but-alive worker is
                    # terminated so its torn job feeds the normal
                    # death-requeue machinery below.
                    for pid in list(workers):
                        if worker_idx.get(pid) in telemetry.stalled_workers:
                            process, _ = workers[pid]
                            if process.is_alive():
                                process.terminate()

            for pid in list(workers):
                process, task_q = workers[pid]
                if process.is_alive():
                    continue
                process.join()
                stats.worker_deaths += 1
                torn = assigned.pop(pid, None)
                was_fresh = completed_by.pop(pid, 0) == 0
                del workers[pid]
                if telemetry is not None:
                    telemetry.worker_died(worker_idx.get(pid, -1), pid,
                                          process.exitcode)
                if torn is not None:
                    requeue_or_fail(
                        torn,
                        f"worker {pid} died (exit code "
                        f"{process.exitcode}) while running the job",
                        charge=was_fresh,
                    )
                task_q.close()
            needed = min(jobs, len(pending) + sum(
                1 for inflight in assigned.values() if inflight is not None))
            while outstanding and len(workers) < max(1, needed):
                spawn()
            dispatch()
    finally:
        for pid, (process, task_q) in workers.items():
            if process.is_alive():
                try:
                    task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for process, task_q in workers.values():
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover — stuck worker
                process.terminate()
                process.join(timeout=5)
        # Cancel the feeder threads so interpreter shutdown never blocks
        # on a queue the (now dead) workers will never drain.
        result_q.cancel_join_thread()
        for _, task_q in workers.values():
            task_q.cancel_join_thread()
