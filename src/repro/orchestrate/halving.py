"""Budget-aware tuning: successive halving on validation Hits@1.

Berrendorf et al. ("A Critical Assessment of State-of-the-Art in Entity
Alignment", PAPERS.md) show that comparing approaches fairly requires
sweeping hyperparameters per approach — and that is exactly what makes
table regeneration quadratically expensive.  Successive halving (the
inner loop of Hyperband) spends the budget where it matters: every
candidate gets a short run at the first *rung*, only the top ``1/eta``
fraction is promoted to the next rung with ``eta``× the epochs, and so
on until one winner per (approach, dataset) group remains.  A bad
candidate costs ``min_epochs`` of training instead of ``max_epochs`` —
with the default ``eta=2`` at least half the grid is pruned at the
first rung, well before anyone reaches the full budget.

Candidates are scored on validation Hits@1 (never test — the tuner
must not see test pairs); ties break lexicographically on candidate id
so promotion is deterministic.  The rung/promotion logic here is pure —
the sweep driver (:mod:`repro.orchestrate.sweep`) turns rungs into
:class:`~repro.orchestrate.jobs.JobSpec` batches, and checkpoint
lineages make each promotion *resume* training rather than restart it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HalvingSchedule", "rung_budgets", "select_survivors"]


def rung_budgets(min_epochs: int, max_epochs: int, eta: int = 2) -> list[int]:
    """The tuning-rung epoch budgets: ``min, min*eta, ... < max``.

    The full ``max_epochs`` budget is *not* a tuning rung — only the
    winner ever trains that long (in the final cross-validation phase),
    which is what "pruned before full budget" means.
    """
    if min_epochs < 1:
        raise ValueError("min_epochs must be >= 1")
    if eta < 2:
        raise ValueError("eta must be >= 2")
    if min_epochs >= max_epochs:
        return [max(1, max_epochs // eta)]
    budgets = []
    budget = min_epochs
    while budget < max_epochs:
        budgets.append(budget)
        budget *= eta
    return budgets


def select_survivors(scores: dict[str, float], keep: int) -> list[str]:
    """The top-``keep`` candidate ids by score, deterministically.

    Sorts by (score desc, candidate id asc): equal scores promote the
    lexicographically-first candidates, so reruns and worker ordering
    can never change who survives.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [candidate for candidate, _ in ranked[:keep]]


@dataclass(frozen=True)
class HalvingSchedule:
    """Successive-halving plan for one candidate grid."""

    n_candidates: int
    max_epochs: int
    min_epochs: int = 1
    eta: int = 2

    def budgets(self) -> list[int]:
        return rung_budgets(self.min_epochs, self.max_epochs, self.eta)

    def keep_after(self, rung: int, alive: int) -> int:
        """Survivor count after ``rung``: the top ``1/eta`` fraction,
        always at least one, and exactly one after the last rung."""
        budgets = self.budgets()
        if rung >= len(budgets) - 1:
            return 1
        return max(1, alive // self.eta)

    def describe(self) -> str:
        budgets = self.budgets()
        steps = []
        alive = self.n_candidates
        for rung, budget in enumerate(budgets):
            steps.append(f"rung{rung}: {alive} cand x {budget}ep")
            alive = self.keep_after(rung, alive)
        return " -> ".join(steps + [f"winner x {self.max_epochs}ep (CV)"])
