"""repro.orchestrate — parallel experiment orchestration.

The subsystem that turns "regenerate the paper tables" from a serial
afternoon into a budgeted, crash-safe, parallel sweep:

* :mod:`~repro.orchestrate.jobs` — the job model: one (approach config,
  dataset, fold) unit with a deterministic job id, checkpoint lineage
  and per-job :class:`numpy.random.SeedSequence`-derived seed.
* :mod:`~repro.orchestrate.scheduler` — a fork-based process pool that
  streams results back, merges worker metrics snapshots and requeues
  jobs torn by worker crashes.
* :mod:`~repro.orchestrate.halving` — successive-halving budgets and
  survivor selection on validation Hits@1.
* :mod:`~repro.orchestrate.progress` — the atomic sweep-progress file
  (resume a killed sweep; refuse mismatched specs by fingerprint).
* :mod:`~repro.orchestrate.sweep` — the driver: TOML/JSON sweep specs,
  grid expansion, the tune-then-cross-validate pipeline and ledger
  recording.  See ``docs/orchestration.md``.
* :mod:`~repro.orchestrate.telemetry` — distributed tracing + live
  telemetry for sweeps: per-worker heartbeat buses, stall detection and
  the stitched multi-process Chrome trace.  See
  ``docs/observability.md``.
"""

from .halving import HalvingSchedule, rung_budgets, select_survivors
from .jobs import (JobResult, JobSpec, dataset_key, derive_seed,
                   execute_job, load_dataset)
from .progress import PROGRESS_FILE, SweepProgress
from .scheduler import ScheduleStats, run_jobs
from .sweep import (SweepResult, SweepSpec, expand_grid, load_spec,
                    parse_spec, payload_metrics, run_sweep)
from .telemetry import (SweepTelemetry, WorkerTelemetry,
                        WorkerTelemetryConfig, install_worker_telemetry,
                        stitch_events)

__all__ = [
    "HalvingSchedule",
    "JobResult",
    "JobSpec",
    "PROGRESS_FILE",
    "ScheduleStats",
    "SweepProgress",
    "SweepResult",
    "SweepSpec",
    "SweepTelemetry",
    "WorkerTelemetry",
    "WorkerTelemetryConfig",
    "install_worker_telemetry",
    "stitch_events",
    "dataset_key",
    "derive_seed",
    "execute_job",
    "expand_grid",
    "load_dataset",
    "load_spec",
    "parse_spec",
    "payload_metrics",
    "rung_budgets",
    "run_jobs",
    "run_sweep",
    "select_survivors",
]
