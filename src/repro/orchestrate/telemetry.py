"""Sweep telemetry: distributed tracing + heartbeats across the pool.

The scheduler (:mod:`repro.orchestrate.scheduler`) is a fork-based
process pool; this module is what makes it observable *while it runs*
and traceable *after it ran*:

* The parent creates one :class:`SweepTelemetry` per sweep.  It owns
  the sweep's root ``trace_id``, writes ``meta.json`` and the
  ``parent.jsonl`` event bus (job-state transitions, worker lifecycle)
  under ``<workdir>/telemetry/``, and each drain-loop iteration
  :meth:`SweepTelemetry.poll`\\ s the per-worker heartbeat files to
  detect stalled workers (no heartbeat for ``stall_intervals``
  intervals → ``sweep.workers_stalled`` counter + warning + bus event)
  and keep per-worker gauges fresh.
* Each worker gets a :class:`WorkerTelemetryConfig` at spawn.  It
  installs a :class:`~repro.obs.trace.Tracer` joined to the sweep's
  ``trace_id`` (so worker spans stitch under the sweep root span), and
  a :class:`WorkerTelemetry` whose daemon thread appends heartbeats
  (current job, stage/epoch from the training loop's
  :func:`~repro.obs.live.report_progress` hook, steps/s, ``ru_maxrss``,
  task-queue depth) to ``worker_<idx>.jsonl``.  Span events flush to
  ``worker_<idx>.trace.jsonl`` after every job, stamped with the pid
  and a unix-epoch timestamp for cross-process alignment.
* :func:`stitch_events` merges the parent tracer's events with every
  worker trace file into one event list under a single ``trace_id`` —
  span ids are remapped to process-unique strings and worker root
  spans are re-parented under the sweep root span — which
  :meth:`SweepTelemetry.finalize` exports as a per-worker-row Chrome
  trace (``trace.json``) plus a ``summary.json`` of per-worker peak
  RSS, heartbeat coverage and stall counts for the sweep's ledger
  record.

Nothing here touches job *results*: telemetry files are written beside
the computation, seeds stay a pure function of job identity, and
``jobs=N`` remains bit-identical to serial with telemetry on (the
determinism test in ``tests/test_sweep_telemetry.py`` holds this).
"""

from __future__ import annotations

import itertools
import os
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..faults.atomic import atomic_write_json
from ..obs import get_registry
from ..obs.live import (
    TELEMETRY_DIR,
    ProgressSink,
    StallDetector,
    append_jsonl,
    open_bus,
    set_progress_sink,
    tail_jsonl,
)
from ..obs.trace import (
    Tracer,
    events_to_chrome,
    get_tracer,
    peak_rss_bytes,
    peak_rss_tree_bytes,
    set_tracer,
)

__all__ = [
    "WorkerTelemetryConfig",
    "WorkerTelemetry",
    "SweepTelemetry",
    "stitch_events",
    "install_worker_telemetry",
]


@dataclass(frozen=True)
class WorkerTelemetryConfig:
    """Everything a forked worker needs to join the sweep's telemetry.

    Plain data (picklable) so the scheduler can pass it through the
    spawn path; carries the trace context — ``(trace_id,
    root_span_id)`` — that parents the worker's spans under the sweep
    root when the trace is stitched.
    """

    directory: str
    worker: int
    sweep_id: str
    trace_id: str
    root_span_id: int
    heartbeat_interval: float = 1.0


class WorkerTelemetry:
    """Worker-side telemetry: heartbeat thread + span flushing.

    Runs inside the forked worker process.  The heartbeat thread is a
    daemon sampling the :func:`~repro.obs.live.report_progress` sink,
    ``peak_rss_bytes()`` and the current job every
    ``heartbeat_interval`` seconds — it only ever *reads* process state
    and *appends* to this worker's own file, so it cannot perturb the
    deterministic computation happening on the main thread.
    """

    def __init__(self, config: WorkerTelemetryConfig, tracer: Tracer,
                 task_q=None):
        self.config = config
        self.tracer = tracer
        self._task_q = task_q
        directory = Path(config.directory)
        self._bus = open_bus(directory / f"worker_{config.worker}.jsonl")
        self._trace_bus = open_bus(
            directory / f"worker_{config.worker}.trace.jsonl")
        self._flushed = 0
        self._job_id: str | None = None
        self._jobs_done = 0
        self._progress = ProgressSink()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_steps: tuple[float, float] | None = None  # (t, steps)
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        set_progress_sink(self._progress)
        self.heartbeat()  # first beat immediately: liveness from t=0
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self.config.worker}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.config.heartbeat_interval * 4)
        set_progress_sink(None)
        self.heartbeat(final=True)
        self.flush_spans()
        for handle in (self._bus, self._trace_bus):
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass

    def _run(self) -> None:
        interval = max(0.01, float(self.config.heartbeat_interval))
        while not self._stop.wait(interval):
            try:
                self.heartbeat()
            except (OSError, ValueError):  # pragma: no cover — bus gone
                return

    # -- events --------------------------------------------------------
    def job_started(self, job_id: str) -> None:
        self._job_id = job_id
        self._progress.update({"stage": "start", "epoch": None,
                               "epochs": None, "steps": None,
                               "hits1": None, "diverged": None})

    def job_finished(self, job_id: str, ok: bool) -> None:
        self._job_id = None
        self._jobs_done += 1
        self.flush_spans()
        self.heartbeat()

    def heartbeat(self, final: bool = False) -> None:
        """Append one heartbeat line (thread-safe, single flush)."""
        now = time.time()
        progress = self._progress.sample()
        steps = progress.get("steps")
        steps_per_s = 0.0
        if isinstance(steps, (int, float)):
            if self._last_steps is not None:
                t0, s0 = self._last_steps
                dt = now - t0
                if dt > 0 and steps >= s0:
                    steps_per_s = (steps - s0) / dt
            self._last_steps = (now, float(steps))
        queue_depth = 0
        if self._task_q is not None:
            try:
                queue_depth = self._task_q.qsize()
            except (NotImplementedError, OSError):  # pragma: no cover
                queue_depth = -1
        record = {
            "type": "heartbeat",
            "worker": self.config.worker,
            "pid": os.getpid(),
            "ts_unix": now,
            "job_id": self._job_id,
            "stage": progress.get("stage"),
            "epoch": progress.get("epoch"),
            "epochs": progress.get("epochs"),
            "steps_per_s": round(steps_per_s, 3),
            "rss_bytes": peak_rss_bytes(),
            "jobs_done": self._jobs_done,
            "queue_depth": queue_depth,
        }
        # quality payload (docs/observability.md): the in-fit
        # QualityMonitor reports probe Hits@1 and sentinel trips through
        # the same progress sink the epoch counters use
        hits1 = progress.get("hits1")
        if isinstance(hits1, (int, float)):
            record["hits1"] = round(float(hits1), 4)
        if progress.get("diverged"):
            record["diverged"] = True
        if final:
            record["final"] = True
        with self._lock:
            append_jsonl(self._bus, record)

    def flush_spans(self) -> None:
        """Append tracer events recorded since the last flush, stamped
        for cross-process stitching (pid, worker, unix timestamps)."""
        events = self.tracer.events
        pid = os.getpid()
        with self._lock:
            while self._flushed < len(events):
                event = dict(events[self._flushed])
                event["pid"] = pid
                event["worker"] = self.config.worker
                event["trace_id"] = self.config.trace_id
                if "ts" in event:
                    event["ts_unix"] = self.tracer.epoch_unix + event["ts"]
                append_jsonl(self._trace_bus, event)
                self._flushed += 1


def install_worker_telemetry(config: WorkerTelemetryConfig | None,
                             task_q=None) -> WorkerTelemetry | None:
    """Worker-process entry: install a sweep-joined tracer + telemetry.

    Called once at the top of the scheduler's worker loop.  Returns the
    started :class:`WorkerTelemetry` (or ``None`` when telemetry is
    off).  The tracer joins the parent's ``trace_id``; the fork may
    have inherited the parent's tracer object, which must not be reused
    (its events belong to the parent), so a fresh one is installed
    unconditionally.
    """
    if config is None:
        return None
    tracer = Tracer(trace_id=config.trace_id,
                    parent_span_id=config.root_span_id)
    set_tracer(tracer)
    telemetry = WorkerTelemetry(config, tracer, task_q=task_q)
    telemetry.start()
    return telemetry


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
class SweepTelemetry:
    """Parent-side sweep telemetry: event bus, stall watch, stitching.

    Use as a context manager around the sweep body::

        with SweepTelemetry(workdir, sweep_id=..., jobs=2) as telemetry:
            run_jobs(..., telemetry=telemetry)
        scalars = telemetry.scalars()   # for the sweep's ledger record

    Entering ensures a tracer (installing one if tracing was off), opens
    the sweep root span every worker span stitches under, and writes
    ``meta.json``; exiting closes the span, stitches ``trace.json`` and
    writes ``summary.json`` — both through the atomic writers, so a
    crash never leaves a torn document.
    """

    def __init__(self, workdir: Path | str, *, sweep_id: str,
                 jobs: int = 1, registry=None,
                 heartbeat_interval: float = 1.0, stall_intervals: int = 5,
                 kill_stalled: bool = False, clock=time.monotonic):
        self.directory = Path(workdir) / TELEMETRY_DIR
        self.sweep_id = sweep_id
        self.jobs = jobs
        self.registry = registry
        self.heartbeat_interval = float(heartbeat_interval)
        self.stall_intervals = int(stall_intervals)
        #: when True the scheduler terminates a stalled worker, turning
        #: the silent hang into a worker death the requeue machinery
        #: already handles; off by default (stalls only warn + count).
        self.kill_stalled = bool(kill_stalled)
        self._clock = clock
        self._detector = StallDetector(
            timeout=self.heartbeat_interval * self.stall_intervals,
            clock=clock,
        )
        self._bus = None
        self._own_tracer: Tracer | None = None
        self._previous_tracer: Tracer | None = None
        self._root_span = None
        self.trace_id: str | None = None
        self.root_span_id: int = 0
        self._offsets: dict[int, int] = {}       # worker idx -> bus offset
        self._pids: dict[int, int] = {}          # worker idx -> pid
        self._alive: set[int] = set()
        self._beats: dict[int, int] = {}         # worker idx -> heartbeats
        self._first_beat: dict[int, float] = {}  # worker idx -> first ts_unix
        self._last_beat: dict[int, float] = {}   # worker idx -> last ts_unix
        self._peak_rss: dict[int, int] = {}      # worker idx -> peak bytes
        self._stall_events = 0
        self._last_poll = 0.0
        self._finalized = False
        self.summary: dict = {}
        # Sweep-global worker indices: one sweep runs several scheduler
        # pools (halving rungs, then final CV), and every generation —
        # including crash replacements — must get its own index, bus
        # file and dashboard row.  A pool-local counter would reuse
        # index 0 each batch and let a later "spawned" overwrite an
        # earlier worker's "died" state.
        self._worker_counter = itertools.count()

    def allocate_worker(self) -> int:
        """The next sweep-unique worker index (scheduler spawn path)."""
        return next(self._worker_counter)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SweepTelemetry":
        if self.registry is None:
            self.registry = get_registry()
        tracer = get_tracer()
        if tracer is None:
            tracer = Tracer()
            self._own_tracer = tracer
            self._previous_tracer = set_tracer(tracer)
        self.tracer = tracer
        self._root_span = tracer.span("sweep.root", sweep_id=self.sweep_id,
                                      jobs=self.jobs)
        self._root_span.__enter__()
        self.trace_id = tracer.trace_id
        self.root_span_id = self._root_span.id
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.directory / "meta.json", {
            "schema": 1,
            "sweep_id": self.sweep_id,
            "trace_id": self.trace_id,
            "root_span_id": self.root_span_id,
            "parent_pid": os.getpid(),
            "started_unix": time.time(),
            "jobs": self.jobs,
            "heartbeat_interval": self.heartbeat_interval,
            "stall_intervals": self.stall_intervals,
        }, site="telemetry.meta")
        self._bus = open_bus(self.directory / "parent.jsonl")
        return self

    def __exit__(self, exc_type, exc, tb):
        self.finalize(error=exc_type.__name__ if exc_type else None)
        return False

    def _emit(self, record: dict) -> None:
        if self._bus is None:
            return
        record.setdefault("ts_unix", time.time())
        append_jsonl(self._bus, record)

    # -- scheduler hooks -----------------------------------------------
    def worker_config(self, worker: int) -> WorkerTelemetryConfig:
        return WorkerTelemetryConfig(
            directory=str(self.directory),
            worker=worker,
            sweep_id=self.sweep_id,
            trace_id=self.trace_id or "",
            root_span_id=self.root_span_id,
            heartbeat_interval=self.heartbeat_interval,
        )

    def worker_spawned(self, worker: int, pid: int) -> None:
        self._pids[worker] = pid
        self._alive.add(worker)
        self._detector.beat(worker)  # grace period from spawn
        self._emit({"type": "worker", "event": "spawned",
                    "worker": worker, "pid": pid})

    def worker_died(self, worker: int, pid: int,
                    exitcode: int | None = None) -> None:
        self._alive.discard(worker)
        self._detector.forget(worker)
        self._emit({"type": "worker", "event": "died", "worker": worker,
                    "pid": pid, "exitcode": exitcode})

    def job_event(self, spec, state: str, worker: int | None = None,
                  payload: dict | None = None) -> None:
        """Record a job-state transition on the parent bus.

        ``payload`` (the ``execute_job`` result, passed on "done")
        contributes the quality fields the dashboard shows: the job's
        validation score and a diverged flag when a sentinel aborted it.
        """
        record = {"type": "job_state", "job_id": spec.job_id, "state": state}
        if worker is not None:
            record["worker"] = worker
        if state == "enqueued":
            describe = getattr(spec, "describe", None)
            if callable(describe):
                record["describe"] = describe()
            record["stage"] = getattr(spec, "stage", "")
            record["rung"] = getattr(spec, "rung", -1)
        if isinstance(payload, dict):
            score = payload.get("score")
            if isinstance(score, (int, float)):
                record["score"] = round(float(score), 4)
            status = payload.get("status")
            if isinstance(status, str) and status not in ("", "completed"):
                record["status"] = status
        self._emit(record)

    def poll(self) -> None:
        """Tail worker heartbeat files; update gauges and stall state.

        Called from the scheduler drain loop (every ~0.1s); reads are
        incremental (byte offsets), so the steady-state cost is a stat
        plus whatever new lines arrived.
        """
        now = self._clock()
        if now - self._last_poll < min(0.05, self.heartbeat_interval):
            return
        self._last_poll = now
        for worker in list(self._alive) + [
                w for w in self._offsets if w not in self._alive]:
            path = self.directory / f"worker_{worker}.jsonl"
            offset = self._offsets.get(worker, 0)
            beats, new_offset, _ = tail_jsonl(path, offset)
            self._offsets[worker] = new_offset
            fresh = [b for b in beats if b.get("type") == "heartbeat"]
            if not fresh:
                continue
            if worker in self._alive:
                self._detector.beat(worker)
            last = fresh[-1]
            self._beats[worker] = self._beats.get(worker, 0) + len(fresh)
            for beat in fresh:
                ts = beat.get("ts_unix")
                if ts is None:
                    continue
                self._first_beat.setdefault(worker, ts)
                self._last_beat[worker] = ts
            rss = max(int(b.get("rss_bytes", 0)) for b in fresh)
            self._peak_rss[worker] = max(self._peak_rss.get(worker, 0), rss)
            if any(b.get("final") for b in fresh):
                # clean goodbye: the worker drained its queue and is
                # exiting.  Stop expecting heartbeats — one sweep runs
                # several pools, and a retired worker from an earlier
                # rung must not read as stalled during later ones; only
                # unexpected silence (a hang or a kill) is a stall.
                self._alive.discard(worker)
                self._detector.forget(worker)
                self._emit({"type": "worker", "event": "exited",
                            "worker": worker,
                            "pid": self._pids.get(worker)})
            labels = {"sweep": self.sweep_id, "worker": str(worker)}
            self.registry.gauge("sweep.worker_rss_bytes", **labels).set(
                int(last.get("rss_bytes", 0)))
            self.registry.gauge("sweep.worker_steps_per_s", **labels).set(
                float(last.get("steps_per_s", 0.0)))
            self.registry.counter("sweep.heartbeats", **labels).inc(
                len(fresh))
        newly_stalled, recovered = self._detector.check(now)
        for worker in newly_stalled:
            self._stall_events += 1
            self.registry.counter("sweep.workers_stalled",
                                  sweep=self.sweep_id).inc()
            self._emit({"type": "worker", "event": "stalled",
                        "worker": worker, "pid": self._pids.get(worker)})
            print(f"warning: sweep worker {worker} "
                  f"(pid {self._pids.get(worker)}) sent no heartbeat for "
                  f"{self._detector.timeout:.1f}s — stalled?",
                  file=sys.stderr)
        for worker in recovered:
            self._emit({"type": "worker", "event": "recovered",
                        "worker": worker, "pid": self._pids.get(worker)})

    @property
    def stalled_workers(self) -> set[int]:
        """Workers currently flagged as stalled (feeds requeue policy)."""
        return self._detector.stalled

    # -- finalization --------------------------------------------------
    def finalize(self, error: str | None = None) -> dict:
        """Final poll, stitch the distributed trace, write summaries."""
        if self._finalized:
            return self.summary
        self._finalized = True
        self._last_poll = 0.0  # force one last full read
        try:
            self.poll()
        except OSError:  # pragma: no cover
            pass
        self._emit({"type": "sweep", "event": "finished",
                    "error": error})
        if self._root_span is not None:
            self._root_span.__exit__(None, None, None)
        worker_files = sorted(self.directory.glob("worker_*.trace.jsonl"))
        events, process_names, skipped = stitch_events(
            self.tracer.events, os.getpid(), self.tracer.epoch_unix,
            self.root_span_id, self.trace_id or "", worker_files,
        )
        atomic_write_json(self.directory / "trace.json",
                          events_to_chrome(events,
                                           process_names=process_names),
                          site="telemetry.trace", indent=None)
        coverage = {}
        for worker, beats in sorted(self._beats.items()):
            first = self._first_beat.get(worker)
            last = self._last_beat.get(worker)
            expected = 1.0
            if first is not None and last is not None and last > first:
                expected = (last - first) / self.heartbeat_interval + 1.0
            coverage[str(worker)] = min(1.0, beats / expected)
        self.summary = {
            "schema": 1,
            "sweep_id": self.sweep_id,
            "trace_id": self.trace_id,
            "error": error,
            "workers": {
                str(worker): {
                    "pid": self._pids.get(worker),
                    "heartbeats": self._beats.get(worker, 0),
                    "peak_rss_bytes": self._peak_rss.get(worker, 0),
                    "heartbeat_coverage": coverage.get(str(worker), 0.0),
                }
                for worker in sorted(set(self._pids) | set(self._beats))
            },
            "workers_stalled": self._stall_events,
            "parent_peak_rss_bytes": peak_rss_tree_bytes(),
            "stitched_spans": sum(1 for e in events
                                  if e.get("type") == "span"),
            "skipped_lines": skipped,
        }
        atomic_write_json(self.directory / "summary.json", self.summary,
                          site="telemetry.summary")
        if self._bus is not None:
            try:
                self._bus.close()
            except OSError:  # pragma: no cover
                pass
            self._bus = None
        if self._own_tracer is not None:
            set_tracer(self._previous_tracer)
            self._own_tracer = None
        return self.summary

    def scalars(self) -> dict:
        """Flat telemetry scalars for the sweep's ledger record."""
        summary = self.summary or {}
        out = {
            "workers_stalled": float(summary.get("workers_stalled", 0)),
            "peak_rss_bytes": float(
                summary.get("parent_peak_rss_bytes", 0)),
        }
        workers = summary.get("workers", {})
        for worker, info in sorted(workers.items()):
            out[f"worker{worker}_peak_rss_bytes"] = float(
                info.get("peak_rss_bytes", 0))
            out[f"worker{worker}_heartbeat_coverage"] = float(
                info.get("heartbeat_coverage", 0.0))
        if workers:
            out["heartbeat_coverage_min"] = min(
                float(info.get("heartbeat_coverage", 0.0))
                for info in workers.values())
        return out


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------
def stitch_events(parent_events: list[dict], parent_pid: int,
                  parent_epoch_unix: float, root_span_id: int,
                  trace_id: str, worker_files) -> tuple[list, dict, int]:
    """Merge parent tracer events with per-worker trace files.

    Returns ``(events, process_names, skipped_lines)``.  Span ids are
    remapped to process-unique strings (``p<id>`` for the parent,
    ``w<worker>.<id>`` for workers) so they never collide; worker root
    spans — the per-job spans whose ``parent_id`` is ``None`` in the
    worker's local tree — are re-parented under the sweep root span.
    Worker timestamps are re-anchored onto the parent timeline via
    their unix-epoch stamps, so per-worker Chrome rows line up.
    """
    events: list[dict] = []
    process_names = {int(parent_pid): "sweep parent"}
    skipped = 0
    for event in parent_events:
        event = dict(event)
        if event.get("type") == "span":
            event["id"] = f"p{event['id']}"
            if event.get("parent_id") is not None:
                event["parent_id"] = f"p{event['parent_id']}"
        event["pid"] = int(parent_pid)
        event["trace_id"] = trace_id
        events.append(event)
    for path in worker_files:
        lines, _, torn = tail_jsonl(path)
        skipped += torn
        for event in lines:
            worker = event.get("worker", "?")
            pid = event.get("pid")
            if pid is not None:
                process_names.setdefault(int(pid), f"worker {worker}")
            if event.get("type") == "span":
                event["id"] = f"w{worker}.{event['id']}"
                if event.get("parent_id") is None:
                    event["parent_id"] = f"p{root_span_id}"
                else:
                    event["parent_id"] = f"w{worker}.{event['parent_id']}"
            if "ts_unix" in event:
                event["ts"] = max(0.0,
                                  event["ts_unix"] - parent_epoch_unix)
            event["trace_id"] = trace_id
            events.append(event)
    events.sort(key=lambda e: (e.get("ts", 0.0)))
    return events, process_names, skipped
