"""OpenEA reproduction: embedding-based entity alignment benchmarking.

Reproduces "A Benchmarking Study of Embedding-based Entity Alignment for
Knowledge Graphs" (Sun et al., VLDB 2020): the benchmark dataset
generator (IDS sampling), 12 alignment approaches, 11 KG embedding
models, conventional baselines (PARIS, LogMap-style) and the paper's
analysis toolkit -- in pure Python on numpy/scipy/networkx.

Quickstart::

    from repro import benchmark_pair, get_approach, ApproachConfig
    pair = benchmark_pair("EN-FR", size=600)
    split = pair.five_fold_splits(seed=0)[0]
    approach = get_approach("BootEA", ApproachConfig(epochs=40))
    approach.fit(pair, split)
    print(approach.evaluate(split.test))
"""

from .alignment import csls, prf_metrics, rank_metrics, similarity_matrix
from .approaches import APPROACHES, ApproachConfig, get_approach
from .conventional import LogMap, Paris
from .datagen import FAMILIES, benchmark_pair, source_pair
from .kg import KGPair, KnowledgeGraph, load_pair, save_pair
from .orchestrate import load_spec, run_sweep
from .pipeline import cross_validate
from .sampling import ids_sample, pagerank, prs_sample, ras_sample

__version__ = "0.1.0"

__all__ = [
    "KnowledgeGraph", "KGPair", "load_pair", "save_pair",
    "benchmark_pair", "source_pair", "FAMILIES",
    "ids_sample", "ras_sample", "prs_sample", "pagerank",
    "APPROACHES", "get_approach", "ApproachConfig",
    "Paris", "LogMap",
    "cross_validate",
    "load_spec", "run_sweep",
    "similarity_matrix", "csls", "rank_metrics", "prf_metrics",
    "__version__",
]
