"""A pair of knowledge graphs with reference entity alignment.

This is the unit every dataset in the paper consists of: two KGs plus the
1-to-1 reference alignment between their entity sets, split into five folds
for cross-validation (20% train / 10% validation / 70% test per run,
following §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import KnowledgeGraph

__all__ = ["KGPair", "AlignmentSplit"]

Alignment = list[tuple[str, str]]


@dataclass
class AlignmentSplit:
    """Train/validation/test partition of the reference alignment."""

    train: Alignment
    valid: Alignment
    test: Alignment

    def __post_init__(self):
        self.train = [tuple(p) for p in self.train]
        self.valid = [tuple(p) for p in self.valid]
        self.test = [tuple(p) for p in self.test]

    @property
    def total(self) -> int:
        return len(self.train) + len(self.valid) + len(self.test)


@dataclass
class KGPair:
    """Two KGs and their reference alignment.

    The default alignment direction follows the paper: ``kg1`` is the
    source and ``kg2`` the target.
    """

    kg1: KnowledgeGraph
    kg2: KnowledgeGraph
    alignment: Alignment = field(default_factory=list)
    name: str = "pair"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.alignment = [tuple(p) for p in self.alignment]
        seen1 = {a for a, _ in self.alignment}
        seen2 = {b for _, b in self.alignment}
        if len(seen1) != len(self.alignment) or len(seen2) != len(self.alignment):
            raise ValueError("reference alignment must be a 1-to-1 mapping")

    def __repr__(self) -> str:
        return (
            f"KGPair(name={self.name!r}, |KG1|={self.kg1.num_entities}, "
            f"|KG2|={self.kg2.num_entities}, alignment={len(self.alignment)})"
        )

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def five_fold_splits(self, seed: int = 0) -> list[AlignmentSplit]:
        """Paper §5.1: five disjoint folds, each fold = 20% training data;
        of the remainder, 10% validation and 70% test."""
        rng = np.random.default_rng(seed)
        pairs = list(self.alignment)
        order = rng.permutation(len(pairs))
        shuffled = [pairs[i] for i in order]
        n = len(shuffled)
        fold_size = n // 5
        splits: list[AlignmentSplit] = []
        for k in range(5):
            start, stop = k * fold_size, (k + 1) * fold_size if k < 4 else n
            train = shuffled[start:stop]
            rest = shuffled[:start] + shuffled[stop:]
            # 10% of the total for validation, the remaining ~70% for test.
            valid_size = max(1, n // 10)
            splits.append(
                AlignmentSplit(
                    train=train, valid=rest[:valid_size], test=rest[valid_size:]
                )
            )
        return splits

    def split(self, train_ratio: float = 0.2, valid_ratio: float = 0.1,
              seed: int = 0) -> AlignmentSplit:
        """A single random split with the given ratios."""
        if train_ratio + valid_ratio >= 1.0:
            raise ValueError("train_ratio + valid_ratio must be < 1")
        rng = np.random.default_rng(seed)
        pairs = list(self.alignment)
        order = rng.permutation(len(pairs))
        shuffled = [pairs[i] for i in order]
        n = len(shuffled)
        n_train = max(1, int(round(n * train_ratio)))
        n_valid = max(1, int(round(n * valid_ratio)))
        return AlignmentSplit(
            train=shuffled[:n_train],
            valid=shuffled[n_train:n_train + n_valid],
            test=shuffled[n_train + n_valid:],
        )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def restricted_to_alignment(self) -> "KGPair":
        """Keep only the entities that participate in the reference
        alignment (Algorithm 1, line 1)."""
        keep1 = {a for a, _ in self.alignment}
        keep2 = {b for _, b in self.alignment}
        return KGPair(
            kg1=self.kg1.filtered(keep1),
            kg2=self.kg2.filtered(keep2),
            alignment=list(self.alignment),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def without_attributes(self) -> "KGPair":
        return KGPair(
            kg1=self.kg1.without_attributes(),
            kg2=self.kg2.without_attributes(),
            alignment=list(self.alignment),
            name=f"{self.name}(rel-only)",
            metadata=dict(self.metadata),
        )

    def without_relations(self) -> "KGPair":
        return KGPair(
            kg1=self.kg1.without_relations(),
            kg2=self.kg2.without_relations(),
            alignment=list(self.alignment),
            name=f"{self.name}(attr-only)",
            metadata=dict(self.metadata),
        )

    def alignment_degree(self, pair: tuple[str, str]) -> int:
        """Paper Figure 5: degree of an alignment = sum of the relation
        triples of its two entities."""
        e1, e2 = pair
        return self.kg1.degree(e1) + self.kg2.degree(e2)
