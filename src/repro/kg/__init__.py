"""Knowledge-graph data model, statistics and OpenEA-format I/O."""

from .graph import EntityIndex, KnowledgeGraph
from .io import (
    load_pair,
    load_splits,
    read_links,
    read_triples,
    save_pair,
    save_splits,
    write_links,
    write_triples,
)
from .pair import AlignmentSplit, KGPair
from .validate import ValidationReport, validate_pair
from .stats import (
    clustering_coefficient,
    dataset_summary,
    degree_distribution,
    isolated_entity_ratio,
    js_divergence,
)

__all__ = [
    "KnowledgeGraph", "EntityIndex", "KGPair", "AlignmentSplit",
    "read_triples", "write_triples", "read_links", "write_links",
    "save_pair", "load_pair", "save_splits", "load_splits",
    "ValidationReport", "validate_pair",
    "degree_distribution", "js_divergence", "isolated_entity_ratio",
    "clustering_coefficient", "dataset_summary",
]
