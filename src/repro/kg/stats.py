"""Graph statistics used throughout the paper's dataset evaluation.

Implements the measures of Figure 2/3 and Table 3: degree distributions,
Jensen-Shannon divergence between them, percentage of isolated entities,
and the average clustering coefficient.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .graph import KnowledgeGraph

__all__ = [
    "degree_distribution",
    "js_divergence",
    "isolated_entity_ratio",
    "clustering_coefficient",
    "dataset_summary",
]


def degree_distribution(kg: KnowledgeGraph, max_degree: int | None = None) -> dict[int, float]:
    """Proportion of entities having each relation degree.

    Degrees above ``max_degree`` (when given) are clamped into the final
    bucket, matching how the paper's figures truncate the x-axis.
    """
    degrees = list(kg.degrees().values())
    if not degrees:
        return {}
    if max_degree is not None:
        degrees = [min(d, max_degree) for d in degrees]
    counts = Counter(degrees)
    total = len(degrees)
    return {degree: count / total for degree, count in sorted(counts.items())}


def js_divergence(q: dict[int, float], p: dict[int, float]) -> float:
    """Jensen-Shannon divergence between two degree distributions (Eq. 6).

    Both inputs map degree -> proportion.  Missing degrees count as zero.
    Returns a value in ``[0, log 2]``; the paper reports it as a percentage
    with threshold epsilon = 5%.
    """
    support = sorted(set(q) | set(p))
    q_vec = np.array([q.get(x, 0.0) for x in support])
    p_vec = np.array([p.get(x, 0.0) for x in support])
    m_vec = 0.5 * (q_vec + p_vec)

    def _kl_terms(a: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / m_vec[mask])))

    return 0.5 * (_kl_terms(q_vec) + _kl_terms(p_vec))


def isolated_entity_ratio(kg: KnowledgeGraph) -> float:
    """Fraction of entities with no relation triple (Table 3 'Isolates')."""
    degrees = kg.degrees()
    if not degrees:
        return 0.0
    isolated = sum(1 for d in degrees.values() if d == 0)
    return isolated / len(degrees)


def clustering_coefficient(kg: KnowledgeGraph) -> float:
    """Average local clustering coefficient over the undirected structure.

    ``C(v) = 2 * triangles(v) / (deg(v) * (deg(v) - 1))``, averaged over all
    entities (entities of degree < 2 contribute 0, the networkx convention).
    """
    adjacency = kg.adjacency()
    entities = kg.entities
    if not entities:
        return 0.0
    total = 0.0
    for entity in entities:
        neighbors = adjacency.get(entity, set())
        k = len(neighbors)
        if k < 2:
            continue
        links = 0
        neighbor_list = list(neighbors)
        for i, u in enumerate(neighbor_list):
            adj_u = adjacency.get(u, set())
            for v in neighbor_list[i + 1:]:
                if v in adj_u:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(entities)


def dataset_summary(kg: KnowledgeGraph) -> dict[str, float]:
    """The row of statistics the paper's Table 2 reports per KG."""
    return {
        "entities": kg.num_entities,
        "relations": len(kg.relations),
        "attributes": len(kg.attributes),
        "rel_triples": len(kg.relation_triples),
        "attr_triples": len(kg.attribute_triples),
        "avg_degree": kg.average_degree(),
    }
