"""OpenEA-format dataset I/O.

The released OpenEA datasets use tab-separated files::

    rel_triples_1 / rel_triples_2     head \t relation \t tail
    attr_triples_1 / attr_triples_2   entity \t attribute \t value
    ent_links                         entity1 \t entity2
    721_5fold/<k>/train_links, valid_links, test_links

This module reads and writes that layout so datasets generated here are
interchangeable with the published ones.
"""

from __future__ import annotations

from pathlib import Path

from .graph import KnowledgeGraph
from .pair import AlignmentSplit, KGPair

__all__ = [
    "read_triples",
    "write_triples",
    "read_links",
    "write_links",
    "save_pair",
    "load_pair",
    "save_splits",
    "load_splits",
]


def read_triples(path: Path | str) -> list[tuple[str, str, str]]:
    """Read tab-separated triples; blank lines are skipped."""
    triples: list[tuple[str, str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_no}: expected 3 fields, got {len(parts)}")
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def write_triples(path: Path | str, triples: list[tuple[str, str, str]]) -> None:
    """Write tab-separated triples, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for head, relation, tail in triples:
            handle.write(f"{head}\t{relation}\t{tail}\n")


def read_links(path: Path | str) -> list[tuple[str, str]]:
    """Read tab-separated entity alignment links."""
    links: list[tuple[str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_no}: expected 2 fields, got {len(parts)}")
            links.append((parts[0], parts[1]))
    return links


def write_links(path: Path | str, links: list[tuple[str, str]]) -> None:
    """Write tab-separated entity alignment links."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for left, right in links:
            handle.write(f"{left}\t{right}\n")


def save_pair(pair: KGPair, directory: Path | str) -> None:
    """Write a :class:`KGPair` in the OpenEA directory layout."""
    directory = Path(directory)
    write_triples(directory / "rel_triples_1", pair.kg1.relation_triples)
    write_triples(directory / "rel_triples_2", pair.kg2.relation_triples)
    write_triples(directory / "attr_triples_1", pair.kg1.attribute_triples)
    write_triples(directory / "attr_triples_2", pair.kg2.attribute_triples)
    write_links(directory / "ent_links", pair.alignment)


def load_pair(directory: Path | str, name: str | None = None) -> KGPair:
    """Load a :class:`KGPair` from the OpenEA directory layout."""
    directory = Path(directory)
    return KGPair(
        kg1=KnowledgeGraph(
            relation_triples=read_triples(directory / "rel_triples_1"),
            attribute_triples=read_triples(directory / "attr_triples_1"),
            name="KG1",
        ),
        kg2=KnowledgeGraph(
            relation_triples=read_triples(directory / "rel_triples_2"),
            attribute_triples=read_triples(directory / "attr_triples_2"),
            name="KG2",
        ),
        alignment=read_links(directory / "ent_links"),
        name=name if name is not None else directory.name,
    )


def save_splits(splits: list[AlignmentSplit], directory: Path | str) -> None:
    """Write 5-fold splits under ``<directory>/721_5fold/<fold>/``."""
    directory = Path(directory) / "721_5fold"
    for fold, split in enumerate(splits, start=1):
        fold_dir = directory / str(fold)
        write_links(fold_dir / "train_links", split.train)
        write_links(fold_dir / "valid_links", split.valid)
        write_links(fold_dir / "test_links", split.test)


def load_splits(directory: Path | str) -> list[AlignmentSplit]:
    """Load all folds found under ``<directory>/721_5fold/``."""
    directory = Path(directory) / "721_5fold"
    splits: list[AlignmentSplit] = []
    for fold_dir in sorted(directory.iterdir(), key=lambda p: int(p.name)):
        splits.append(
            AlignmentSplit(
                train=read_links(fold_dir / "train_links"),
                valid=read_links(fold_dir / "valid_links"),
                test=read_links(fold_dir / "test_links"),
            )
        )
    return splits
