"""OpenEA-format dataset I/O.

The released OpenEA datasets use tab-separated files::

    rel_triples_1 / rel_triples_2     head \t relation \t tail
    attr_triples_1 / attr_triples_2   entity \t attribute \t value
    ent_links                         entity1 \t entity2
    721_5fold/<k>/train_links, valid_links, test_links

This module reads and writes that layout so datasets generated here are
interchangeable with the published ones.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from ..faults import atomic_write_json, atomic_write_lines, fault_point
from .graph import KnowledgeGraph
from .pair import AlignmentSplit, KGPair

__all__ = [
    "read_triples",
    "write_triples",
    "read_links",
    "write_links",
    "save_pair",
    "load_pair",
    "save_splits",
    "load_splits",
]

# The files the OpenEA directory layout requires (docs/datasets.md).
PAIR_FILES = (
    "rel_triples_1", "rel_triples_2",
    "attr_triples_1", "attr_triples_2",
    "ent_links",
)

# Optional sidecar recording seeded corruption decisions (dangling
# entities, rewired links, dropped attributes); see docs/datasets.md,
# "Corruption manifest".  Absent for clean datasets.
CORRUPTION_FILE = "corruption.json"


def _read_rows(path: Path | str, n_fields: int,
               max_bad_lines: int = 0) -> list[tuple]:
    """Shared tab-separated reader.

    Malformed lines raise a line-numbered :class:`ValueError` by
    default; with ``max_bad_lines > 0`` up to that many are skipped
    with a warning instead — the forgiving mode for datasets damaged by
    an interrupted export.
    """
    fault_point("io.read", path=path)
    rows: list[tuple] = []
    bad = 0
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != n_fields:
                message = (f"{path}:{line_no}: expected {n_fields} fields, "
                           f"got {len(parts)}")
                bad += 1
                if bad <= max_bad_lines:
                    warnings.warn(f"{message} (line skipped)", stacklevel=3)
                    continue
                if max_bad_lines:
                    message += f" (> max_bad_lines={max_bad_lines} skipped)"
                raise ValueError(message)
            rows.append(tuple(parts))
    return rows


def read_triples(path: Path | str,
                 max_bad_lines: int = 0) -> list[tuple[str, str, str]]:
    """Read tab-separated triples; blank lines are skipped.

    ``max_bad_lines`` allows skipping up to that many malformed lines
    (each reported with its line number) instead of aborting the load.
    """
    return _read_rows(path, 3, max_bad_lines)


def write_triples(path: Path | str, triples: list[tuple[str, str, str]]) -> None:
    """Atomically write tab-separated triples, creating parent dirs."""
    atomic_write_lines(
        path,
        (f"{head}\t{relation}\t{tail}" for head, relation, tail in triples),
        site="io.write",
    )


def read_links(path: Path | str,
               max_bad_lines: int = 0) -> list[tuple[str, str]]:
    """Read tab-separated entity alignment links (see :func:`read_triples`
    for ``max_bad_lines``)."""
    return _read_rows(path, 2, max_bad_lines)


def write_links(path: Path | str, links: list[tuple[str, str]]) -> None:
    """Atomically write tab-separated entity alignment links."""
    atomic_write_lines(
        path, (f"{left}\t{right}" for left, right in links), site="io.write"
    )


def save_pair(pair: KGPair, directory: Path | str) -> None:
    """Write a :class:`KGPair` in the OpenEA directory layout.

    Corrupted pairs additionally persist their corruption manifest as
    ``corruption.json`` (atomically), so the NIL ground truth survives
    the round trip through disk.
    """
    directory = Path(directory)
    write_triples(directory / "rel_triples_1", pair.kg1.relation_triples)
    write_triples(directory / "rel_triples_2", pair.kg2.relation_triples)
    write_triples(directory / "attr_triples_1", pair.kg1.attribute_triples)
    write_triples(directory / "attr_triples_2", pair.kg2.attribute_triples)
    write_links(directory / "ent_links", pair.alignment)
    manifest = pair.metadata.get("corruption")
    if manifest:
        atomic_write_json(
            directory / CORRUPTION_FILE, manifest, site="io.write"
        )


def load_pair(directory: Path | str, name: str | None = None,
              max_bad_lines: int = 0) -> KGPair:
    """Load a :class:`KGPair` from the OpenEA directory layout.

    All required files are checked up front so a missing one raises a
    single :class:`FileNotFoundError` naming every absent file, instead
    of failing one file at a time with a bare ``open`` error.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"dataset directory {directory} does not exist"
        )
    missing = [fname for fname in PAIR_FILES
               if not (directory / fname).is_file()]
    if missing:
        raise FileNotFoundError(
            f"dataset at {directory} is not a complete OpenEA pair: "
            f"missing {', '.join(missing)} "
            f"(expected files: {', '.join(PAIR_FILES)})"
        )
    return KGPair(
        kg1=KnowledgeGraph(
            relation_triples=read_triples(
                directory / "rel_triples_1", max_bad_lines),
            attribute_triples=read_triples(
                directory / "attr_triples_1", max_bad_lines),
            name="KG1",
        ),
        kg2=KnowledgeGraph(
            relation_triples=read_triples(
                directory / "rel_triples_2", max_bad_lines),
            attribute_triples=read_triples(
                directory / "attr_triples_2", max_bad_lines),
            name="KG2",
        ),
        alignment=read_links(directory / "ent_links", max_bad_lines),
        name=name if name is not None else directory.name,
        metadata=_load_corruption(directory),
    )


def _load_corruption(directory: Path) -> dict:
    """Restore the corruption manifest sidecar, if present."""
    path = directory / CORRUPTION_FILE
    if not path.is_file():
        return {}
    fault_point("io.read", path=path)
    with open(path, encoding="utf-8") as handle:
        return {"corruption": json.load(handle)}


def save_splits(splits: list[AlignmentSplit], directory: Path | str) -> None:
    """Write 5-fold splits under ``<directory>/721_5fold/<fold>/``."""
    directory = Path(directory) / "721_5fold"
    for fold, split in enumerate(splits, start=1):
        fold_dir = directory / str(fold)
        write_links(fold_dir / "train_links", split.train)
        write_links(fold_dir / "valid_links", split.valid)
        write_links(fold_dir / "test_links", split.test)


def load_splits(directory: Path | str) -> list[AlignmentSplit]:
    """Load all folds found under ``<directory>/721_5fold/``."""
    directory = Path(directory) / "721_5fold"
    splits: list[AlignmentSplit] = []
    for fold_dir in sorted(directory.iterdir(), key=lambda p: int(p.name)):
        splits.append(
            AlignmentSplit(
                train=read_links(fold_dir / "train_links"),
                valid=read_links(fold_dir / "valid_links"),
                test=read_links(fold_dir / "test_links"),
            )
        )
    return splits
