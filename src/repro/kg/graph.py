"""Knowledge-graph data model.

A :class:`KnowledgeGraph` stores facts as *relation triples*
``(subject entity, relation, object entity)`` and *attribute triples*
``(subject entity, attribute, literal value)`` — the two fact types the
paper's Section 1 defines.  All identifiers are strings (URIs or local
names); integer indexing for the embedding models is provided by
:class:`EntityIndex`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["KnowledgeGraph", "EntityIndex"]

RelationTriple = tuple[str, str, str]
AttributeTriple = tuple[str, str, str]


@dataclass
class KnowledgeGraph:
    """An entity-relation-attribute graph.

    Parameters
    ----------
    relation_triples:
        ``(head_entity, relation, tail_entity)`` facts.
    attribute_triples:
        ``(entity, attribute, literal_value)`` facts.
    name:
        Human-readable label (e.g. ``"EN"`` or ``"DBpedia"``).
    """

    relation_triples: list[RelationTriple] = field(default_factory=list)
    attribute_triples: list[AttributeTriple] = field(default_factory=list)
    name: str = "KG"

    def __post_init__(self):
        self.relation_triples = [tuple(t) for t in self.relation_triples]
        self.attribute_triples = [tuple(t) for t in self.attribute_triples]
        self._invalidate()

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._entities: frozenset[str] | None = None
        self._degrees: dict[str, int] | None = None
        self._adjacency: dict[str, set[str]] | None = None

    @property
    def entities(self) -> frozenset[str]:
        """All entities appearing in relation or attribute triples."""
        if self._entities is None:
            found: set[str] = set()
            for head, _, tail in self.relation_triples:
                found.add(head)
                found.add(tail)
            for entity, _, _ in self.attribute_triples:
                found.add(entity)
            self._entities = frozenset(found)
        return self._entities

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(r for _, r, _ in self.relation_triples)

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(a for _, a, _ in self.attribute_triples)

    @property
    def num_entities(self) -> int:
        return len(self.entities)

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"rel_triples={len(self.relation_triples)}, "
            f"attr_triples={len(self.attribute_triples)})"
        )

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    def degrees(self) -> dict[str, int]:
        """Relation-triple degree of every entity (paper's Figure 2 metric).

        Entities that appear only in attribute triples get degree 0.
        """
        if self._degrees is None:
            counts: Counter[str] = Counter()
            for head, _, tail in self.relation_triples:
                counts[head] += 1
                counts[tail] += 1
            # sorted iteration: set order is process-randomized for strings
            # and would leak into any consumer that iterates this dict
            self._degrees = {e: counts.get(e, 0) for e in sorted(self.entities)}
        return self._degrees

    def degree(self, entity: str) -> int:
        return self.degrees().get(entity, 0)

    def average_degree(self) -> float:
        """Average relation degree over entities appearing in relation triples."""
        degs = [d for d in self.degrees().values() if d > 0]
        if not degs:
            return 0.0
        return sum(degs) / len(degs)

    def adjacency(self) -> dict[str, set[str]]:
        """Undirected entity adjacency from relation triples."""
        if self._adjacency is None:
            adj: dict[str, set[str]] = defaultdict(set)
            for head, _, tail in self.relation_triples:
                if head != tail:
                    adj[head].add(tail)
                    adj[tail].add(head)
            self._adjacency = dict(adj)
        return self._adjacency

    def neighbors(self, entity: str) -> set[str]:
        return self.adjacency().get(entity, set())

    def attribute_triples_of(self, entity: str) -> list[AttributeTriple]:
        return [t for t in self.attribute_triples if t[0] == entity]

    def entity_attributes(self) -> dict[str, list[tuple[str, str]]]:
        """Map each entity to its ``(attribute, value)`` pairs."""
        result: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for entity, attribute, value in self.attribute_triples:
            result[entity].append((attribute, value))
        return dict(result)

    def multi_mapping_relation_entities(self) -> frozenset[str]:
        """Entities involved in 1-to-N / N-to-1 / N-to-N relations.

        The paper (§5.2) measures the proportion of entities that take part
        in a relation appearing with several tails for the same head (or
        several heads for the same tail).
        """
        head_rel_tails: dict[tuple[str, str], set[str]] = defaultdict(set)
        tail_rel_heads: dict[tuple[str, str], set[str]] = defaultdict(set)
        for head, relation, tail in self.relation_triples:
            head_rel_tails[(head, relation)].add(tail)
            tail_rel_heads[(tail, relation)].add(head)
        involved: set[str] = set()
        for (head, _), tails in head_rel_tails.items():
            if len(tails) > 1:
                involved.add(head)
                involved.update(tails)
        for (tail, _), heads in tail_rel_heads.items():
            if len(heads) > 1:
                involved.add(tail)
                involved.update(heads)
        return frozenset(involved)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def filtered(self, entities: Iterable[str], name: str | None = None) -> "KnowledgeGraph":
        """Subgraph induced by ``entities``.

        Relation triples are kept when *both* endpoints remain; attribute
        triples when the subject remains (the convention of the paper's
        sampling procedure).
        """
        keep = set(entities)
        return KnowledgeGraph(
            relation_triples=[
                t for t in self.relation_triples if t[0] in keep and t[2] in keep
            ],
            attribute_triples=[t for t in self.attribute_triples if t[0] in keep],
            name=name if name is not None else self.name,
        )

    def without_attributes(self) -> "KnowledgeGraph":
        """Copy with attribute triples dropped (feature-study ablation)."""
        return KnowledgeGraph(
            relation_triples=list(self.relation_triples),
            attribute_triples=[],
            name=self.name,
        )

    def without_relations(self) -> "KnowledgeGraph":
        """Copy with relation triples dropped (feature-study ablation)."""
        return KnowledgeGraph(
            relation_triples=[],
            attribute_triples=list(self.attribute_triples),
            name=self.name,
        )


class EntityIndex:
    """Bidirectional mapping between string identifiers and dense ints."""

    def __init__(self, items: Iterable[str] = ()):
        self._to_id: dict[str, int] = {}
        self._to_item: list[str] = []
        for item in items:
            self.add(item)

    def add(self, item: str) -> int:
        existing = self._to_id.get(item)
        if existing is not None:
            return existing
        index = len(self._to_item)
        self._to_id[item] = index
        self._to_item.append(item)
        return index

    def id_of(self, item: str) -> int:
        return self._to_id[item]

    def item_of(self, index: int) -> str:
        return self._to_item[index]

    def __contains__(self, item: str) -> bool:
        return item in self._to_id

    def __len__(self) -> int:
        return len(self._to_item)

    def ids(self, items: Iterable[str]) -> list[int]:
        return [self._to_id[item] for item in items]

    def items(self) -> list[str]:
        return list(self._to_item)
