"""Dataset validation: the invariants a benchmark KG pair must satisfy.

Used by the CLI after generation and by downstream consumers of datasets
from disk.  Mirrors the quality criteria of the paper's §3.3: a usable
dataset needs a 1-to-1 reference alignment whose entities actually exist
and carry structure, and should not be dominated by isolated entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pair import KGPair
from .stats import isolated_entity_ratio

__all__ = ["ValidationReport", "validate_pair"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_pair`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        if self.ok and not self.warnings:
            return "dataset OK"
        lines = [f"ERROR: {e}" for e in self.errors]
        lines += [f"warning: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_pair(
    pair: KGPair,
    max_isolated: float = 0.05,
    min_alignment: int = 10,
) -> ValidationReport:
    """Check a KG pair's benchmark invariants.

    Errors (dataset unusable):
      * alignment not 1-to-1 (enforced by ``KGPair`` itself, re-checked),
      * alignment references entities missing from the KGs,
      * empty alignment or empty KGs.

    Warnings (dataset degraded):
      * isolated-entity ratio above ``max_isolated`` (Table 3's concern),
      * fewer than ``min_alignment`` aligned pairs,
      * entities present in a KG but unreachable from the alignment.
    """
    report = ValidationReport()

    if not pair.alignment:
        report.errors.append("reference alignment is empty")
        return report
    if not pair.kg1.relation_triples and not pair.kg1.attribute_triples:
        report.errors.append("KG1 has no triples")
    if not pair.kg2.relation_triples and not pair.kg2.attribute_triples:
        report.errors.append("KG2 has no triples")

    lefts = [a for a, _ in pair.alignment]
    rights = [b for _, b in pair.alignment]
    if len(set(lefts)) != len(lefts) or len(set(rights)) != len(rights):
        report.errors.append("reference alignment is not 1-to-1")

    ent1, ent2 = pair.kg1.entities, pair.kg2.entities
    missing1 = [a for a in lefts if a not in ent1]
    missing2 = [b for b in rights if b not in ent2]
    if missing1:
        report.errors.append(
            f"{len(missing1)} aligned entities missing from KG1 "
            f"(e.g. {missing1[0]!r})"
        )
    if missing2:
        report.errors.append(
            f"{len(missing2)} aligned entities missing from KG2 "
            f"(e.g. {missing2[0]!r})"
        )

    if len(pair.alignment) < min_alignment:
        report.warnings.append(
            f"only {len(pair.alignment)} aligned pairs (< {min_alignment})"
        )
    for side, kg in (("KG1", pair.kg1), ("KG2", pair.kg2)):
        ratio = isolated_entity_ratio(kg)
        if ratio > max_isolated:
            report.warnings.append(
                f"{side} has {ratio:.1%} isolated entities (> {max_isolated:.0%})"
            )
    unaligned1 = len(ent1) - len(set(lefts) & ent1)
    unaligned2 = len(ent2) - len(set(rights) & ent2)
    if unaligned1 > 0.5 * len(ent1):
        report.warnings.append(
            f"KG1 has {unaligned1} entities outside the alignment"
        )
    if unaligned2 > 0.5 * len(ent2):
        report.warnings.append(
            f"KG2 has {unaligned2} entities outside the alignment"
        )
    return report
