"""One config fingerprint for the whole system.

Three artifacts need to decide "are these two runs the same
experiment?": the run ledger (:mod:`repro.obs.ledger`), the
cross-validation progress file (:mod:`repro.pipeline.runner`) and the
sweep progress file (:mod:`repro.orchestrate`).  They all answer it the
same way — a sha256-16 digest over the canonically-serialized
configuration — and they all answer it *here*, so the digests are
interchangeable: a sweep job's id is a valid ledger fingerprint and
vice versa.

Two flavours share the implementation:

* ``config_fingerprint(config)`` — the ledger convention: the digest
  covers the config dict *plus* the ``REPRO_BENCH_*`` environment, so a
  smoke-scale run can never become the baseline of a full-scale one.
* ``config_fingerprint(config, include_env=False)`` — the progress-file
  convention: resume decisions depend only on the experiment itself,
  not on whether tracing happened to be on.
"""

from __future__ import annotations

import hashlib
import json
import os

__all__ = ["canonical_json", "fingerprint", "env_fingerprint",
           "config_fingerprint"]

#: Environment prefixes that shape a run enough to break comparability.
ENV_PREFIXES = ("REPRO_BENCH_",)


def canonical_json(payload) -> str:
    """Deterministic serialization: sorted keys, non-JSON types via str."""
    return json.dumps(payload, sort_keys=True, default=str)


def fingerprint(payload) -> str:
    """A stable 16-hex sha256 digest of any JSON-serializable payload."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


def env_fingerprint(prefixes: tuple[str, ...] = ENV_PREFIXES) -> dict:
    """The environment knobs that shape a run (``REPRO_BENCH_*``)."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if any(key.startswith(prefix) for prefix in prefixes)
    }


def config_fingerprint(config: dict, *, include_env: bool = True) -> str:
    """A stable 16-hex digest of the run configuration.

    Two runs are comparable (same baseline pool / same resumable
    experiment) iff their fingerprints match.  With ``include_env``
    (the ledger default) the digest also covers the ``REPRO_BENCH_*``
    environment; progress files pass ``include_env=False`` so resuming
    does not depend on telemetry toggles.
    """
    payload: dict = {"config": config or {}}
    if include_env:
        payload["env"] = env_fingerprint()
    return fingerprint(payload)
