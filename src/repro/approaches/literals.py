"""Literal-derived entity vectors shared by the attribute-using approaches.

The paper's approaches consume literals in three ways: word-embedded
attribute values (JAPE's successor methods, IMUSE, MultiKE's attribute
view), name-like labels (MultiKE's name view, RDGCN's initialization),
and long textual descriptions (KDCoE).  AttrE instead encodes values at
the character level (Eq. 5).

Values are weighted by inverse document frequency so that rare literals
(near-keys) dominate ubiquitous ones.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..kg import KnowledgeGraph
from ..text import CharEmbeddingTable, WordEmbeddingTable

__all__ = [
    "value_word_vectors",
    "name_vectors",
    "description_vectors",
    "char_vectors",
    "vectors_to_matrix",
]


def _idf_weights(kg: KnowledgeGraph) -> dict[str, float]:
    counts = Counter(value for _, _, value in kg.attribute_triples)
    return {value: 1.0 / np.log(2.0 + count) for value, count in counts.items()}


def value_word_vectors(
    kg: KnowledgeGraph, language: str = "en", dim: int = 32, seed: int = 0
) -> dict[str, np.ndarray]:
    """IDF-weighted mean word vector over all of an entity's values."""
    table = WordEmbeddingTable(dim=dim, language=language, seed=seed)
    idf = _idf_weights(kg)
    sums: dict[str, np.ndarray] = {}
    weights: dict[str, float] = {}
    for entity, _, value in kg.attribute_triples:
        vec = table.embed_text(value)
        weight = idf[value]
        if entity not in sums:
            sums[entity] = weight * vec
            weights[entity] = weight
        else:
            sums[entity] += weight * vec
            weights[entity] += weight
    return {
        entity: sums[entity] / max(weights[entity], 1e-12) for entity in sums
    }


def name_vectors(
    kg: KnowledgeGraph, language: str = "en", dim: int = 32, seed: int = 0
) -> dict[str, np.ndarray]:
    """A name-like vector per entity.

    Entity labels are deleted from the datasets (paper §3.2), so, like the
    name-view approaches, we take the entity's *rarest short* literal as
    its label surrogate: at most 4 tokens, highest IDF.
    """
    table = WordEmbeddingTable(dim=dim, language=language, seed=seed)
    idf = _idf_weights(kg)
    best: dict[str, tuple[float, str]] = {}
    for entity, _, value in kg.attribute_triples:
        if len(value.split()) > 4:
            continue
        score = idf[value]
        if entity not in best or score > best[entity][0]:
            best[entity] = (score, value)
    return {entity: table.embed_text(value) for entity, (_, value) in best.items()}


def description_vectors(
    kg: KnowledgeGraph, language: str = "en", dim: int = 32,
    min_tokens: int = 5, seed: int = 0,
) -> dict[str, np.ndarray]:
    """The entity's longest literal, if long enough to act as a description.

    Entities without a sufficiently long literal are absent from the
    result — the coverage gap that limits KDCoE's co-training (§5.2).
    """
    table = WordEmbeddingTable(dim=dim, language=language, seed=seed)
    longest: dict[str, str] = {}
    for entity, _, value in kg.attribute_triples:
        if len(value.split()) >= min_tokens:
            if entity not in longest or len(value) > len(longest[entity]):
                longest[entity] = value
    return {entity: table.embed_text(value) for entity, value in longest.items()}


def char_vectors(
    kg: KnowledgeGraph, dim: int = 32, seed: int = 0
) -> dict[str, np.ndarray]:
    """AttrE-style character-level entity vectors (IDF-weighted)."""
    table = CharEmbeddingTable(dim=dim, seed=seed)
    idf = _idf_weights(kg)
    sums: dict[str, np.ndarray] = {}
    weights: dict[str, float] = {}
    for entity, _, value in kg.attribute_triples:
        vec = table.embed_literal(value)
        weight = idf[value]
        if entity not in sums:
            sums[entity] = weight * vec
            weights[entity] = weight
        else:
            sums[entity] += weight * vec
            weights[entity] += weight
    return {entity: sums[entity] / max(weights[entity], 1e-12) for entity in sums}


def vectors_to_matrix(
    vectors: dict[str, np.ndarray], entities: list[str], dim: int
) -> np.ndarray:
    """Stack per-entity vectors into a matrix, zero rows for missing ones."""
    out = np.zeros((len(entities), dim))
    for i, entity in enumerate(entities):
        vec = vectors.get(entity)
        if vec is not None:
            out[i] = vec
    return out
