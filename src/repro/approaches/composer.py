"""Declarative composition of new alignment approaches (Figure 4).

The paper's library exposes its embedding module, alignment module and
interaction modes as interchangeable components so that "users can
freely call and combine different techniques ... to develop new
approaches".  :func:`compose_approach` is that facility: pick one option
per axis and get a ready-to-train approach class.

Axes and options
----------------
* ``relation_model`` — any name from
  :data:`repro.embedding.RELATION_MODELS` (``transe``, ``transh``,
  ``rotate``, ``conve``, ...);
* ``combination`` — ``sharing`` (seed ids merged), ``swapping`` (seed
  triples duplicated), ``calibration`` (seed-distance loss);
* ``loss`` — ``marginal``, ``logistic`` or ``limited``;
* ``negative_sampling`` — ``uniform`` or ``truncated`` (BootEA-style);
* ``attribute_channel`` — ``None``, ``"word"`` (IDF-weighted word
  vectors), ``"char"`` (character-level, AttrE-style), ``"name"``
  (label-like literals) or ``"correlation"`` (AC2Vec);
* ``self_training`` — augment the seeds from mutual nearest neighbors
  every few epochs (BootEA-style editing included).

Example
-------
>>> Approach = compose_approach(relation_model="transh",
...                             combination="swapping",
...                             negative_sampling="truncated",
...                             attribute_channel="word")
>>> approach = Approach(ApproachConfig(dim=32, epochs=40))
"""

from __future__ import annotations

from ..embedding import RELATION_MODELS, TruncatedSampler
from .attr_family import JAPE, LiteralBlendApproach
from .base import ApproachConfig, ApproachInfo
from .literals import char_vectors, name_vectors, value_word_vectors

__all__ = ["compose_approach", "COMBINATIONS", "ATTRIBUTE_CHANNELS"]

COMBINATIONS = ("sharing", "swapping", "calibration")
ATTRIBUTE_CHANNELS = (None, "word", "char", "name", "correlation")
LOSSES = ("marginal", "logistic", "limited")
NEGATIVE_SAMPLERS = ("uniform", "truncated")


def compose_approach(
    relation_model: str = "transe",
    combination: str = "sharing",
    loss: str = "marginal",
    negative_sampling: str = "uniform",
    attribute_channel: str | None = None,
    attribute_weight: float = 0.4,
    self_training: bool = False,
    self_training_every: int = 10,
    metric: str = "cosine",
    name: str | None = None,
):
    """Build an approach class from component choices.

    Returns a class (instantiate it with an
    :class:`~repro.approaches.base.ApproachConfig`); invalid component
    names raise ``ValueError`` immediately.
    """
    if relation_model not in RELATION_MODELS:
        raise ValueError(
            f"unknown relation model {relation_model!r}; "
            f"choose from {sorted(RELATION_MODELS)}"
        )
    if combination not in COMBINATIONS:
        raise ValueError(f"combination must be one of {COMBINATIONS}")
    if loss not in LOSSES:
        raise ValueError(f"loss must be one of {LOSSES}")
    if negative_sampling not in NEGATIVE_SAMPLERS:
        raise ValueError(f"negative_sampling must be one of {NEGATIVE_SAMPLERS}")
    if attribute_channel not in ATTRIBUTE_CHANNELS:
        raise ValueError(f"attribute_channel must be one of {ATTRIBUTE_CHANNELS}")

    display_name = name or "+".join(
        filter(None, [
            relation_model, combination,
            attribute_channel and f"attr:{attribute_channel}",
            "selftrain" if self_training else None,
        ])
    )
    info = ApproachInfo(
        name=display_name,
        relation_embedding="Triple",
        attribute_embedding=(
            "-" if attribute_channel is None
            else ("Att." if attribute_channel == "correlation" else "Literal")
        ),
        metric=metric,
        combination=combination.capitalize(),
        learning="Semi-supervised" if self_training else "Supervised",
        uses_attributes=attribute_channel is not None,
    )

    channel = attribute_channel
    weight = attribute_weight
    train_every = self_training_every

    class ComposedApproach(LiteralBlendApproach):
        """An approach assembled by :func:`compose_approach`."""

        merge_seeds = combination == "sharing"
        swapping = combination == "swapping"
        calibration_weight = 1.0 if combination == "calibration" else 0.0
        loss_name = loss
        structure_weight = 1.0 - (weight if channel else 0.0)

        def _setup(self, pair, split, rng):
            super()._setup(pair, split, rng)
            from ..autodiff import get_optimizer

            self.model = RELATION_MODELS[relation_model](
                self.data.n_entities, self.data.n_relations,
                self.config.dim, rng,
            )
            self.optimizer = get_optimizer(
                self.config.optimizer, self.model.parameters(), self.config.lr
            )
            if negative_sampling == "truncated":
                self.sampler = TruncatedSampler(self.data.n_entities)
            else:
                self.sampler = None

        def _negatives(self, batch, rng):
            if self.sampler is not None:
                return self.sampler.corrupt(batch, self.config.n_negatives, rng)
            return super()._negatives(batch, rng)

        def _build_channels(self, pair, rng) -> None:
            if channel is None:
                return
            dim, seed = self.config.dim, self.config.seed
            lang1 = pair.metadata.get("lang1", "en")
            lang2 = pair.metadata.get("lang2", "en")
            if channel == "word":
                vecs1 = value_word_vectors(pair.kg1, lang1, dim=dim, seed=seed)
                vecs2 = value_word_vectors(pair.kg2, lang2, dim=dim, seed=seed)
            elif channel == "char":
                vecs1 = char_vectors(pair.kg1, dim=dim, seed=seed)
                vecs2 = char_vectors(pair.kg2, dim=dim, seed=seed)
            elif channel == "name":
                vecs1 = name_vectors(pair.kg1, lang1, dim=dim, seed=seed)
                vecs2 = name_vectors(pair.kg2, lang2, dim=dim, seed=seed)
            else:  # correlation: reuse JAPE's AC2Vec channel construction
                JAPE._build_channels(self, pair, rng)
                self.channels = [(weight, c[1], c[2]) for c in self.channels]
                return
            self.channels = [(weight, vecs1, vecs2)]

        def _after_epoch(self, epoch, rng):
            if self.sampler is not None and epoch % 5 == 0:
                self.sampler.refresh(self.model.entity_embeddings())
            if self_training and train_every and epoch % train_every == 0:
                proposals = self._propose_pairs(0.7, mutual=True)
                for a, b in proposals:
                    self.augmented[self.data.entity_id(a)] = self.data.entity_id(b)
                if self.swapping:
                    self._swapped = self._make_swapped()
                self._record_augmentation(epoch // train_every, proposals)

    ComposedApproach.info = info
    ComposedApproach.__name__ = f"Composed_{display_name.replace('+', '_').replace(':', '_')}"
    return ComposedApproach
