"""Registry of the 12 implemented approaches and their requirements.

``REQUIRED_INFORMATION`` reproduces the paper's Table 9: which inputs each
approach needs (mandatory / optional / not applicable), covering relation
and attribute triples, pre-aligned entities/properties, and word
embeddings or machine translation.
"""

from __future__ import annotations

from .attr_family import AttrE, IMUSE, JAPE, KDCoE, MultiKE
from .base import ApproachConfig, EmbeddingApproach
from .gcn_family import GCNAlign, RDGCN
from .rsn import RSN4EA
from .trans_family import SEA, BootEA, IPTransE, MTransE

__all__ = ["APPROACHES", "get_approach", "REQUIRED_INFORMATION", "required_information_table"]

APPROACHES: dict[str, type[EmbeddingApproach]] = {
    "MTransE": MTransE,
    "IPTransE": IPTransE,
    "JAPE": JAPE,
    "KDCoE": KDCoE,
    "BootEA": BootEA,
    "GCNAlign": GCNAlign,
    "AttrE": AttrE,
    "IMUSE": IMUSE,
    "SEA": SEA,
    "RSN4EA": RSN4EA,
    "MultiKE": MultiKE,
    "RDGCN": RDGCN,
}

# Approaches beyond the paper's 12 (AliNet, unsupervised Procrustes, ...)
# register themselves here; get_approach resolves both registries.
EXTRA_APPROACHES: dict[str, type[EmbeddingApproach]] = {}


def get_approach(name: str, config: ApproachConfig | None = None, **kwargs) -> EmbeddingApproach:
    """Instantiate an approach (benchmarked or extension) by name."""
    combined = {**APPROACHES, **EXTRA_APPROACHES}
    key = {k.lower(): k for k in combined}.get(name.lower())
    if key is None:
        raise KeyError(f"unknown approach {name!r}; choose from {sorted(combined)}")
    return combined[key](config, **kwargs)


# Table 9: * mandatory, o optional, blank not applicable, t = machine
# translation mandatory for cross-lingual entity alignment.
REQUIRED_INFORMATION: dict[str, dict[str, str]] = {
    #             rel/attr triples  pre-aligned ent/prop  word emb/translation
    "MTransE":  {"triples": "*/ ", "prealigned": "*/o", "word": " / "},
    "IPTransE": {"triples": "*/ ", "prealigned": "*/o", "word": " / "},
    "JAPE":     {"triples": "*/o", "prealigned": "*/o", "word": " / "},
    "KDCoE":    {"triples": "o/o", "prealigned": "*/ ", "word": "o/ "},
    "BootEA":   {"triples": "*/ ", "prealigned": "*/ ", "word": " / "},
    "GCNAlign": {"triples": "*/o", "prealigned": "*/o", "word": " / "},
    "AttrE":    {"triples": "o/o", "prealigned": "*/ ", "word": "o/ "},
    "IMUSE":    {"triples": "o/o", "prealigned": "*/ ", "word": "o/ "},
    "SEA":      {"triples": "*/ ", "prealigned": "*/ ", "word": " / "},
    "RSN4EA":   {"triples": "*/ ", "prealigned": "*/ ", "word": " / "},
    "MultiKE":  {"triples": "o/o", "prealigned": "*/o", "word": "o/ "},
    "RDGCN":    {"triples": "*/o", "prealigned": "*/ ", "word": "o/ "},
    "LogMap":   {"triples": "o/*", "prealigned": " / ", "word": " /t"},
    "PARIS":    {"triples": "o/*", "prealigned": " / ", "word": " /t"},
}


def required_information_table() -> str:
    """Render Table 9 as fixed-width text."""
    header = (
        f"{'Approach':10s} {'Rel/Attr triples':18s} "
        f"{'Prealigned ent/prop':20s} {'WordEmb/Translation':20s}"
    )
    lines = [header, "-" * len(header)]
    for name, row in REQUIRED_INFORMATION.items():
        lines.append(
            f"{name:10s} {row['triples']:18s} {row['prealigned']:20s} {row['word']:20s}"
        )
    return "\n".join(lines)
