"""AliNet: gated multi-hop neighborhood aggregation (Sun et al., AAAI 2020).

The paper's §5.1 names AliNet as the contemporaneous approach to be
included in the next OpenEA release; this module provides it as an
extension beyond the 12 benchmarked systems.

AliNet addresses the *non-isomorphism* of counterpart neighborhoods: an
entity's 1-hop neighborhood in KG1 may correspond to a mix of 1-hop and
2-hop neighbors in KG2.  Each layer therefore aggregates the 1-hop and
the 2-hop neighborhoods separately and combines them through a learned
gate.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..autodiff import Highway, Module, Parameter, get_optimizer, sparse_matmul, xavier_init
from ..embedding import normalized_adjacency
from .base import ApproachInfo
from .gcn_family import GCNApproachBase

__all__ = ["AliNet"]


class _AliNetEncoder(Module):
    """Stacked gated dual-hop aggregation layers."""

    def __init__(self, one_hop: sparse.csr_matrix, two_hop: sparse.csr_matrix,
                 dim: int, n_layers: int, rng: np.random.Generator):
        from ..autodiff import orthogonal_init

        self.one_hop = one_hop
        self.two_hop = two_hop
        n = one_hop.shape[0]
        self.features = Parameter(xavier_init((n, dim), rng), name="alinet.features")
        self.one_weights = [
            Parameter(orthogonal_init((dim, dim), rng), name=f"alinet.w1_{i}")
            for i in range(n_layers)
        ]
        self.two_weights = [
            Parameter(orthogonal_init((dim, dim), rng), name=f"alinet.w2_{i}")
            for i in range(n_layers)
        ]
        self.gates = [Highway(dim, rng, name=f"alinet.gate{i}") for i in range(n_layers)]

    def __call__(self):
        hidden = self.features
        for w1, w2, gate in zip(self.one_weights, self.two_weights, self.gates):
            near = (sparse_matmul(self.one_hop, hidden) @ w1).tanh()
            far = (sparse_matmul(self.two_hop, hidden) @ w2).tanh()
            # the gate picks, per entity, how much distant evidence to mix in
            hidden = gate(near, far)
        return hidden

    def embeddings(self) -> np.ndarray:
        """Gradient-free forward pass."""
        hidden = self.features.data
        for w1, w2, gate in zip(self.one_weights, self.two_weights, self.gates):
            near = np.tanh(self.one_hop @ hidden @ w1.data)
            far = np.tanh(self.two_hop @ hidden @ w2.data)
            t = 1.0 / (1.0 + np.exp(-(near @ gate.gate.weight.data + gate.gate.bias.data)))
            hidden = t * far + (1.0 - t) * near
        return hidden


class AliNet(GCNApproachBase):
    """Gated 1-hop/2-hop aggregation with seed calibration."""

    info = ApproachInfo(
        name="AliNet", relation_embedding="Neighbor", attribute_embedding="-",
        metric="manhattan", combination="Calibration", learning="Supervised",
    )
    steps_per_epoch = 10

    def _build_encoders(self, pair, rng):
        two_hop = self._two_hop_adjacency()
        encoder = _AliNetEncoder(
            self.adjacency, two_hop, dim=self.config.dim,
            n_layers=self.n_layers, rng=rng,
        )
        return [(encoder, 1.0)]

    def _two_hop_adjacency(self) -> sparse.csr_matrix:
        """Row-normalized 2-hop reachability (diagonal removed)."""
        squared = (self.adjacency @ self.adjacency).tolil()
        squared.setdiag(0.0)
        squared = squared.tocsr()
        squared.eliminate_zeros()
        row_sums = np.asarray(squared.sum(axis=1)).ravel()
        scaling = sparse.diags(1.0 / np.maximum(row_sums, 1e-12))
        return (scaling @ squared).tocsr()

    def _parameters(self):
        return [p for encoder, _ in self.encoders for p in encoder.parameters()]


def _register() -> None:
    """Expose AliNet through the extension registry."""
    from . import registry

    registry.EXTRA_APPROACHES["AliNet"] = AliNet


_register()
