"""RSN4EA: recurrent skipping networks over relation paths.

Guo et al. (2019) model joint entity-relation sequences sampled by biased
random walks.  The *skipping* mechanism lets the subject entity bypass
the intervening relation when predicting the object — the long-term
relational dependency that plain path composition (IPTransE) misses.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import EmbeddingTable, GRUCell, Linear, Tensor, concat, get_optimizer
from .base import ApproachConfig, ApproachInfo, EmbeddingApproach, PairData

__all__ = ["RSN4EA"]


class RSN4EA(EmbeddingApproach):
    """Path-based alignment via a recurrent skipping network (sharing)."""

    info = ApproachInfo(
        name="RSN4EA", relation_embedding="Path", attribute_embedding="-",
        metric="cosine", combination="Sharing", learning="Supervised",
    )

    def __init__(self, config: ApproachConfig | None = None,
                 walk_length: int = 5, walks_per_entity: int = 3,
                 n_candidates: int = 10):
        super().__init__(config)
        self.walk_length = walk_length  # number of entities per walk
        self.walks_per_entity = walks_per_entity
        self.n_candidates = n_candidates

    def _setup(self, pair, split, rng):
        config = self.config
        self.data = PairData(pair, split, merge_seeds=True)
        n_ent = self.data.n_entities
        n_rel = self.data.n_relations
        # joint vocabulary: entities, then forward relations, then inverses
        self.rel_offset = n_ent
        self.vocab_size = n_ent + 2 * n_rel
        self.table = EmbeddingTable(self.vocab_size, config.dim, rng, name="rsn.table")
        self.gru = GRUCell(config.dim, config.dim, rng, name="rsn.gru")
        self.skip_subject = Linear(config.dim, config.dim, rng, bias=False, name="rsn.s1")
        self.skip_hidden = Linear(config.dim, config.dim, rng, bias=False, name="rsn.s2")
        self._modules = [self.table, self.gru, self.skip_subject, self.skip_hidden]
        parameters = [p for m in self._modules for p in m.parameters()]
        self.optimizer = get_optimizer(config.optimizer, parameters, config.lr)
        self._adjacency = self._adjacency_lists(n_rel)
        self.walks = self._sample_walks(rng)

    def _parameters(self):
        return [p for m in self._modules for p in m.parameters()]

    def _adjacency_lists(self, n_rel: int) -> list[list[tuple[int, int]]]:
        """Outgoing (relation_vocab_id, tail) lists, incl. inverse edges."""
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(self.data.n_entities)]
        for head, relation, tail in self.data.triples:
            adjacency[head].append((self.rel_offset + relation, tail))
            adjacency[tail].append((self.rel_offset + n_rel + relation, head))
        return adjacency

    def _sample_walks(self, rng) -> np.ndarray:
        """Biased random walks: sequences [e, r, e, r, e, ...] of vocab ids."""
        length = 2 * self.walk_length - 1
        walks = []
        for start in range(self.data.n_entities):
            if not self._adjacency[start]:
                continue
            for _ in range(self.walks_per_entity):
                sequence = [start]
                current = start
                for _ in range(self.walk_length - 1):
                    hops = self._adjacency[current]
                    if not hops:
                        break
                    relation, nxt = hops[rng.integers(len(hops))]
                    sequence.extend([relation, nxt])
                    current = nxt
                if len(sequence) == length:
                    walks.append(sequence)
        if not walks:
            return np.zeros((0, length), dtype=np.int64)
        return np.array(walks, dtype=np.int64)

    def _run_epoch(self, epoch, rng):
        config = self.config
        if not len(self.walks):
            return 0.0
        order = rng.permutation(len(self.walks))
        batch_size = max(32, config.batch_size // 8)
        total, batches = 0.0, 0
        for start in range(0, len(self.walks), batch_size):
            batch = self.walks[order[start:start + batch_size]]
            loss = self._walk_loss(batch, rng)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total += float(loss.data)
            batches += 1
            if batches >= 8:  # cap per-epoch work on large corpora
                break
        return total / max(batches, 1)

    def _walk_loss(self, batch: np.ndarray, rng) -> Tensor:
        """Sampled-softmax next-element prediction along the walks."""
        n, length = batch.shape
        hidden = self.gru.initial_state(n)
        losses = []
        subject = None
        for position in range(length - 1):
            inputs = self.table(batch[:, position])
            hidden = self.gru(inputs, hidden)
            if position % 2 == 0:
                subject = inputs  # entity position: remember the subject
                context = hidden
            else:
                # relation position: skip connection from the subject
                context = self.skip_hidden(hidden) + self.skip_subject(subject)
            targets = batch[:, position + 1]
            negatives = rng.integers(0, self.vocab_size,
                                     size=(n, self.n_candidates))
            target_emb = self.table(targets)
            positive_scores = (context * target_emb).sum(axis=1)
            neg_emb = self.table(negatives.ravel()).reshape(
                n, self.n_candidates, -1
            )
            negative_scores = (
                context.reshape(n, 1, -1) * neg_emb
            ).sum(axis=2)
            all_scores = concat(
                [positive_scores.reshape(n, 1), negative_scores], axis=1
            )
            shift = Tensor(all_scores.data.max(axis=1, keepdims=True))
            log_z = ((all_scores - shift).exp().sum(axis=1)).log() + shift.reshape(n)
            losses.append((log_z - positive_scores).mean())
        total = losses[0]
        for item in losses[1:]:
            total = total + item
        return total * (1.0 / len(losses))

    def _source_matrix(self, entities):
        ids = self.data.entity_ids(entities)
        emb = self.table.all_embeddings()[ids]
        return emb

    _target_matrix = _source_matrix
