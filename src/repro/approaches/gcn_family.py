"""Neighborhood-based alignment approaches: GCNAlign and RDGCN.

Both encode the union graph of the two KGs with graph convolutions
(Eq. 3) and calibrate seed pairs with a margin loss.  GCNAlign adds an
attribute-bag channel; RDGCN initializes features from literals, weights
edges by relation specificity (its dual relation-aware graph, condensed)
and refines through highway-gated layers.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, get_optimizer
from ..embedding import GCNEncoder, normalized_adjacency
from .base import ApproachInfo, EmbeddingApproach, PairData
from .literals import name_vectors, value_word_vectors, vectors_to_matrix

__all__ = ["GCNAlign", "RDGCN"]


class GCNApproachBase(EmbeddingApproach):
    """Shared GCN training: full-graph forward + seed margin loss."""

    highway = False
    n_layers = 2
    relation_aware = False
    steps_per_epoch = 10
    lr_scale = 1.0  # literal-initialized variants refine gently

    def _setup(self, pair, split, rng):
        config = self.config
        self.data = PairData(pair, split, merge_seeds=False)
        self.seeds = self.data.seed_id_pairs(split.train)
        edges, weights = self._edges(pair)
        self.adjacency = normalized_adjacency(self.data.n_entities, edges, weights)
        self.encoders = self._build_encoders(pair, rng)
        parameters = [p for encoder, _ in self.encoders for p in encoder.parameters()]
        self.optimizer = get_optimizer(
            config.optimizer, parameters, config.lr * self.lr_scale
        )

    def _edges(self, pair) -> tuple[np.ndarray, np.ndarray | None]:
        triples = self.data.triples
        if not len(triples):
            return np.zeros((0, 2), dtype=np.int64), None
        edges = triples[:, [0, 2]]
        if not self.relation_aware:
            return edges, None
        # Relation-aware weighting (RDGCN's dual graph, condensed): edges
        # carried by rare relations are more alignment-discriminative.
        counts = np.bincount(triples[:, 1], minlength=self.data.n_relations)
        weights = 1.0 / np.sqrt(np.maximum(counts[triples[:, 1]], 1.0))
        return edges, weights

    def _build_encoders(self, pair, rng) -> list[tuple[GCNEncoder, float]]:
        """Return (encoder, blend weight) channels."""
        raise NotImplementedError

    def _parameters(self):
        return [p for encoder, _ in self.encoders for p in encoder.parameters()]

    def _run_epoch(self, epoch, rng):
        if not len(self.seeds):
            return 0.0
        config = self.config
        total = 0.0
        for _ in range(self.steps_per_epoch):
            self.optimizer.zero_grad()
            loss = Tensor(0.0)
            for encoder, _ in self.encoders:
                hidden = encoder()
                e1 = hidden.gather(self.seeds[:, 0])
                e2 = hidden.gather(self.seeds[:, 1])
                positive = (e1 - e2).abs().sum(axis=1)
                wrong = rng.integers(0, self.data.n_entities, size=len(self.seeds))
                negative = (e1 - hidden.gather(wrong)).abs().sum(axis=1)
                loss = loss + (positive - negative + config.margin).relu().mean()
            loss.backward()
            self.optimizer.step()
            total += float(loss.data)
        self.log.steps_run += self.steps_per_epoch
        return total / self.steps_per_epoch

    input_blend = 0.0  # weight of the raw input features at inference

    def _matrix(self, entities) -> np.ndarray:
        ids = self.data.entity_ids(entities)
        parts = []
        for encoder, weight in self.encoders:
            emb = encoder.embeddings()[ids]
            norms = np.linalg.norm(emb, axis=1, keepdims=True)
            parts.append(np.sqrt(weight) * emb / np.maximum(norms, 1e-12))
        if self.input_blend > 0.0:
            raw = self.encoders[0][0].features.data[ids]
            norms = np.linalg.norm(raw, axis=1, keepdims=True)
            parts = [np.sqrt(1.0 - self.input_blend) * p for p in parts]
            parts.append(np.sqrt(self.input_blend) * raw / np.maximum(norms, 1e-12))
        return np.concatenate(parts, axis=1)

    def _source_matrix(self, entities):
        return self._matrix(entities)

    _target_matrix = _source_matrix


class GCNAlign(GCNApproachBase):
    """Wang et al. (2018): GCN alignment with structure + attribute channels.

    The structure channel learns free features over the joint graph; the
    attribute channel propagates a constant bag-of-attributes signal.
    Attribute *names* are per-KG, so (as Figure 6 finds) this channel adds
    little without attribute alignment.
    """

    info = ApproachInfo(
        name="GCNAlign", relation_embedding="Neighbor", attribute_embedding="Att.",
        metric="manhattan", combination="Calibration", learning="Supervised",
        uses_attributes=True,
    )

    def _build_encoders(self, pair, rng):
        config = self.config
        encoders = [
            (
                GCNEncoder(
                    self.adjacency, in_dim=config.dim,
                    hidden_dims=[config.dim] * self.n_layers, rng=rng,
                ),
                0.85,
            )
        ]
        if config.use_attributes:
            features = self._attribute_bag_features(pair, dim=config.dim)
            encoders.append(
                (
                    GCNEncoder(
                        self.adjacency, in_dim=config.dim,
                        hidden_dims=[config.dim], rng=rng,
                        features=features, trainable_features=False,
                    ),
                    0.15,
                )
            )
        return encoders

    def _attribute_bag_features(self, pair, dim: int) -> np.ndarray:
        """Hashed bag-of-attribute-names per entity (no values)."""
        from zlib import crc32

        features = np.zeros((self.data.n_entities, dim))
        for side, kg in ((1, pair.kg1), (2, pair.kg2)):
            for entity, attribute, _ in kg.attribute_triples:
                row = self.data.entity_id(entity)
                column = crc32(f"{side}:{attribute}".encode("utf-8")) % dim
                features[row, column] += 1.0
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        return features / np.maximum(norms, 1e-12)


class RDGCN(GCNApproachBase):
    """Wu et al. (2019): relation-aware dual-graph convolutional network.

    Entity features start from literal embeddings (the paper initializes
    with word vectors), flow through relation-aware weighted convolutions
    and highway gates, and are calibrated on the seeds.  The literal
    initialization is what pushes it to the top of Table 5.
    """

    info = ApproachInfo(
        name="RDGCN", relation_embedding="Neighbor", attribute_embedding="Literal",
        metric="manhattan", combination="Calibration", learning="Supervised",
        uses_attributes=True, requires_attributes=True,
        uses_word_embeddings=True,
    )
    highway = True
    relation_aware = True
    steps_per_epoch = 4
    lr_scale = 0.1
    input_blend = 0.5

    def _build_encoders(self, pair, rng):
        config = self.config
        features = self._literal_features(pair)
        encoder = GCNEncoder(
            self.adjacency, in_dim=config.dim,
            hidden_dims=[config.dim] * self.n_layers, rng=rng,
            highway=True, features=features, trainable_features=True,
        )
        return [(encoder, 1.0)]

    def _literal_features(self, pair) -> np.ndarray:
        config = self.config
        if not config.use_attributes:
            rng = np.random.default_rng(config.seed)
            return rng.normal(scale=0.3, size=(self.data.n_entities, config.dim))
        lang1 = pair.metadata.get("lang1", "en")
        lang2 = pair.metadata.get("lang2", "en")
        features = np.zeros((self.data.n_entities, config.dim))
        for kg, lang in ((pair.kg1, lang1), (pair.kg2, lang2)):
            names = name_vectors(kg, language=lang, dim=config.dim, seed=config.seed)
            values = value_word_vectors(kg, language=lang, dim=config.dim, seed=config.seed)
            entities = sorted(kg.entities)
            matrix = 0.4 * vectors_to_matrix(names, entities, config.dim)
            matrix += 0.6 * vectors_to_matrix(values, entities, config.dim)
            rows = self.data.entity_ids(entities)
            features[rows] = matrix
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        return features / np.maximum(norms, 1e-12)
