"""Translation-based alignment approaches: MTransE, SEA, IPTransE, BootEA.

These four cover the paper's main interaction modes for translational
embeddings: embedding-space transformation (MTransE, SEA), parameter
sharing with relation paths and self-training (IPTransE), and parameter
swapping with limit-based loss, truncated negative sampling and
bootstrapping (BootEA).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..autodiff import Parameter, Tensor, get_optimizer
from ..obs import span
from ..embedding import (
    TransE,
    TruncatedSampler,
    limit_based_loss,
    logistic_loss,
    margin_ranking_loss,
    uniform_corrupt,
)
from .base import (
    ApproachConfig,
    ApproachInfo,
    AugmentationRecord,
    EmbeddingApproach,
    PairData,
)

__all__ = ["MTransE", "SEA", "IPTransE", "BootEA", "UnifiedTransApproach"]


# ---------------------------------------------------------------------------
# separate-spaces approaches (Transformation combination)
# ---------------------------------------------------------------------------
class MTransE(EmbeddingApproach):
    """Chen et al. (2017): TransE per KG + a learned linear transformation.

    The original trains with positives only (no negative sampling), which
    §5.2 identifies as its overfitting weakness; pass
    ``negative_sampling=True`` to reproduce the paper's ablation (+0.024
    Hits@1 on EN-FR-15K V1 in the original study).
    """

    info = ApproachInfo(
        name="MTransE", relation_embedding="Triple", attribute_embedding="-",
        metric="euclidean", combination="Transformation", learning="Supervised",
    )

    # models whose scores are unbounded similarities train better with the
    # logistic loss (the convention of their original papers)
    _LOGISTIC_MODELS = frozenset(
        {"distmult", "complex", "hole", "simple", "proje", "conve", "tucker"}
    )

    def __init__(self, config: ApproachConfig | None = None,
                 negative_sampling: bool = False, model_name: str = "transe"):
        super().__init__(config)
        self.negative_sampling = negative_sampling or model_name != "transe"
        self.model_name = model_name
        self.loss_name = (
            "logistic" if model_name in self._LOGISTIC_MODELS else "marginal"
        )

    def _setup(self, pair, split, rng):
        from ..embedding import get_relation_model

        config = self.config
        self.data = PairData(pair, split, merge_seeds=False)
        self.model = get_relation_model(self.model_name)(
            self.data.n_entities, self.data.n_relations, config.dim, rng
        )
        self.transform = Parameter(np.eye(config.dim), name="mtranse.M")
        self.seeds = self.data.seed_id_pairs(split.train)
        parameters = self.model.parameters() + [self.transform]
        self.optimizer = get_optimizer(config.optimizer, parameters, config.lr)
        self.optimizer.track_touched = config.lazy_normalize

    def _parameters(self):
        return self.model.parameters() + [self.transform]

    def _run_epoch(self, epoch, rng):
        config = self.config
        triples = self.data.triples
        order = rng.permutation(len(triples))
        total = 0.0
        batches = 0
        for start in range(0, len(triples), config.batch_size):
            batch = triples[order[start:start + config.batch_size]]
            self.optimizer.zero_grad()
            if self.negative_sampling:
                with span("neg_sampling"):
                    corrupted = uniform_corrupt(
                        batch, self.data.n_entities, config.n_negatives, rng
                    )
            with span("forward"):
                positive = self.model.score(batch[:, 0], batch[:, 1], batch[:, 2])
                if self.negative_sampling:
                    negative = self.model.score(
                        corrupted[:, 0], corrupted[:, 1], corrupted[:, 2]
                    )
                    if self.loss_name == "logistic":
                        loss = logistic_loss(positive, negative)
                    else:
                        loss = margin_ranking_loss(
                            positive,
                            negative.reshape(len(batch), config.n_negatives).mean(axis=1),
                            margin=config.margin,
                        )
                else:
                    loss = (-positive).mean()  # positive-energy minimization only
                loss = loss + self._alignment_loss()
            with span("backward"):
                loss.backward()
            with span("step"):
                self.optimizer.step()
            total += float(loss.data)
            batches += 1
        self.log.steps_run += batches
        self._normalize_model()
        return total / max(batches, 1)

    def _alignment_loss(self) -> Tensor:
        if not len(self.seeds):
            return Tensor(0.0)
        e1 = self.model.entities(self.seeds[:, 0])
        e2 = self.model.entities(self.seeds[:, 1])
        mapping = ((e1 @ self.transform) - e2).square().sum(axis=1).mean()
        # MTransE constrains the transformation towards orthogonality; it
        # also prevents rank collapse of M under aggressive optimization.
        identity = Tensor(np.eye(self.config.dim))
        orthogonality = (self.transform.T @ self.transform - identity).square().mean()
        return mapping + 0.5 * orthogonality

    def _source_matrix(self, entities):
        ids = self.data.entity_ids(entities)
        return self.model.entity_embeddings()[ids] @ self.transform.data

    def _target_matrix(self, entities):
        ids = self.data.entity_ids(entities)
        return self.model.entity_embeddings()[ids]


class SEA(MTransE):
    """Pei et al. (2019): transformation with negative sampling, cycle
    consistency and degree-aware regularization.

    The adversarial degree discriminator of the original is replaced by a
    direct degree-bucket norm regularizer with the same goal: stopping
    embedding norms from encoding entity degree (see DESIGN.md).
    """

    info = ApproachInfo(
        name="SEA", relation_embedding="Triple", attribute_embedding="-",
        metric="cosine", combination="Transformation", learning="Supervised",
    )

    def __init__(self, config: ApproachConfig | None = None):
        super().__init__(config, negative_sampling=True)

    def _setup(self, pair, split, rng):
        super()._setup(pair, split, rng)
        self.back_transform = Parameter(
            np.eye(self.config.dim), name="sea.M_back"
        )
        # degree buckets over all indexed entities, for the regularizer
        degrees = np.zeros(self.data.n_entities)
        for kg in (pair.kg1, pair.kg2):
            for entity, degree in kg.degrees().items():
                degrees[self.data.entity_id(entity)] += degree
        self._degree_buckets = [
            np.where((degrees >= low) & (degrees < high))[0]
            for low, high in ((0, 3), (3, 8), (8, np.inf))
        ]
        parameters = self._parameters()
        self.optimizer = get_optimizer(self.config.optimizer, parameters, self.config.lr)
        self.optimizer.track_touched = self.config.lazy_normalize

    def _parameters(self):
        return super()._parameters() + [self.back_transform]

    def _alignment_loss(self) -> Tensor:
        if not len(self.seeds):
            return Tensor(0.0)
        e1 = self.model.entities(self.seeds[:, 0])
        e2 = self.model.entities(self.seeds[:, 1])
        forward = ((e1 @ self.transform) - e2).square().sum(axis=1).mean()
        backward = ((e2 @ self.back_transform) - e1).square().sum(axis=1).mean()
        cycle = ((e1 @ self.transform) @ self.back_transform - e1).square().sum(axis=1).mean()
        return forward + backward + 0.5 * cycle + 0.1 * self._degree_regularizer()

    def _degree_regularizer(self) -> Tensor:
        """Penalize differing mean embedding norms across degree buckets."""
        means = []
        for bucket in self._degree_buckets:
            if len(bucket) == 0:
                continue
            emb = self.model.entities(bucket)
            means.append(emb.norm(axis=1).mean())
        if len(means) < 2:
            return Tensor(0.0)
        loss = Tensor(0.0)
        for a, b in zip(means[:-1], means[1:]):
            loss = loss + (a - b).square()
        return loss


# ---------------------------------------------------------------------------
# unified-space approaches (Sharing / Swapping combinations)
# ---------------------------------------------------------------------------
class UnifiedTransApproach(EmbeddingApproach):
    """Shared machinery: one TransE-style space over both KGs.

    Subclasses toggle seed merging (parameter sharing), triple swapping,
    the loss function and semi-supervised augmentation hooks.
    """

    merge_seeds = True
    swapping = False
    loss_name = "marginal"
    calibration_weight = 0.0

    def _setup(self, pair, split, rng):
        config = self.config
        self.data = PairData(pair, split, merge_seeds=self.merge_seeds)
        self.model = TransE(
            self.data.n_entities, self.data.n_relations, config.dim, rng
        )
        self.optimizer = get_optimizer(
            config.optimizer, self.model.parameters(), config.lr
        )
        self.optimizer.track_touched = config.lazy_normalize
        self.seeds = self.data.seed_id_pairs(split.train)
        # augmented alignment proposed during semi-supervised training
        self.augmented: dict[int, int] = {}
        self._swapped = self._make_swapped() if self.swapping else None

    def _parameters(self):
        return self.model.parameters()

    # -- swapping ------------------------------------------------------
    def _make_swapped(self) -> np.ndarray:
        """Parameter swapping: seed (and augmented) pairs exchange roles in
        each other's triples (§2.2.3)."""
        seed_map: dict[int, int] = {}
        for a, b in self.seeds:
            seed_map[int(a)] = int(b)
            seed_map[int(b)] = int(a)
        for a, b in self.augmented.items():
            seed_map[a] = b
            seed_map[b] = a
        swapped = []
        for head, relation, tail in self.data.triples:
            if head in seed_map:
                swapped.append((seed_map[head], relation, tail))
            if tail in seed_map:
                swapped.append((head, relation, seed_map[tail]))
        if not swapped:
            return np.zeros((0, 3), dtype=np.int64)
        return np.array(swapped, dtype=np.int64)

    def _train_triples(self) -> np.ndarray:
        if self._swapped is not None and len(self._swapped):
            return np.concatenate([self.data.triples, self._swapped])
        return self.data.triples

    # -- loss ----------------------------------------------------------
    def _negatives(self, batch: np.ndarray, rng) -> np.ndarray:
        return uniform_corrupt(
            batch, self.data.n_entities, self.config.n_negatives, rng
        )

    def _triple_loss(self, positive: Tensor, negative: Tensor) -> Tensor:
        if self.loss_name == "limited":
            return limit_based_loss(positive, negative)
        negative = negative.reshape(-1, self.config.n_negatives).mean(axis=1)
        return margin_ranking_loss(positive, negative, margin=self.config.margin)

    def _calibration_loss(self) -> Tensor:
        """Pull (non-merged) seed/augmented pairs together in the space."""
        pairs = [(int(a), int(b)) for a, b in self.seeds] + list(self.augmented.items())
        if self.calibration_weight <= 0.0 or not pairs:
            return Tensor(0.0)
        ids = np.array(pairs, dtype=np.int64)
        e1 = self.model.entities(ids[:, 0])
        e2 = self.model.entities(ids[:, 1])
        return self.calibration_weight * (e1 - e2).square().sum(axis=1).mean()

    def _run_epoch(self, epoch, rng):
        config = self.config
        triples = self._train_triples()
        order = rng.permutation(len(triples))
        total, batches = 0.0, 0
        for start in range(0, len(triples), config.batch_size):
            batch = triples[order[start:start + config.batch_size]]
            with span("neg_sampling"):
                corrupted = self._negatives(batch, rng)
            self.optimizer.zero_grad()
            with span("forward"):
                positive = self.model.score(batch[:, 0], batch[:, 1], batch[:, 2])
                negative = self.model.score(
                    corrupted[:, 0], corrupted[:, 1], corrupted[:, 2]
                )
                loss = self._triple_loss(positive, negative) + self._calibration_loss()
            with span("backward"):
                loss.backward()
            with span("step"):
                self.optimizer.step()
            total += float(loss.data)
            batches += 1
        self.log.steps_run += batches
        self._normalize_model()
        self._after_epoch(epoch, rng)
        return total / max(batches, 1)

    def _after_epoch(self, epoch, rng):
        """Semi-supervised hook; default no-op."""

    # -- crash-safe resume (docs/robustness.md) ------------------------
    def _extra_state(self):
        return {"augmented": [[int(a), int(b)]
                              for a, b in self.augmented.items()]}

    def _load_extra_state(self, state):
        self.augmented = {int(a): int(b)
                          for a, b in state.get("augmented", [])}
        if self.swapping:
            self._swapped = self._make_swapped()

    # -- embeddings ----------------------------------------------------
    def _source_matrix(self, entities):
        return self.model.entity_embeddings()[self.data.entity_ids(entities)]

    _target_matrix = _source_matrix

    # -- semi-supervised utilities --------------------------------------
    def _unaligned_candidates(self) -> tuple[list[str], list[str]]:
        """Entities not covered by train seeds (the augmentation pool)."""
        trained1 = {a for a, _ in self.split.train}
        trained2 = {b for _, b in self.split.train}
        pool1 = [a for a, _ in self.pair.alignment if a not in trained1]
        pool2 = [b for _, b in self.pair.alignment if b not in trained2]
        return pool1, pool2

    def _propose_pairs(
        self, threshold: float, mutual: bool
    ) -> list[tuple[str, str]]:
        """Nearest-neighbor alignment proposals above ``threshold``."""
        pool1, pool2 = self._unaligned_candidates()
        if not pool1 or not pool2:
            return []
        similarity = self.similarity_between(pool1, pool2, metric="cosine")
        best_for_source = similarity.argmax(axis=1)
        best_for_target = similarity.argmax(axis=0)
        proposals = []
        for i, j in enumerate(best_for_source):
            if similarity[i, j] < threshold:
                continue
            if mutual and best_for_target[j] != i:
                continue
            proposals.append((pool1[i], pool2[int(j)]))
        return proposals

    def _record_augmentation(self, iteration: int, proposed: list[tuple[str, str]]):
        """Score proposals against the (non-train) reference alignment."""
        gold = set(self.pair.alignment) - set(self.split.train)
        proposed_set = set(proposed)
        correct = len(proposed_set & gold)
        precision = correct / len(proposed_set) if proposed_set else 0.0
        recall = correct / len(gold) if gold else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0 else 0.0
        )
        self.log.augmentation.append(
            AugmentationRecord(
                iteration=iteration, n_proposed=len(proposed_set),
                precision=precision, recall=recall, f1=f1,
            )
        )


class IPTransE(UnifiedTransApproach):
    """Zhu et al. (2017): path-based embedding with iterative self-training.

    Adds a relation-path composition loss (``r1 + r2 ~ r3``, Eq. 2) and a
    self-training loop that augments the seed alignment *without* error
    editing — the weakness Figure 7 exposes.
    """

    info = ApproachInfo(
        name="IPTransE", relation_embedding="Path", attribute_embedding="-",
        metric="euclidean", combination="Sharing", learning="Semi-supervised",
    )
    merge_seeds = True
    calibration_weight = 0.5

    def __init__(self, config=None, augment_every: int = 10,
                 augment_threshold: float = 0.7):
        super().__init__(config)
        self.augment_every = augment_every
        self.augment_threshold = augment_threshold

    def _setup(self, pair, split, rng):
        super()._setup(pair, split, rng)
        self._paths = self._mine_paths()
        self._proposed: list[tuple[str, str]] = []

    def _extra_state(self):
        state = super()._extra_state()
        state["proposed"] = [[a, b] for a, b in self._proposed]
        return state

    def _load_extra_state(self, state):
        super()._load_extra_state(state)
        self._proposed = [(a, b) for a, b in state.get("proposed", [])]

    def _mine_paths(self, limit: int = 5000) -> np.ndarray:
        """(r1, r2, r3) ids where a 2-hop path co-exists with a direct edge."""
        out_edges: dict[int, list[tuple[int, int]]] = defaultdict(list)
        direct: dict[tuple[int, int], int] = {}
        for head, relation, tail in self.data.triples:
            out_edges[int(head)].append((int(relation), int(tail)))
            direct[(int(head), int(tail))] = int(relation)
        paths = []
        for head, first_hops in out_edges.items():
            for r1, middle in first_hops:
                for r2, tail in out_edges.get(middle, ()):
                    r3 = direct.get((head, tail))
                    if r3 is not None and tail != head:
                        paths.append((r1, r2, r3))
                        if len(paths) >= limit:
                            return np.array(paths, dtype=np.int64)
        if not paths:
            return np.zeros((0, 3), dtype=np.int64)
        return np.array(paths, dtype=np.int64)

    def _run_epoch(self, epoch, rng):
        loss = super()._run_epoch(epoch, rng)
        if len(self._paths):
            sample = self._paths[
                rng.choice(len(self._paths), size=min(512, len(self._paths)), replace=False)
            ]
            self.optimizer.zero_grad()
            with span("forward", phase="path"):
                r1 = self.model.relations(sample[:, 0])
                r2 = self.model.relations(sample[:, 1])
                r3 = self.model.relations(sample[:, 2])
                path_loss = ((r1 + r2) - r3).square().sum(axis=1).mean() * 0.3
            with span("backward", phase="path"):
                path_loss.backward()
            with span("step", phase="path"):
                self.optimizer.step()
            self.log.steps_run += 1
            loss += float(path_loss.data)
        return loss

    def _after_epoch(self, epoch, rng):
        if self.augment_every and epoch % self.augment_every == 0:
            # no mutual check and no editing: errors accumulate (Figure 7)
            proposals = self._propose_pairs(self.augment_threshold, mutual=False)
            for a, b in proposals:
                self.augmented[self.data.entity_id(a)] = self.data.entity_id(b)
            self._proposed = sorted(set(self._proposed) | set(proposals))
            self._record_augmentation(epoch // self.augment_every, self._proposed)


class BootEA(UnifiedTransApproach):
    """Sun et al. (2018): bootstrapping entity alignment.

    Limit-based loss, epsilon-truncated negative sampling, parameter
    swapping, and a bootstrapping loop *with* alignment editing (mutual
    nearest neighbors, conflict resolution) — the combination §5.2 credits
    for its top-3 performance.  ``bootstrap=False`` gives the ablation.
    """

    info = ApproachInfo(
        name="BootEA", relation_embedding="Triple", attribute_embedding="-",
        metric="cosine", combination="Swapping", learning="Semi-supervised",
    )
    merge_seeds = False
    swapping = True
    loss_name = "limited"
    calibration_weight = 1.0

    def __init__(self, config=None, bootstrap: bool = True,
                 bootstrap_every: int = 5, bootstrap_threshold: float = 0.65,
                 truncation: float = 0.2):
        super().__init__(config)
        self.bootstrap = bootstrap
        self.bootstrap_every = bootstrap_every
        self.bootstrap_threshold = bootstrap_threshold
        self.truncation = truncation

    def _setup(self, pair, split, rng):
        super()._setup(pair, split, rng)
        self.sampler = TruncatedSampler(
            self.data.n_entities, truncation=self.truncation
        )
        self._proposed_names: dict[str, str] = {}
        self._sampler_refreshed = False

    def _negatives(self, batch, rng):
        return self.sampler.corrupt(batch, self.config.n_negatives, rng)

    def _extra_state(self):
        state = super()._extra_state()
        state["proposed_names"] = [[a, b]
                                   for a, b in self._proposed_names.items()]
        state["sampler_refreshed"] = self._sampler_refreshed
        return state

    def _load_extra_state(self, state):
        super()._load_extra_state(state)
        self._proposed_names = {a: b
                                for a, b in state.get("proposed_names", [])}
        # Best-effort: the truncated sampler's neighbor cache is rebuilt
        # from the restored embeddings (the uninterrupted run built it
        # from slightly older ones), so BootEA resumes are equivalent in
        # expectation, not bit-for-bit — see docs/robustness.md.
        if state.get("sampler_refreshed"):
            self.sampler.refresh(self.model.entity_embeddings())
            self._sampler_refreshed = True

    def _after_epoch(self, epoch, rng):
        if epoch % self.bootstrap_every != 0:
            return
        self.sampler.refresh(self.model.entity_embeddings())
        self._sampler_refreshed = True
        if not self.bootstrap:
            return
        proposals = self._propose_pairs(self.bootstrap_threshold, mutual=True)
        # alignment editing: mutual proposals replace earlier conflicting
        # ones; a source entity keeps only its newest mutual match
        for a, b in proposals:
            self._proposed_names[a] = b
        # drop many-to-one conflicts, keeping the most similar source
        by_target: dict[str, str] = {}
        if self._proposed_names:
            sources = list(self._proposed_names)
            targets = [self._proposed_names[s] for s in sources]
            similarity = self.similarity_between(sources, targets, metric="cosine")
            scores = similarity[np.arange(len(sources)), np.arange(len(sources))]
            for source, target, score in sorted(
                zip(sources, targets, scores), key=lambda x: -x[2]
            ):
                if target not in by_target.values() and source not in by_target:
                    by_target[source] = target
        self._proposed_names = by_target
        self.augmented = {
            self.data.entity_id(a): self.data.entity_id(b)
            for a, b in self._proposed_names.items()
        }
        self._swapped = self._make_swapped()
        self._record_augmentation(
            epoch // self.bootstrap_every, list(self._proposed_names.items())
        )
