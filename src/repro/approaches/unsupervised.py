"""Unsupervised entity alignment (paper §7.2, future direction 1).

The paper observes that *no* surveyed approach works without seed
alignment and sketches two remedies: distilling distant supervision from
auxiliary features, and unsupervised cross-lingual word alignment
techniques such as orthogonal Procrustes.  This module implements that
sketch:

1. **distant supervision** — pseudo-seeds are collected from rare literal
   values shared across the KGs (no labels consumed);
2. two TransE spaces are trained independently, one per KG;
3. an **orthogonal Procrustes** rotation maps space 1 onto space 2 using
   the pseudo-seeds;
4. optional **iterative refinement** re-estimates the seed set from
   mutual nearest neighbors and re-solves Procrustes (the MUSE recipe).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..autodiff import get_optimizer
from ..embedding import TransE, margin_ranking_loss, uniform_corrupt
from ..kg import EntityIndex, KnowledgeGraph
from .base import ApproachConfig, ApproachInfo, EmbeddingApproach

__all__ = ["UnsupervisedProcrustes", "orthogonal_procrustes"]


def orthogonal_procrustes(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """The rotation ``R`` minimizing ``||source R - target||_F`` with
    ``R^T R = I`` (Schönemann 1966): ``R = U V^T`` from the SVD of
    ``source^T target``."""
    if source.shape != target.shape:
        raise ValueError(
            f"paired matrices must match: {source.shape} != {target.shape}"
        )
    u, _, vt = np.linalg.svd(source.T @ target)
    return u @ vt


class _SingleKGSpace:
    """A TransE embedding space for one KG (no cross-KG interaction)."""

    def __init__(self, kg: KnowledgeGraph, config: ApproachConfig,
                 rng: np.random.Generator):
        self.index = EntityIndex(sorted(kg.entities))
        relations = EntityIndex(sorted(kg.relations) or ["_none_"])
        triples = [
            (self.index.id_of(h), relations.id_of(r), self.index.id_of(t))
            for h, r, t in kg.relation_triples
        ]
        self.triples = (
            np.array(triples, dtype=np.int64)
            if triples else np.zeros((0, 3), dtype=np.int64)
        )
        self.model = TransE(len(self.index), len(relations), config.dim, rng)
        self.optimizer = get_optimizer(
            config.optimizer, self.model.parameters(), config.lr
        )
        self.config = config

    def train_epoch(self, rng: np.random.Generator) -> float:
        config = self.config
        if not len(self.triples):
            return 0.0
        order = rng.permutation(len(self.triples))
        total, batches = 0.0, 0
        for start in range(0, len(self.triples), config.batch_size):
            batch = self.triples[order[start:start + config.batch_size]]
            corrupted = uniform_corrupt(
                batch, len(self.index), config.n_negatives, rng
            )
            self.optimizer.zero_grad()
            positive = self.model.score(batch[:, 0], batch[:, 1], batch[:, 2])
            negative = self.model.score(
                corrupted[:, 0], corrupted[:, 1], corrupted[:, 2]
            ).reshape(len(batch), config.n_negatives).mean(axis=1)
            loss = margin_ranking_loss(positive, negative, config.margin)
            loss.backward()
            self.optimizer.step()
            total += float(loss.data)
            batches += 1
        self.model.normalize()
        return total / max(batches, 1)

    def embeddings(self, entities: list[str]) -> np.ndarray:
        ids = [self.index.id_of(e) for e in entities]
        return self.model.entity_embeddings()[ids]


class UnsupervisedProcrustes(EmbeddingApproach):
    """Unsupervised alignment via distant supervision + Procrustes.

    ``fit`` ignores ``split.train`` entirely (asserted in the tests): the
    seed substitute comes from rare shared literals.
    """

    info = ApproachInfo(
        name="UnsupProcrustes", relation_embedding="Triple",
        attribute_embedding="Literal", metric="cosine",
        combination="Transformation", learning="Supervised",
        uses_attributes=True, requires_attributes=True,
    )

    def __init__(self, config: ApproachConfig | None = None,
                 refinement_rounds: int = 2, literal_blend: float = 0.4):
        super().__init__(config)
        self.refinement_rounds = refinement_rounds
        self.literal_blend = literal_blend

    # ------------------------------------------------------------------
    def _setup(self, pair, split, rng):
        self.space1 = _SingleKGSpace(pair.kg1, self.config, rng)
        self.space2 = _SingleKGSpace(pair.kg2, self.config, rng)
        self.pseudo_seeds = self._distant_supervision(pair)
        self.rotation = np.eye(self.config.dim)
        from .literals import value_word_vectors

        lang1 = pair.metadata.get("lang1", "en")
        lang2 = pair.metadata.get("lang2", "en")
        self._literals1 = value_word_vectors(pair.kg1, lang1, dim=self.config.dim)
        self._literals2 = value_word_vectors(pair.kg2, lang2, dim=self.config.dim)

    @staticmethod
    def _distant_supervision(pair) -> list[tuple[str, str]]:
        """Pseudo-seeds: rare literal values appearing once in each KG."""
        def singletons(kg):
            holders: dict[str, list[str]] = defaultdict(list)
            for entity, _, value in kg.attribute_triples:
                holders[value].append(entity)
            return {v: es[0] for v, es in holders.items() if len(es) == 1}

        rare1 = singletons(pair.kg1)
        rare2 = singletons(pair.kg2)
        seen1: set[str] = set()
        seen2: set[str] = set()
        seeds = []
        for value, entity1 in rare1.items():
            entity2 = rare2.get(value)
            if entity2 is None or entity1 in seen1 or entity2 in seen2:
                continue
            seen1.add(entity1)
            seen2.add(entity2)
            seeds.append((entity1, entity2))
        return seeds

    def _run_epoch(self, epoch, rng):
        loss = self.space1.train_epoch(rng) + self.space2.train_epoch(rng)
        return loss

    def _parameters(self):
        return self.space1.model.parameters() + self.space2.model.parameters()

    def fit(self, pair, split):
        """Unsupervised: the training seeds in ``split`` are never read."""
        log = super().fit(pair, split)
        self._solve_procrustes()
        for _ in range(self.refinement_rounds):
            self._refine()
        return log

    # ------------------------------------------------------------------
    def _solve_procrustes(self) -> None:
        if not self.pseudo_seeds:
            return
        source = self.space1.embeddings([a for a, _ in self.pseudo_seeds])
        target = self.space2.embeddings([b for _, b in self.pseudo_seeds])
        self.rotation = orthogonal_procrustes(source, target)

    def _refine(self) -> None:
        """MUSE-style refinement: mutual nearest neighbors become the new
        seed set for the next Procrustes solve."""
        entities1 = self.space1.index.items()
        entities2 = self.space2.index.items()
        source = self._matrix(entities1, side=1)
        target = self._matrix(entities2, side=2)
        similarity = source @ target.T
        best1 = similarity.argmax(axis=1)
        best2 = similarity.argmax(axis=0)
        mutual = [
            (entities1[i], entities2[int(j)])
            for i, j in enumerate(best1)
            if best2[int(j)] == i
        ]
        if len(mutual) >= self.config.dim:
            self.pseudo_seeds = mutual
            self._solve_procrustes()

    # ------------------------------------------------------------------
    def _matrix(self, entities, side: int) -> np.ndarray:
        def normalize(matrix):
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            return matrix / np.maximum(norms, 1e-12)

        if side == 1:
            struct = normalize(self.space1.embeddings(entities) @ self.rotation)
            literals = self._literals1
        else:
            struct = normalize(self.space2.embeddings(entities))
            literals = self._literals2
        from .literals import vectors_to_matrix

        lit = normalize(vectors_to_matrix(literals, list(entities), self.config.dim))
        blend = self.literal_blend
        return np.concatenate(
            [np.sqrt(1.0 - blend) * struct, np.sqrt(blend) * lit], axis=1
        )

    def _source_matrix(self, entities):
        return self._matrix(entities, side=1)

    def _target_matrix(self, entities):
        return self._matrix(entities, side=2)
