"""Shared framework of the 12 entity alignment approaches.

Mirrors the paper's Figure 1/4 decomposition: an *embedding module* (the
subclass's ``_setup`` / ``_run_epoch``), an *alignment module* (distance
metric + inference, provided here), and an *interaction mode* declared in
each approach's :class:`ApproachInfo`.

Training follows the common protocol of Table 4: fixed relation-triple
batch size and early stopping when validation Hits@1 begins to drop
(checked every ``valid_every`` epochs), restoring the best snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..alignment import csls as csls_rescale
from ..alignment import infer_alignment, rank_metrics, similarity_matrix
from ..alignment.evaluate import (
    DanglingMetrics,
    RankMetrics,
    calibrate_abstention,
    nil_aware_metrics,
)
from ..autodiff.sparse import SparseGrad
from ..faults import fault_point
from ..kg import AlignmentSplit, EntityIndex, KGPair
from ..obs import get_registry, peak_rss_bytes, report_progress, span, \
    tracing_enabled
from ..obs.ledger import record_run
from .checkpointing import (
    CheckpointSignalHandler,
    TrainingCheckpointer,
    restore_log_fields,
)

__all__ = [
    "ApproachConfig",
    "ApproachInfo",
    "AugmentationRecord",
    "TrainingLog",
    "PairData",
    "EmbeddingApproach",
]


@dataclass
class ApproachConfig:
    """Hyper-parameters shared by all approaches (Table 4 conventions)."""

    dim: int = 32
    epochs: int = 50
    lr: float = 0.02
    batch_size: int = 1024
    n_negatives: int = 5
    margin: float = 1.5
    optimizer: str = "adam"
    seed: int = 0
    valid_every: int = 10
    early_stop: bool = True
    patience: int = 2  # consecutive non-improving checks before stopping
    use_attributes: bool = True
    use_relations: bool = True
    # With the sparse gradient path, per-epoch normalization can be
    # restricted to the rows actually updated this epoch (O(touched)
    # instead of O(|E|)); off by default to preserve the paper protocol.
    lazy_normalize: bool = False
    # Streaming quality probes (docs/observability.md): every
    # ``probe_every`` epochs fit() scores Hits@1/5/10 + MRR on a sampled
    # validation subset plus embedding/gradient health; 0 disables.
    # Probes draw from their own RNG stream keyed by (seed, epoch), so a
    # probe-on run stays bit-identical to a probe-off run.
    probe_every: int = 0
    probe_sample: int = 64
    # Divergence sentinels: abort at the epoch boundary (status
    # "diverged") on non-finite loss/params, loss EWMA explosion, or —
    # when probes run — a probe-Hits@1 collapse/stagnation.
    sentinel: bool = False
    sentinel_loss_factor: float = 10.0
    sentinel_hits_drop: float = 0.5
    sentinel_patience: int = 0  # stagnant probes before abort; 0 disables


@dataclass(frozen=True)
class ApproachInfo:
    """Table 1 categorization of one approach."""

    name: str
    relation_embedding: str     # Triple / Path / Neighbor
    attribute_embedding: str    # '-', 'Att.', 'Literal'
    metric: str                 # cosine / euclidean / manhattan
    combination: str            # Transformation / Sharing / Swapping / Calibration
    learning: str               # Supervised / Semi-supervised
    requires_attributes: bool = False
    uses_attributes: bool = False
    uses_word_embeddings: bool = False


@dataclass
class AugmentationRecord:
    """Quality of one semi-supervised augmentation round (Figure 7)."""

    iteration: int
    n_proposed: int
    precision: float
    recall: float
    f1: float


@dataclass
class TrainingLog:
    """What one ``fit`` run recorded."""

    losses: list[float] = field(default_factory=list)
    valid_history: list[tuple[int, float]] = field(default_factory=list)
    augmentation: list[AugmentationRecord] = field(default_factory=list)
    epochs_run: int = 0
    best_epoch: int = 0
    train_seconds: float = 0.0
    steps_run: int = 0  # optimizer steps, for throughput reporting
    # Populated by the telemetry spans in fit(): per-epoch wall time and
    # the process peak RSS observed at the end of training.  Benches
    # (bench_fig8_running_time) read these instead of re-timing.
    epoch_seconds: list[float] = field(default_factory=list)
    peak_rss_bytes: int = 0
    # Quality-probe curves (docs/observability.md): one dict per probe
    # epoch with sampled Hits@k/MRR plus embedding/gradient health; fully
    # deterministic, so it checkpoints and resumes bit-identically.
    probes: list[dict] = field(default_factory=list)
    # Wall time spent inside probes, for overhead accounting (never
    # serialized — timing is not part of the deterministic log).
    probe_seconds: float = 0.0
    # Crash-safety bookkeeping (docs/robustness.md): "completed" when the
    # run reached its natural end, "interrupted" when a signal stopped it
    # at an epoch boundary after a checkpoint, "resumed" when it picked up
    # from a checkpoint and then completed, "diverged" when a sentinel
    # aborted it (``diverged_reason`` says which rule tripped).
    status: str = "completed"
    diverged_reason: str = ""
    resumed_from_epoch: int = 0

    @property
    def steps_per_second(self) -> float:
        """Training throughput (0.0 when nothing was timed)."""
        if self.train_seconds <= 0.0 or self.steps_run <= 0:
            return 0.0
        return self.steps_run / self.train_seconds


class PairData:
    """Integer indexing of a KG pair for the embedding models.

    Entities of both KGs share one id space.  With ``merge_seeds`` the
    training alignment is folded by *parameter sharing*: each aligned
    training pair maps to a single id (the "Sharing" combination mode).
    """

    def __init__(self, pair: KGPair, split: AlignmentSplit, merge_seeds: bool = False):
        self.pair = pair
        self.split = split
        self.merged = merge_seeds
        alias: dict[str, str] = {}
        if merge_seeds:
            alias = {b: a for a, b in split.train}
        self._alias = alias

        self.entities1 = sorted(pair.kg1.entities)
        self.entities2 = sorted(pair.kg2.entities)
        self.ent_index = EntityIndex()
        for entity in self.entities1:
            self.ent_index.add(entity)
        for entity in self.entities2:
            self.ent_index.add(alias.get(entity, entity))
        # Entities referenced only by the alignment (possible after feature
        # masking drops all their triples) still need ids for evaluation.
        for left, right in pair.alignment:
            self.ent_index.add(left)
            self.ent_index.add(alias.get(right, right))

        self.rel_index = EntityIndex()
        for _, relation, _ in pair.kg1.relation_triples:
            self.rel_index.add(f"1:{relation}")
        for _, relation, _ in pair.kg2.relation_triples:
            self.rel_index.add(f"2:{relation}")

        self.triples1 = self._index_triples(pair.kg1.relation_triples, "1")
        self.triples2 = self._index_triples(pair.kg2.relation_triples, "2")
        self.triples = (
            np.concatenate([self.triples1, self.triples2])
            if len(self.triples1) or len(self.triples2)
            else np.zeros((0, 3), dtype=np.int64)
        )

    def _index_triples(self, triples, side: str) -> np.ndarray:
        if not triples:
            return np.zeros((0, 3), dtype=np.int64)
        rows = [
            (
                self.entity_id(head),
                self.rel_index.id_of(f"{side}:{relation}"),
                self.entity_id(tail),
            )
            for head, relation, tail in triples
        ]
        return np.array(rows, dtype=np.int64)

    @property
    def n_entities(self) -> int:
        return len(self.ent_index)

    @property
    def n_relations(self) -> int:
        return max(1, len(self.rel_index))

    def entity_id(self, entity: str) -> int:
        return self.ent_index.id_of(self._alias.get(entity, entity))

    def entity_ids(self, entities) -> np.ndarray:
        return np.array([self.entity_id(e) for e in entities], dtype=np.int64)

    def seed_id_pairs(self, pairs) -> np.ndarray:
        """Id pairs for an alignment list, shape (n, 2)."""
        if not pairs:
            return np.zeros((0, 2), dtype=np.int64)
        return np.array(
            [(self.entity_id(a), self.entity_id(b)) for a, b in pairs],
            dtype=np.int64,
        )


class EmbeddingApproach:
    """Template of an embedding-based entity alignment approach.

    Subclasses implement ``_setup`` (build models from the pair + split)
    and ``_run_epoch`` (one training pass returning the epoch loss), and
    provide entity matrices via ``_source_matrix`` / ``_target_matrix``.
    """

    info: ApproachInfo

    def __init__(self, config: ApproachConfig | None = None):
        self.config = config or ApproachConfig()
        self.log = TrainingLog()
        self.pair: KGPair | None = None
        self.split: AlignmentSplit | None = None

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _setup(self, pair: KGPair, split: AlignmentSplit, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _run_epoch(self, epoch: int, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def _parameters(self):
        """All trainable parameters (used for best-snapshot restore)."""
        raise NotImplementedError

    def _normalize_model(self) -> None:
        """Per-epoch entity renormalization for approaches with a
        ``self.model`` relation model and ``self.optimizer``.

        With ``lazy_normalize`` only the entity rows the optimizer
        updated since the last epoch are projected back onto the unit
        sphere — O(touched) instead of O(|E|) on the sparse path.
        """
        with span("normalize"):
            if self.config.lazy_normalize:
                rows = self.optimizer.consume_touched(self.model.entities.table)
                self.model.normalize(rows=rows)
            else:
                self.model.normalize()

    def _source_matrix(self, entities: list[str]) -> np.ndarray:
        """Embeddings of KG1 entities, mapped into the comparison space."""
        raise NotImplementedError

    def _target_matrix(self, entities: list[str]) -> np.ndarray:
        """Embeddings of KG2 entities in the comparison space."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        pair: KGPair,
        split: AlignmentSplit,
        *,
        checkpoint_dir: Path | str | None = None,
        checkpoint_every: int = 1,
        resume_from: Path | str | bool | None = None,
        quality_path: Path | str | None = None,
    ) -> TrainingLog:
        """Train on ``split.train``, early-stopping on ``split.valid``.

        Crash safety (docs/robustness.md): with ``checkpoint_dir`` set,
        a resumable checkpoint (parameters, optimizer state, RNG state,
        log, early-stopping bookkeeping) is written atomically every
        ``checkpoint_every`` epochs, and SIGTERM/SIGINT trigger one at
        the next epoch boundary before training stops with
        ``log.status == "interrupted"``.  ``resume_from`` (a checkpoint
        directory, or ``True`` for ``checkpoint_dir`` itself) restores
        that state and continues; a resumed run is *exactly* equivalent
        to one that never stopped — same RNG stream, same final
        embeddings.  Resuming from a directory without a completed
        checkpoint silently starts fresh, so kill-at-any-point retry
        loops need no special casing.

        Quality observability (docs/observability.md): with
        ``config.probe_every`` or ``config.sentinel`` set, a
        :class:`repro.obs.quality.QualityMonitor` runs after every epoch
        — streaming Hits@k probes into ``log.probes`` and divergence
        sentinels that latch an abort at the epoch boundary exactly like
        SIGTERM, with ``log.status == "diverged"``.  Probe curves are
        also appended to ``quality_path`` (defaults to
        ``checkpoint_dir/quality.jsonl`` when checkpointing).
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        self.pair = pair
        self.split = split
        self.log = TrainingLog()
        started = time.perf_counter()
        if resume_from is True:
            resume_from = checkpoint_dir
        elif resume_from is False:
            resume_from = None
        checkpointer = (TrainingCheckpointer(checkpoint_dir)
                        if checkpoint_dir is not None else None)
        interrupted = False
        diverged = False
        monitor = None
        if config.probe_every > 0 or config.sentinel:
            from ..obs.quality import QualityMonitor
            if quality_path is None and checkpoint_dir is not None:
                quality_path = Path(checkpoint_dir) / "quality.jsonl"
            # probe on validation pairs; fall back to test pairs so
            # valid-less runs still get curves (probes never feed training)
            monitor = QualityMonitor(
                self, split.valid or split.test, path=quality_path)
        with span("fit", approach=self.info.name, dataset=pair.name):
            with span("setup"):
                self._setup(pair, split, rng)

            best_hits = -1.0
            best_state: list[np.ndarray] | None = None
            best_epoch = 0
            bad_checks = 0
            start_epoch = 1
            restored = None
            if resume_from is not None:
                restored = TrainingCheckpointer(resume_from).try_restore(
                    self._parameters(),
                    optimizer=getattr(self, "optimizer", None),
                    rng=rng,
                )
            if restored is not None:
                best_hits = restored["best_hits"]
                best_epoch = restored["best_epoch"]
                bad_checks = restored["bad_checks"]
                best_state = restored["best_state"]
                start_epoch = restored["epoch"] + 1
                restore_log_fields(self.log, restored.get("log"))
                extra_state = dict(restored.get("extra") or {})
                quality_state = extra_state.pop("__quality__", None)
                if monitor is not None and quality_state:
                    monitor.load_state(quality_state)
                self._load_extra_state(extra_state)
                self.log.resumed_from_epoch = restored["epoch"]
            elif split.valid and config.valid_every:
                # epoch-0 snapshot: approaches with informative initialization
                # (literal features) must never end below their starting point
                with span("validate", epoch=0):
                    best_hits = self.evaluate(split.valid, hits_at=(1,)).hits_at(1)
                best_state = [p.data.copy() for p in self._parameters()]
            with CheckpointSignalHandler(enabled=checkpointer is not None) \
                    as signals:
                for epoch in range(start_epoch, config.epochs + 1):
                    epoch_started = time.perf_counter()
                    with span("epoch", epoch=epoch) as epoch_span:
                        loss = self._run_epoch(epoch, rng)
                        epoch_span.set(loss=loss)
                    self.log.epoch_seconds.append(time.perf_counter() - epoch_started)
                    self.log.losses.append(loss)
                    self.log.epochs_run = epoch
                    if tracing_enabled():
                        self._record_epoch_gauges(loss)
                    # one dict update when a heartbeat sink is installed
                    # (sweep workers); literally nothing otherwise
                    report_progress(stage="train", epoch=epoch,
                                    epochs=config.epochs,
                                    steps=self.log.steps_run)
                    diverge_reason = None
                    if monitor is not None:
                        diverge_reason = monitor.observe(epoch, loss)
                    stop = False
                    if split.valid and config.valid_every and epoch % config.valid_every == 0:
                        with span("validate", epoch=epoch):
                            hits1 = self.evaluate(split.valid, hits_at=(1,)).hits_at(1)
                        self.log.valid_history.append((epoch, hits1))
                        if hits1 >= best_hits:
                            best_hits = hits1
                            best_epoch = epoch
                            best_state = [p.data.copy() for p in self._parameters()]
                            bad_checks = 0
                        else:
                            bad_checks += 1
                            if config.early_stop and bad_checks >= config.patience:
                                stop = True
                    # the safe epoch boundary: batches done, model
                    # normalized, validation recorded
                    fault_point("epoch.end")
                    if checkpointer is not None and not stop and (
                        signals.requested
                        or diverge_reason is not None
                        or (checkpoint_every > 0
                            and epoch % checkpoint_every == 0)
                        or epoch == config.epochs
                    ):
                        extra = self._extra_state()
                        if monitor is not None:
                            extra = {**extra,
                                     "__quality__": monitor.state_dict()}
                        with span("checkpoint", epoch=epoch):
                            checkpointer.save(
                                epoch=epoch,
                                parameters=self._parameters(),
                                optimizer=getattr(self, "optimizer", None),
                                rng=rng,
                                log=self.log,
                                best_state=best_state,
                                best_hits=best_hits,
                                best_epoch=best_epoch,
                                bad_checks=bad_checks,
                                approach=self.info.name,
                                extra=extra,
                            )
                    if signals.requested:
                        interrupted = True
                        break
                    if diverge_reason is not None:
                        # sentinel abort: same epoch-boundary latch as the
                        # signal path, but the best snapshot still restores
                        # below so the model ends on its last good state
                        diverged = True
                        self.log.diverged_reason = diverge_reason
                        break
                    if stop:
                        break
            if best_state is not None and not interrupted:
                for parameter, saved in zip(self._parameters(), best_state):
                    parameter.data[...] = saved
        self.log.best_epoch = best_epoch or self.log.epochs_run
        self.log.train_seconds = time.perf_counter() - started
        self.log.peak_rss_bytes = peak_rss_bytes()
        if monitor is not None:
            self.log.probe_seconds = monitor.probe_seconds
            monitor.close()
        if interrupted:
            self.log.status = "interrupted"
        elif diverged:
            self.log.status = "diverged"
        elif restored is not None:
            self.log.status = "resumed"
        if checkpointer is not None:
            # no-op unless REPRO_LEDGER_PATH is set (docs/observability.md)
            record_run(
                "train", f"fit/{self.info.name}/{pair.name}",
                config={"approach": self.info.name, "dataset": pair.name,
                        "seed": config.seed, "epochs": config.epochs,
                        "dim": config.dim, "status": self.log.status},
                scalars={"epochs_run": self.log.epochs_run,
                         "train_seconds": self.log.train_seconds,
                         "steps_per_second": self.log.steps_per_second,
                         "resumed_from_epoch": self.log.resumed_from_epoch,
                         **({"probe_hits_at_1": monitor.last_hits1}
                            if monitor is not None
                            and monitor.last_hits1 is not None else {})},
            )
        return self.log

    # -- approach-specific resumable state -----------------------------
    def _extra_state(self) -> dict:
        """JSON-serializable state beyond parameters/optimizer/RNG that a
        resumed run needs (semi-supervised augmentation, samplers …).
        Default: none."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Restore what :meth:`_extra_state` captured; default no-op."""

    def _record_epoch_gauges(self, loss: float) -> None:
        """Export loss / last-batch grad norm / touched rows as gauges.

        Only called while tracing is enabled: the grad-norm pass walks
        every parameter gradient, which the untraced hot path must not
        pay for.
        """
        registry = get_registry()
        name = self.info.name
        registry.gauge("train.loss", approach=name).set(loss)
        grad_sq = 0.0
        touched = 0
        for parameter in self._parameters():
            grad = parameter.grad
            if grad is None:
                continue
            if isinstance(grad, SparseGrad):
                grad = grad.coalesce()
                grad_sq += float((grad.values ** 2).sum())
                touched += len(np.unique(grad.indices))
            else:
                grad_sq += float((np.asarray(grad) ** 2).sum())
                touched += parameter.shape[0] if parameter.ndim else 1
        registry.gauge("train.grad_norm", approach=name).set(grad_sq ** 0.5)
        registry.gauge("train.touched_rows", approach=name).set(touched)

    # ------------------------------------------------------------------
    # alignment module
    # ------------------------------------------------------------------
    def similarity_between(
        self,
        sources: list[str],
        targets: list[str],
        metric: str | None = None,
        csls_k: int = 0,
    ) -> np.ndarray:
        """Similarity matrix between named source and target entities."""
        matrix = similarity_matrix(
            self._source_matrix(sources),
            self._target_matrix(targets),
            metric or self.info.metric,
        )
        if csls_k > 0:
            matrix = csls_rescale(matrix, k=csls_k)
        return matrix

    def predict(
        self,
        pairs: list[tuple[str, str]],
        strategy: str = "greedy",
        metric: str | None = None,
        csls_k: int = 0,
    ) -> list[tuple[str, str]]:
        """Predicted alignment over the entities of ``pairs``."""
        sources = [a for a, _ in pairs]
        targets = [b for _, b in pairs]
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        assignment = infer_alignment(similarity, strategy)
        return [
            (source, targets[int(j)])
            for source, j in zip(sources, assignment)
            if j >= 0
        ]

    def evaluate(
        self,
        pairs: list[tuple[str, str]],
        hits_at: tuple[int, ...] = (1, 5, 10),
        metric: str | None = None,
        csls_k: int = 0,
        candidates: str = "test",
    ) -> RankMetrics:
        """Rank metrics over ``pairs``.

        ``candidates`` selects the target candidate set: ``"test"`` ranks
        against the targets of ``pairs`` (the compact OpenEA protocol);
        ``"all"`` ranks against every entity of KG2 — the harder setting
        whose cost §7.2 discusses for large KGs.
        """
        sources = [a for a, _ in pairs]
        if candidates == "test":
            targets = [b for _, b in pairs]
            gold = np.arange(len(pairs))
        elif candidates == "all":
            if self.pair is None:
                raise RuntimeError("fit() must run before candidates='all'")
            targets = sorted(self.pair.kg2.entities)
            index = {entity: i for i, entity in enumerate(targets)}
            gold = np.array([index[b] for _, b in pairs], dtype=np.int64)
        else:
            raise ValueError("candidates must be 'test' or 'all'")
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        return rank_metrics(similarity, gold, hits_at=hits_at)

    # ------------------------------------------------------------------
    # NIL-aware evaluation (dangling entities; docs/robustness.md)
    # ------------------------------------------------------------------
    def nil_similarity(
        self,
        pairs: list[tuple[str, str]],
        dangling: list[str],
        metric: str | None = None,
        csls_k: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Similarity + NIL gold labels over the *full* KG2 candidate set.

        Rows are the matchable sources of ``pairs`` followed by the
        ``dangling`` sources (KG1 entities with no counterpart); columns
        are every KG2 entity.  ``gold[i]`` is the counterpart's column,
        or ``-1`` for dangling rows — the inputs
        :func:`repro.alignment.evaluate.nil_aware_metrics` expects.
        """
        if self.pair is None:
            raise RuntimeError("fit() must run before nil_similarity()")
        sources = [a for a, _ in pairs] + list(dangling)
        targets = sorted(self.pair.kg2.entities)
        index = {entity: i for i, entity in enumerate(targets)}
        gold = np.array(
            [index[b] for _, b in pairs] + [-1] * len(dangling),
            dtype=np.int64,
        )
        similarity = self.similarity_between(sources, targets, metric, csls_k)
        return similarity, gold

    def calibrate_abstention(
        self,
        pairs: list[tuple[str, str]],
        dangling: list[str],
        method: str = "threshold",
        metric: str | None = None,
        csls_k: int = 0,
    ) -> float:
        """F1-maximizing abstention threshold on a calibration split."""
        similarity, gold = self.nil_similarity(pairs, dangling, metric, csls_k)
        return calibrate_abstention(similarity, gold, method=method)

    def evaluate_dangling(
        self,
        pairs: list[tuple[str, str]],
        dangling: list[str],
        method: str = "threshold",
        threshold: float | None = None,
        metric: str | None = None,
        csls_k: int = 0,
    ) -> DanglingMetrics:
        """NIL-aware metrics on held-out matchable + dangling sources.

        With ``threshold=None`` the threshold is calibrated in-sample —
        fine for smoke checks; proper evaluation calibrates on a
        disjoint split via :meth:`calibrate_abstention` first.
        """
        similarity, gold = self.nil_similarity(pairs, dangling, metric, csls_k)
        if threshold is None:
            threshold = calibrate_abstention(similarity, gold, method=method)
        return nil_aware_metrics(
            similarity, gold, method=method, threshold=threshold
        )
