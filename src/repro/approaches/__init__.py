"""The 12 embedding-based entity alignment approaches of the study."""

from .alinet import AliNet
from .attr_family import AttrE, IMUSE, JAPE, KDCoE, MultiKE
from .composer import ATTRIBUTE_CHANNELS, COMBINATIONS, compose_approach
from .base import (
    ApproachConfig,
    ApproachInfo,
    AugmentationRecord,
    EmbeddingApproach,
    PairData,
    TrainingLog,
)
from .checkpointing import (
    CheckpointCorruption,
    TrainingCheckpointer,
    TrainingInterrupted,
)
from .gcn_family import GCNAlign, RDGCN
from .literals import (
    char_vectors,
    description_vectors,
    name_vectors,
    value_word_vectors,
    vectors_to_matrix,
)
from .registry import (
    APPROACHES,
    EXTRA_APPROACHES,
    REQUIRED_INFORMATION,
    get_approach,
    required_information_table,
)
from .rsn import RSN4EA
from .trans_family import SEA, BootEA, IPTransE, MTransE, UnifiedTransApproach
from .unsupervised import UnsupervisedProcrustes, orthogonal_procrustes

__all__ = [
    "ApproachConfig", "ApproachInfo", "EmbeddingApproach", "PairData",
    "TrainingLog", "AugmentationRecord",
    "TrainingCheckpointer", "TrainingInterrupted", "CheckpointCorruption",
    "MTransE", "IPTransE", "JAPE", "KDCoE", "BootEA", "GCNAlign",
    "AttrE", "IMUSE", "SEA", "RSN4EA", "MultiKE", "RDGCN",
    "UnifiedTransApproach",
    "APPROACHES", "get_approach", "REQUIRED_INFORMATION",
    "required_information_table",
    "char_vectors", "description_vectors", "name_vectors",
    "value_word_vectors", "vectors_to_matrix",
    "UnsupervisedProcrustes", "orthogonal_procrustes",
    "AliNet", "EXTRA_APPROACHES",
    "compose_approach", "COMBINATIONS", "ATTRIBUTE_CHANNELS",
]
