"""Crash-safe training checkpoints: save/resume a ``fit`` mid-run.

A SIGTERM or OOM at epoch 49/50 must not cost 49 epochs.  The
:class:`TrainingCheckpointer` persists everything ``fit`` needs to
continue *exactly* where it stopped:

* every trainable parameter matrix,
* the optimizer ``state_dict`` (Adam moments, momentum ``last_step``
  counters, Adagrad accumulators — see :mod:`repro.autodiff.optim`),
* the numpy bit-generator state, so the resumed run draws the same
  batch permutations and negative samples the uninterrupted run would,
* the :class:`~repro.approaches.base.TrainingLog` so far and the
  early-stopping bookkeeping (best snapshot, patience counter),
* an approach-specific ``extra`` dict (semi-supervised augmentation
  state).

Layout (one directory per run)::

    ckpt/
      MANIFEST.json          # epoch, rng state, log, sha256 of the state file
      state_ep000012.npz     # parameters + optimizer + best-snapshot arrays

The state file is written atomically first; the manifest — also
atomic — is promoted only after the state file is complete and hashed,
and always references a file that was fully written.  A crash at any
byte therefore leaves either the previous complete checkpoint or the
new one, never a torn readable mix; silent corruption (bit rot, a
partially-synced disk) fails the sha256 check cleanly at resume time
instead of training on garbage.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from pathlib import Path

import numpy as np

from ..faults import atomic_write_json, atomic_write_with, fault_point, sha256_file

__all__ = [
    "CheckpointCorruption",
    "TrainingInterrupted",
    "TrainingCheckpointer",
    "CheckpointSignalHandler",
]

_MANIFEST = "MANIFEST.json"
_SCHEMA = 1


class CheckpointCorruption(RuntimeError):
    """A checkpoint exists but fails validation (torn file, bad hash)."""


class TrainingInterrupted(RuntimeError):
    """Training stopped early at a safe boundary (signal or injected
    fault) after writing a resumable checkpoint."""

    def __init__(self, message: str, checkpoint_dir: Path | None = None):
        super().__init__(message)
        self.checkpoint_dir = checkpoint_dir


class TrainingCheckpointer:
    """Reads and writes resumable training checkpoints in one directory."""

    def __init__(self, directory: Path | str, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep

    # -- writing -------------------------------------------------------
    def save(
        self,
        *,
        epoch: int,
        parameters,
        optimizer=None,
        rng: np.random.Generator | None = None,
        log=None,
        best_state: list[np.ndarray] | None = None,
        best_hits: float = -1.0,
        best_epoch: int = 0,
        bad_checks: int = 0,
        approach: str = "",
        extra: dict | None = None,
    ) -> Path:
        """Write one complete checkpoint for the end of ``epoch``."""
        parameters = list(parameters)
        arrays: dict[str, np.ndarray] = {
            f"param_{index}": parameter.data
            for index, parameter in enumerate(parameters)
        }
        if best_state is not None:
            for index, saved in enumerate(best_state):
                arrays[f"best_{index}"] = saved
        if optimizer is not None:
            state = optimizer.state_dict()
            arrays["optimizer_lr"] = np.array(state["lr"])
            for index, slot in state["state"].items():
                for key, value in slot.items():
                    arrays[f"opt_{index}_{key}"] = np.asarray(value)
        state_path = self.directory / f"state_ep{epoch:06d}.npz"
        atomic_write_with(
            state_path,
            lambda handle: np.savez_compressed(handle, **arrays),
            site="checkpoint.write",
        )
        manifest = {
            "schema": _SCHEMA,
            "approach": approach,
            "epoch": int(epoch),
            "state_file": state_path.name,
            "sha256": sha256_file(state_path),
            "n_parameters": len(parameters),
            "has_best_state": best_state is not None,
            "best_hits": float(best_hits),
            "best_epoch": int(best_epoch),
            "bad_checks": int(bad_checks),
            "rng": rng.bit_generator.state if rng is not None else None,
            "log": _log_to_dict(log) if log is not None else None,
            "extra": dict(extra or {}),
        }
        atomic_write_json(self.directory / _MANIFEST, manifest,
                          site="checkpoint.manifest")
        self._prune(state_path.name)
        return state_path

    def _prune(self, current: str) -> None:
        """Drop state files beyond the ``keep`` most recent epochs."""
        states = sorted(self.directory.glob("state_ep*.npz"))
        for stale in states[:-self.keep]:
            if stale.name != current:
                stale.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def exists(self) -> bool:
        return self.manifest_path().is_file()

    def manifest(self) -> dict:
        """The verified manifest.

        Raises :class:`FileNotFoundError` when no checkpoint was ever
        completed, :class:`CheckpointCorruption` when one exists but its
        manifest is unreadable or its state file fails the sha256 check.
        """
        path = self.manifest_path()
        if not path.is_file():
            raise FileNotFoundError(f"no checkpoint manifest at {path}")
        fault_point("checkpoint.read", path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CheckpointCorruption(
                f"unreadable checkpoint manifest {path}: {error}"
            ) from error
        for key in ("epoch", "state_file", "sha256", "n_parameters"):
            if key not in data:
                raise CheckpointCorruption(
                    f"checkpoint manifest {path} is missing {key!r}"
                )
        state_path = self.directory / data["state_file"]
        if not state_path.is_file():
            raise CheckpointCorruption(
                f"checkpoint state file {state_path} is missing"
            )
        if sha256_file(state_path) != data["sha256"]:
            raise CheckpointCorruption(
                f"checkpoint state file {state_path} fails its sha256 "
                f"check (torn write or corruption); refusing to resume "
                f"from it"
            )
        return data

    def latest_epoch(self) -> int | None:
        """Epoch of the newest valid checkpoint, ``None`` when absent."""
        if not self.exists():
            return None
        return int(self.manifest()["epoch"])

    def restore(
        self,
        parameters,
        optimizer=None,
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Load the checkpoint into ``parameters``/``optimizer``/``rng``
        (all in place) and return the manifest augmented with the
        ``best_state`` arrays (``None`` when the checkpoint holds none).
        """
        data = self.manifest()
        parameters = list(parameters)
        if data["n_parameters"] != len(parameters):
            raise CheckpointCorruption(
                f"checkpoint holds {data['n_parameters']} parameters, "
                f"the approach has {len(parameters)}"
            )
        state_path = self.directory / data["state_file"]
        best_state: list[np.ndarray] | None = None
        with np.load(state_path, allow_pickle=False) as npz:
            for index, parameter in enumerate(parameters):
                saved = npz[f"param_{index}"]
                if saved.shape != parameter.data.shape:
                    raise CheckpointCorruption(
                        f"parameter {index} shape mismatch: checkpoint "
                        f"{saved.shape} != model {parameter.data.shape}"
                    )
                parameter.data[...] = saved
            if data.get("has_best_state"):
                best_state = []
                index = 0
                while f"best_{index}" in npz.files:
                    best_state.append(np.array(npz[f"best_{index}"]))
                    index += 1
            if optimizer is not None and "optimizer_lr" in npz.files:
                state: dict = {"lr": float(npz["optimizer_lr"]), "state": {}}
                for key in npz.files:
                    if not key.startswith("opt_"):
                        continue
                    index_str, slot_key = key[len("opt_"):].split("_", 1)
                    state["state"].setdefault(int(index_str), {})[slot_key] = \
                        npz[key]
                optimizer.load_state_dict(state)
        if rng is not None and data.get("rng") is not None:
            rng.bit_generator.state = data["rng"]
        result = dict(data)
        result["best_state"] = best_state
        return result

    def try_restore(self, parameters, optimizer=None, rng=None) -> dict | None:
        """:meth:`restore`, but ``None`` when no checkpoint exists yet.

        Corruption still raises: resuming silently from scratch when the
        operator pointed at a damaged checkpoint would hide data loss.
        """
        if not self.exists():
            return None
        return self.restore(parameters, optimizer=optimizer, rng=rng)


def _log_to_dict(log) -> dict:
    return {
        "losses": [float(x) for x in log.losses],
        "valid_history": [[int(e), float(h)] for e, h in log.valid_history],
        "epochs_run": int(log.epochs_run),
        "steps_run": int(log.steps_run),
        "epoch_seconds": [float(x) for x in log.epoch_seconds],
        "augmentation": [
            [rec.iteration, rec.n_proposed, rec.precision, rec.recall, rec.f1]
            for rec in log.augmentation
        ],
        # probe curves are deterministic (probe RNG is keyed by
        # (seed, epoch)), so resumed histories replay bit-identically;
        # status stays out — the *resumed* run decides its own status
        "probes": [dict(p) for p in log.probes],
        "diverged_reason": str(log.diverged_reason),
    }


def restore_log_fields(log, data: dict | None) -> None:
    """Copy checkpointed log fields back onto a fresh ``TrainingLog``."""
    if not data:
        return
    from .base import AugmentationRecord

    log.losses = [float(x) for x in data.get("losses", [])]
    log.valid_history = [(int(e), float(h))
                         for e, h in data.get("valid_history", [])]
    log.epochs_run = int(data.get("epochs_run", 0))
    log.steps_run = int(data.get("steps_run", 0))
    log.epoch_seconds = [float(x) for x in data.get("epoch_seconds", [])]
    log.augmentation = [
        AugmentationRecord(iteration=int(i), n_proposed=int(n),
                           precision=float(p), recall=float(r), f1=float(f))
        for i, n, p, r, f in data.get("augmentation", [])
    ]
    log.probes = [dict(p) for p in data.get("probes", [])]
    log.diverged_reason = str(data.get("diverged_reason", ""))


class CheckpointSignalHandler:
    """Turns SIGTERM/SIGINT into a checkpoint request at the next safe
    epoch boundary.

    Installed only around a checkpointing ``fit`` and only in the main
    thread (signal handlers cannot be set elsewhere).  The first signal
    sets :attr:`requested`; a second one falls through to the previous
    handler, so a double Ctrl-C still interrupts immediately.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, enabled: bool = True):
        self.enabled = enabled and \
            threading.current_thread() is threading.main_thread()
        self.requested = False
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "CheckpointSignalHandler":
        if self.enabled:
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc):
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        return False

    def _handle(self, signum, frame):
        if self.requested:  # second signal: defer to the original handler
            previous = self._previous.get(signum)
            if callable(previous):
                previous(signum, frame)
                return
            raise KeyboardInterrupt
        self.requested = True
        print(f"[repro] received signal {signum}; will checkpoint and "
              f"stop at the next epoch boundary", file=sys.stderr)
