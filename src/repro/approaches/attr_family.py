"""Attribute-using alignment approaches: JAPE, AttrE, IMUSE, KDCoE, MultiKE.

All five extend the unified translational trainer with literal channels:

* JAPE — attribute *correlation* embedding (no values, Eq. 4);
* AttrE — character-level literal embedding (Eq. 5);
* IMUSE — string-similarity preprocessing that augments the seeds;
* KDCoE — co-training of relation and description embeddings;
* MultiKE — name / relation / attribute multi-view combination.
"""

from __future__ import annotations

import numpy as np

from ..embedding.attribute import AC2Vec
from ..text import string_similarity
from .base import ApproachConfig, ApproachInfo
from .literals import (
    char_vectors,
    description_vectors,
    name_vectors,
    value_word_vectors,
    vectors_to_matrix,
)
from .trans_family import UnifiedTransApproach

__all__ = ["JAPE", "AttrE", "IMUSE", "KDCoE", "MultiKE"]


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


class LiteralBlendApproach(UnifiedTransApproach):
    """Shared plumbing: blend the structural embedding with fixed literal
    channels by weighted concatenation of row-normalized parts.

    Channels are per-side ``{entity: vector}`` maps built in ``_setup``.
    The ``use_attributes`` config flag disables every literal channel
    (the Figure 6 ablation); ``use_relations=False`` empties the triple
    set (the Table 8 feature study).
    """

    structure_weight = 1.0

    def _setup(self, pair, split, rng):
        super()._setup(pair, split, rng)
        if not self.config.use_relations:
            self.data.triples = np.zeros((0, 3), dtype=np.int64)
            if self._swapped is not None:
                self._swapped = np.zeros((0, 3), dtype=np.int64)
        self.lang1 = pair.metadata.get("lang1", "en")
        self.lang2 = pair.metadata.get("lang2", "en")
        # channels: list of (weight, vectors_kg1, vectors_kg2)
        self.channels: list[tuple[float, dict, dict]] = []
        if self.config.use_attributes:
            self._build_channels(pair, rng)

    def _build_channels(self, pair, rng) -> None:
        raise NotImplementedError

    # -- literal pull --------------------------------------------------
    # Several approaches (AttrE via characters, KDCoE via descriptions)
    # drag entity embeddings towards a learned projection of a fixed
    # literal representation; because that representation is shared (or
    # anchored) across KGs, the pull fuses the two embedding spaces.
    def _register_pull(self, vecs1: dict, vecs2: dict, weight: float) -> None:
        rows, targets = [], []
        for vecs in (vecs1, vecs2):
            for entity, vec in vecs.items():
                rows.append(self.data.entity_id(entity))
                targets.append(vec)
        if not rows:
            return
        from ..autodiff import Parameter, get_optimizer

        self._pull_rows = np.array(rows, dtype=np.int64)
        self._pull_targets = np.array(targets)
        self._pull_weight = weight
        self._pull_projection = Parameter(
            np.eye(self.config.dim), name=f"{self.info.name.lower()}.literal_proj"
        )
        self.optimizer = get_optimizer(
            self.config.optimizer,
            self.model.parameters() + [self._pull_projection],
            self.config.lr,
        )
        self.optimizer.track_touched = self.config.lazy_normalize

    def _parameters(self):
        params = super()._parameters()
        if getattr(self, "_pull_projection", None) is not None:
            params = params + [self._pull_projection]
        return params

    def _calibration_loss(self):
        loss = super()._calibration_loss()
        if getattr(self, "_pull_projection", None) is None:
            return loss
        from ..autodiff import Tensor

        entities = self.model.entities(self._pull_rows)
        projected = Tensor(self._pull_targets) @ self._pull_projection
        pull = (entities - projected).square().sum(axis=1).mean()
        return loss + self._pull_weight * pull

    def _matrix_for(self, entities: list[str], side: int) -> np.ndarray:
        struct = self.model.entity_embeddings()[self.data.entity_ids(entities)]
        parts = [np.sqrt(self.structure_weight) * _normalize_rows(struct)]
        for weight, vecs1, vecs2 in self.channels:
            vectors = vecs1 if side == 1 else vecs2
            matrix = vectors_to_matrix(vectors, entities, self.config.dim)
            parts.append(np.sqrt(weight) * _normalize_rows(matrix))
        return np.concatenate(parts, axis=1)

    def _entity_attr_vectors(self, kg, index, embeddings, side) -> dict:
        out: dict[str, np.ndarray] = {}
        counts: dict[str, int] = {}
        for entity, attribute, _ in kg.attribute_triples:
            vec = embeddings[index[f"{side}:{attribute}"]]
            if entity not in out:
                out[entity] = vec.copy()
                counts[entity] = 1
            else:
                out[entity] += vec
                counts[entity] += 1
        return {entity: out[entity] / counts[entity] for entity in out}

    def _source_matrix(self, entities):
        return self._matrix_for(entities, side=1)

    def _target_matrix(self, entities):
        return self._matrix_for(entities, side=2)


class JAPE(LiteralBlendApproach):
    """Sun et al. (2017): joint attribute-preserving embedding.

    The attribute channel embeds *attributes* (not values) by their
    co-occurrence (Eq. 4) — trained with skip-gram-with-negative-sampling
    over per-entity attribute sets — and represents an entity as the mean
    of its attribute vectors.  Cross-KG correlation only arises through
    seed entities whose attribute sets are merged, which is why the signal
    is coarse (Figure 6 finds little gain on D-Y).
    """

    info = ApproachInfo(
        name="JAPE", relation_embedding="Triple", attribute_embedding="Att.",
        metric="cosine", combination="Sharing", learning="Supervised",
        uses_attributes=True,
    )
    merge_seeds = True
    structure_weight = 0.85

    def _build_channels(self, pair, rng) -> None:
        attr_dim = self.config.dim
        attrs = sorted(
            {f"1:{a}" for a in pair.kg1.attributes}
            | {f"2:{a}" for a in pair.kg2.attributes}
        )
        index = {attribute: i for i, attribute in enumerate(attrs)}
        if not attrs:
            return
        # attribute sets per merged entity id: seeds pool cross-KG attributes
        sets: dict[int, set[int]] = {}
        for side, kg in ((1, pair.kg1), (2, pair.kg2)):
            for entity, attribute, _ in kg.attribute_triples:
                eid = self.data.entity_id(entity)
                sets.setdefault(eid, set()).add(index[f"{side}:{attribute}"])
        model = AC2Vec(
            len(attrs), dim=attr_dim, seed=self.config.seed
        ).fit(sets)
        embeddings = model.embeddings
        vecs1 = self._entity_attr_vectors(pair.kg1, index, embeddings, side=1)
        vecs2 = self._entity_attr_vectors(pair.kg2, index, embeddings, side=2)
        self.channels = [(1.0 - self.structure_weight, vecs1, vecs2)]



def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class AttrE(LiteralBlendApproach):
    """Trsedya et al. (2019): attribute character embeddings.

    Entities gain a character-level literal vector (Eq. 5's ``comb``);
    character composition transfers across KGs without any attribute
    alignment, but degrades across languages because the pseudo-
    translation rewrites characters — the cross-lingual failure mode the
    paper notes for character-based literal embedding.
    """

    info = ApproachInfo(
        name="AttrE", relation_embedding="Triple", attribute_embedding="Literal",
        metric="cosine", combination="Sharing", learning="Supervised",
        uses_attributes=True, requires_attributes=True,
    )
    merge_seeds = True
    structure_weight = 0.5
    char_pull_weight = 0.3

    def _build_channels(self, pair, rng) -> None:
        vecs1 = char_vectors(pair.kg1, dim=self.config.dim, seed=self.config.seed)
        vecs2 = char_vectors(pair.kg2, dim=self.config.dim, seed=self.config.seed)
        self.channels = [(1.0 - self.structure_weight, vecs1, vecs2)]
        # AttrE's core mechanism: the character space is shared across KGs,
        # so pulling each entity towards a (learned projection of) its
        # character representation drags both KGs into one space (Eq. 5).
        self._register_pull(vecs1, vecs2, self.char_pull_weight)


class IMUSE(LiteralBlendApproach):
    """He et al. (2019): interactive multi-source entity alignment.

    Preprocessing collects extra "seeds" from high string-similarity
    literal matches (a bivariate blocking on rare values); the errors this
    introduces are exactly what §5.2 blames for its mixed attribute gains.
    The collected pairs join the training alignment; inference blends a
    word-embedded value channel.
    """

    info = ApproachInfo(
        name="IMUSE", relation_embedding="Triple", attribute_embedding="Literal",
        metric="cosine", combination="Sharing", learning="Supervised",
        uses_attributes=True, requires_attributes=True,
    )
    merge_seeds = True
    structure_weight = 0.6

    def __init__(self, config: ApproachConfig | None = None,
                 preprocess_threshold: float = 0.85):
        super().__init__(config)
        self.preprocess_threshold = preprocess_threshold
        self.collected_pairs: list[tuple[str, str]] = []

    def _setup(self, pair, split, rng):
        if self.config.use_attributes:
            self.collected_pairs = self._collect_string_pairs(pair, split)
            if self.collected_pairs:
                split = type(split)(
                    train=list(split.train) + self.collected_pairs,
                    valid=split.valid,
                    test=split.test,
                )
                # merged split may violate 1-1; dedupe conservatively
                seen1, seen2, train = set(), set(), []
                for a, b in split.train:
                    if a in seen1 or b in seen2:
                        continue
                    seen1.add(a)
                    seen2.add(b)
                    train.append((a, b))
                split = type(split)(train=train, valid=split.valid, test=split.test)
        super()._setup(pair, split, rng)

    def _collect_string_pairs(self, pair, split) -> list[tuple[str, str]]:
        """Block on rare literal values; keep near-identical matches."""
        def rare_values(kg):
            by_value: dict[str, list[str]] = {}
            for entity, _, value in kg.attribute_triples:
                by_value.setdefault(value, []).append(entity)
            return {v: ents[0] for v, ents in by_value.items() if len(ents) == 1}

        rare1 = rare_values(pair.kg1)
        rare2 = rare_values(pair.kg2)
        known1 = {a for a, _ in split.train} | {a for a, _ in split.valid}
        known2 = {b for _, b in split.train} | {b for _, b in split.valid}
        collected = []
        for value, entity1 in rare1.items():
            if entity1 in known1:
                continue
            entity2 = rare2.get(value)
            if entity2 is not None and entity2 not in known2:
                collected.append((entity1, entity2))
                continue
        # fuzzy pass: rare values within the same length bucket (capped)
        buckets: dict[int, list[str]] = {}
        for value in rare2:
            buckets.setdefault(len(value) // 4, []).append(value)
        budget = 4000
        for value, entity1 in rare1.items():
            if budget <= 0:
                break
            if entity1 in known1 or value in rare2:
                continue
            for candidate in buckets.get(len(value) // 4, ())[:20]:
                budget -= 1
                if string_similarity(value, candidate) >= self.preprocess_threshold:
                    entity2 = rare2[candidate]
                    if entity2 not in known2:
                        collected.append((entity1, entity2))
                    break
        return collected

    def _build_channels(self, pair, rng) -> None:
        vecs1 = value_word_vectors(
            pair.kg1, language=self.lang1, dim=self.config.dim, seed=self.config.seed
        )
        vecs2 = value_word_vectors(
            pair.kg2, language=self.lang2, dim=self.config.dim, seed=self.config.seed
        )
        self.channels = [(1.0 - self.structure_weight, vecs1, vecs2)]


class KDCoE(LiteralBlendApproach):
    """Chen et al. (2018): co-training of KG embeddings and descriptions.

    Two orthogonal feature sets — relation triples and textual
    descriptions — alternately propose new training pairs for each other.
    Entities without a description can never be proposed by the text
    model, capping the augmentation (Figure 7's flat KDCoE curves).
    """

    info = ApproachInfo(
        name="KDCoE", relation_embedding="Triple", attribute_embedding="Literal",
        metric="euclidean", combination="Transformation", learning="Semi-supervised",
        uses_attributes=True, requires_attributes=True,
        uses_word_embeddings=True,
    )
    merge_seeds = True
    calibration_weight = 0.5
    structure_weight = 0.5

    def __init__(self, config: ApproachConfig | None = None,
                 cotrain_every: int = 10, threshold: float = 0.85):
        super().__init__(config)
        self.cotrain_every = cotrain_every
        self.threshold = threshold

    desc_pull_weight = 0.2

    def _build_channels(self, pair, rng) -> None:
        self.desc1 = description_vectors(
            pair.kg1, language=self.lang1, dim=self.config.dim, seed=self.config.seed
        )
        self.desc2 = description_vectors(
            pair.kg2, language=self.lang2, dim=self.config.dim, seed=self.config.seed
        )
        self.channels = [(1.0 - self.structure_weight, self.desc1, self.desc2)]
        # KDCoE trains a description encoder jointly with the KG embedding;
        # the cross-lingually anchored description space pulls the two KGs
        # together for the entities that have a description.
        self._register_pull(self.desc1, self.desc2, self.desc_pull_weight)
        self._proposed: list[tuple[str, str]] = []

    def _after_epoch(self, epoch, rng):
        if not self.config.use_attributes:
            return
        if self.cotrain_every and epoch % self.cotrain_every == 0:
            iteration = epoch // self.cotrain_every
            if iteration % 2 == 1:
                proposals = self._propose_from_descriptions()
            else:
                proposals = self._propose_pairs(self.threshold, mutual=True)
            for a, b in proposals:
                self.augmented[self.data.entity_id(a)] = self.data.entity_id(b)
            self._proposed = sorted(set(self._proposed) | set(proposals))
            self._record_augmentation(iteration, self._proposed)

    def _propose_from_descriptions(self) -> list[tuple[str, str]]:
        """Mutual nearest neighbors in description space (described only)."""
        pool1, pool2 = self._unaligned_candidates()
        pool1 = [e for e in pool1 if e in self.desc1]
        pool2 = [e for e in pool2 if e in self.desc2]
        if not pool1 or not pool2:
            return []
        m1 = _normalize_rows(vectors_to_matrix(self.desc1, pool1, self.config.dim))
        m2 = _normalize_rows(vectors_to_matrix(self.desc2, pool2, self.config.dim))
        similarity = m1 @ m2.T
        best1 = similarity.argmax(axis=1)
        best2 = similarity.argmax(axis=0)
        return [
            (pool1[i], pool2[int(j)])
            for i, j in enumerate(best1)
            if similarity[i, j] >= self.threshold and best2[j] == i
        ]


class MultiKE(LiteralBlendApproach):
    """Zhang et al. (2019): multi-view KG embedding.

    Three views — name (rare short literal), relation structure, and
    attribute values — combined by weighted concatenation.  The
    discriminative name view drives its fast convergence and top-3 rank;
    removing attributes (Figure 6 / Table 8) collapses the name and
    attribute views, leaving only the relation view.
    """

    info = ApproachInfo(
        name="MultiKE", relation_embedding="Triple", attribute_embedding="Literal",
        metric="cosine", combination="Swapping", learning="Supervised",
        uses_attributes=True, requires_attributes=True,
        uses_word_embeddings=True,
    )
    merge_seeds = False
    swapping = True
    calibration_weight = 1.0
    structure_weight = 0.30

    def _build_channels(self, pair, rng) -> None:
        dim, seed = self.config.dim, self.config.seed
        names1 = name_vectors(pair.kg1, language=self.lang1, dim=dim, seed=seed)
        names2 = name_vectors(pair.kg2, language=self.lang2, dim=dim, seed=seed)
        attrs1 = value_word_vectors(pair.kg1, language=self.lang1, dim=dim, seed=seed)
        attrs2 = value_word_vectors(pair.kg2, language=self.lang2, dim=dim, seed=seed)
        self.channels = [
            (0.45, names1, names2),   # name view
            (0.25, attrs1, attrs2),   # attribute view
        ]
