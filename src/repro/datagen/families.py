"""The four benchmark dataset families of the paper.

``EN-FR`` and ``EN-DE`` are cross-lingual DBpedia pairs; ``D-W`` pairs
DBpedia with Wikidata (whose schema uses opaque numeric property IDs) and
``D-Y`` pairs DBpedia with YAGO (whose schema is very small).  Each family
comes in a sparse **V1** and a dense **V2** variant (Table 2).

:func:`source_pair` builds the large "source KG" pair the IDS sampling
algorithm is applied to; :func:`benchmark_pair` runs the full pipeline
(world -> views -> IDS sample) and returns a dataset of the requested
entity size, mirroring how the paper's datasets were produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..kg import KGPair
from .corruption import (
    corrupt_pair,
    corruption_manifest,
    corruption_rng,
    remove_counterparts,
    rewire_links,
)
from .views import ViewConfig, derive_view_with_manifest
from .world import WorldConfig, generate_world

__all__ = ["FAMILIES", "FamilySpec", "source_pair", "benchmark_pair",
           "smoke_pair"]


@dataclass(frozen=True)
class FamilySpec:
    """View configurations defining one dataset family."""

    name: str
    view1: ViewConfig
    view2: ViewConfig
    description: str


FAMILIES: dict[str, FamilySpec] = {
    "EN-FR": FamilySpec(
        name="EN-FR",
        view1=ViewConfig(name="EN", language="en", entity_prefix="en.db"),
        view2=ViewConfig(name="FR", language="fr", entity_prefix="fr.db",
                         triple_keep=0.78, attr_keep=0.65),
        description="cross-lingual DBpedia English-French",
    ),
    "EN-DE": FamilySpec(
        name="EN-DE",
        view1=ViewConfig(name="EN", language="en", entity_prefix="en.db"),
        view2=ViewConfig(name="DE", language="de", entity_prefix="de.db",
                         triple_keep=0.82, attr_keep=0.8,
                         attribute_merge=14),
        description="cross-lingual DBpedia English-German",
    ),
    "D-W": FamilySpec(
        name="D-W",
        view1=ViewConfig(name="DB", language="en", entity_prefix="dbpedia"),
        view2=ViewConfig(name="WD", language="en", entity_prefix="wikidata",
                         schema_naming="numeric", value_noise=0.65,
                         attr_keep=0.8, drop_descriptions=True,
                         numeric_style="decimal"),
        description="DBpedia-Wikidata; Wikidata schema is numeric IDs",
    ),
    "D-Y": FamilySpec(
        name="D-Y",
        view1=ViewConfig(name="DB", language="en", entity_prefix="dbpedia",
                         triple_keep=0.75),
        view2=ViewConfig(name="YG", language="en", entity_prefix="yago",
                         relation_merge=8, attribute_merge=10,
                         value_noise=0.12),
        description="DBpedia-YAGO; YAGO schema is very small",
    ),
}

_DENSITY = {"V1": 6.0, "V2": 12.0}


def source_pair(
    family: str | FamilySpec,
    n_entities: int = 2500,
    version: str = "V1",
    seed: int = 0,
) -> KGPair:
    """Build the (large) source KG pair for ``family``.

    ``version`` selects density: V2 doubles the world's average degree,
    matching the paper's construction of the dense variants.  ``family``
    may also be a :class:`FamilySpec` instance, for ad-hoc pairs (e.g.
    :func:`smoke_pair`) outside the four paper families.
    """
    spec = _get_family(family)
    family = spec.name
    if version not in _DENSITY:
        raise ValueError(f"version must be one of {sorted(_DENSITY)}, got {version!r}")
    world = generate_world(
        WorldConfig(
            n_entities=n_entities,
            avg_degree=_DENSITY[version],
            n_relations=max(12, n_entities // 60),
            n_attributes=max(12, n_entities // 100),
            seed=seed,
        )
    )
    view1 = replace(spec.view1, seed=seed)
    view2 = replace(spec.view2, seed=seed + 1)
    kg1, uri1, manifest1 = derive_view_with_manifest(world, view1)
    kg2, uri2, manifest2 = derive_view_with_manifest(world, view2)
    # Reference alignment: world entities present *with structure* in both
    # views.  Like the paper's sources (Table 3 reports zero isolates for
    # DBpedia), the source pair contains no isolated entities; filtering
    # can orphan further entities, so iterate to a fixpoint.
    shared = sorted(set(uri1) & set(uri2))
    while True:
        deg1, deg2 = kg1.degrees(), kg2.degrees()
        kept = [
            entity for entity in shared
            if deg1.get(uri1[entity], 0) > 0 and deg2.get(uri2[entity], 0) > 0
        ]
        if len(kept) == len(shared):
            break
        shared = kept
        kg1 = kg1.filtered({uri1[e] for e in shared})
        kg2 = kg2.filtered({uri2[e] for e in shared})
    alignment = [(uri1[entity], uri2[entity]) for entity in shared]
    metadata = {
        "family": family,
        "version": version,
        "lang1": spec.view1.language,
        "lang2": spec.view2.language,
        "seed": seed,
    }
    corrupted = _realise_view_corruption(
        view1, view2, kg1, kg2, alignment,
        manifest1, manifest2, uri1, uri2, seed,
    )
    if corrupted is not None:
        kg1, kg2, alignment, corruption = corrupted
        metadata["corruption"] = corruption
    return KGPair(
        kg1=kg1,
        kg2=kg2,
        alignment=alignment,
        name=f"{family}-{version}-source",
        metadata=metadata,
    )


def _realise_view_corruption(
    view1: ViewConfig,
    view2: ViewConfig,
    kg1,
    kg2,
    alignment: list[tuple[str, str]],
    manifest1: dict,
    manifest2: dict,
    uri1: dict[int, str],
    uri2: dict[int, str],
    seed: int,
) -> tuple | None:
    """Turn per-view corruption manifests into a corrupted pair.

    The views only *decide* (which world entities are dangling, which
    attribute triples are missing); the pair assembly realises dangling
    by removing the counterpart from the other KG, then rewires links.
    Returns ``None`` when every knob is zero, leaving the clean path
    untouched.
    """
    link_noise = max(view1.link_noise_rate, view2.link_noise_rate)
    dangling1 = {uri1[e] for e in manifest1["dangling"] if e in uri1}
    dangling2 = {uri2[e] for e in manifest2["dangling"] if e in uri2}
    if not (dangling1 or dangling2 or link_noise
            or manifest1["attrs_dropped"] or manifest2["attrs_dropped"]):
        return None
    kg1, kg2, links, realised1, realised2 = remove_counterparts(
        kg1, kg2, alignment, dangling1, dangling2
    )
    noisy_records: list[dict] = []
    if link_noise > 0.0:
        degrees2 = kg2.degrees()
        links, noisy_records = rewire_links(
            links, link_noise, corruption_rng(seed, "link-noise"),
            degree_of=lambda target: degrees2.get(target, 0),
        )
    manifest = corruption_manifest(
        max(view1.dangling_rate, view2.dangling_rate),
        link_noise,
        max(view1.attr_missing_rate, view2.attr_missing_rate),
        realised1, realised2, noisy_records,
        manifest1["attrs_dropped"], manifest2["attrs_dropped"],
    )
    return kg1, kg2, links, manifest


def benchmark_pair(
    family: str,
    size: int = 1500,
    version: str = "V1",
    seed: int = 0,
    oversample: float = 1.8,
    method: str = "ids",
    dangling_rate: float = 0.0,
    link_noise_rate: float = 0.0,
    attr_missing_rate: float = 0.0,
) -> KGPair:
    """Full dataset pipeline: source pair -> IDS sample of ``size`` entities.

    ``method`` selects the sampler: ``"ids"`` (the paper's algorithm),
    ``"ras"`` or ``"prs"`` (the baselines of Table 3), or ``"direct"``
    (skip sampling; fastest, for unit tests).

    The corruption knobs (:mod:`repro.datagen.corruption`) are applied
    *after* sampling, so the requested rates hold exactly on the final
    dataset; the manifest lands in ``metadata["corruption"]``.
    """
    source = source_pair(
        family,
        n_entities=int(size * oversample),
        version=version,
        seed=seed,
    )
    name = f"{family}-{_scale_label(size)}-{version}"
    if method == "direct":
        sampled = source
    else:
        from ..sampling import ids_sample, prs_sample, ras_sample

        samplers = {"ids": ids_sample, "ras": ras_sample, "prs": prs_sample}
        if method not in samplers:
            raise ValueError(f"unknown sampling method {method!r}")
        sampled = samplers[method](source, size, seed=seed)
    result = KGPair(
        kg1=sampled.kg1,
        kg2=sampled.kg2,
        alignment=sampled.alignment,
        name=name,
        metadata={**source.metadata, "size": size, "method": method},
    )
    return corrupt_pair(
        result,
        dangling_rate=dangling_rate,
        link_noise_rate=link_noise_rate,
        attr_missing_rate=attr_missing_rate,
        seed=seed,
    )


def smoke_pair(
    n_entities: int = 400,
    seed: int = 0,
    dangling_rate: float = 0.0,
    link_noise_rate: float = 0.0,
    attr_missing_rate: float = 0.0,
) -> KGPair:
    """Low-heterogeneity pair for robustness smoke tests.

    Both views keep nearly everything and share a language, so a strong
    approach aligns the clean entities almost perfectly — which makes
    the *corruption* knobs the only source of error and lets the smoke
    gate assert tight bounds (dangling-detection F1, matchable Hits@1)
    in seconds.  Corruption rides the ViewConfig knobs, so this also
    exercises the view-level manifest path end to end.
    """
    spec = FamilySpec(
        name="SMOKE",
        view1=ViewConfig(
            name="A", language="en", entity_prefix="a",
            entity_keep=0.98, triple_keep=0.97, attr_keep=0.95,
            value_noise=0.02, dangling_rate=dangling_rate,
            link_noise_rate=link_noise_rate,
            attr_missing_rate=attr_missing_rate,
        ),
        view2=ViewConfig(
            name="B", language="en", entity_prefix="b",
            entity_keep=0.98, triple_keep=0.97, attr_keep=0.95,
            value_noise=0.02,
        ),
        description="easy low-heterogeneity pair for robustness smokes",
    )
    return source_pair(spec, n_entities=n_entities, version="V2", seed=seed)


def _get_family(family: str | FamilySpec) -> FamilySpec:
    if isinstance(family, FamilySpec):
        return family
    try:
        return FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
        ) from None


def _scale_label(size: int) -> str:
    if size >= 1000:
        return f"{size // 1000}K"
    return str(size)
