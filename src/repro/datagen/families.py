"""The four benchmark dataset families of the paper.

``EN-FR`` and ``EN-DE`` are cross-lingual DBpedia pairs; ``D-W`` pairs
DBpedia with Wikidata (whose schema uses opaque numeric property IDs) and
``D-Y`` pairs DBpedia with YAGO (whose schema is very small).  Each family
comes in a sparse **V1** and a dense **V2** variant (Table 2).

:func:`source_pair` builds the large "source KG" pair the IDS sampling
algorithm is applied to; :func:`benchmark_pair` runs the full pipeline
(world -> views -> IDS sample) and returns a dataset of the requested
entity size, mirroring how the paper's datasets were produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..kg import KGPair
from .views import ViewConfig, derive_view
from .world import WorldConfig, generate_world

__all__ = ["FAMILIES", "FamilySpec", "source_pair", "benchmark_pair"]


@dataclass(frozen=True)
class FamilySpec:
    """View configurations defining one dataset family."""

    name: str
    view1: ViewConfig
    view2: ViewConfig
    description: str


FAMILIES: dict[str, FamilySpec] = {
    "EN-FR": FamilySpec(
        name="EN-FR",
        view1=ViewConfig(name="EN", language="en", entity_prefix="en.db"),
        view2=ViewConfig(name="FR", language="fr", entity_prefix="fr.db",
                         triple_keep=0.78, attr_keep=0.65),
        description="cross-lingual DBpedia English-French",
    ),
    "EN-DE": FamilySpec(
        name="EN-DE",
        view1=ViewConfig(name="EN", language="en", entity_prefix="en.db"),
        view2=ViewConfig(name="DE", language="de", entity_prefix="de.db",
                         triple_keep=0.82, attr_keep=0.8,
                         attribute_merge=14),
        description="cross-lingual DBpedia English-German",
    ),
    "D-W": FamilySpec(
        name="D-W",
        view1=ViewConfig(name="DB", language="en", entity_prefix="dbpedia"),
        view2=ViewConfig(name="WD", language="en", entity_prefix="wikidata",
                         schema_naming="numeric", value_noise=0.65,
                         attr_keep=0.8, drop_descriptions=True,
                         numeric_style="decimal"),
        description="DBpedia-Wikidata; Wikidata schema is numeric IDs",
    ),
    "D-Y": FamilySpec(
        name="D-Y",
        view1=ViewConfig(name="DB", language="en", entity_prefix="dbpedia",
                         triple_keep=0.75),
        view2=ViewConfig(name="YG", language="en", entity_prefix="yago",
                         relation_merge=8, attribute_merge=10,
                         value_noise=0.12),
        description="DBpedia-YAGO; YAGO schema is very small",
    ),
}

_DENSITY = {"V1": 6.0, "V2": 12.0}


def source_pair(
    family: str,
    n_entities: int = 2500,
    version: str = "V1",
    seed: int = 0,
) -> KGPair:
    """Build the (large) source KG pair for ``family``.

    ``version`` selects density: V2 doubles the world's average degree,
    matching the paper's construction of the dense variants.
    """
    spec = _get_family(family)
    if version not in _DENSITY:
        raise ValueError(f"version must be one of {sorted(_DENSITY)}, got {version!r}")
    world = generate_world(
        WorldConfig(
            n_entities=n_entities,
            avg_degree=_DENSITY[version],
            n_relations=max(12, n_entities // 60),
            n_attributes=max(12, n_entities // 100),
            seed=seed,
        )
    )
    view1 = replace(spec.view1, seed=seed)
    view2 = replace(spec.view2, seed=seed + 1)
    kg1, uri1 = derive_view(world, view1)
    kg2, uri2 = derive_view(world, view2)
    # Reference alignment: world entities present *with structure* in both
    # views.  Like the paper's sources (Table 3 reports zero isolates for
    # DBpedia), the source pair contains no isolated entities; filtering
    # can orphan further entities, so iterate to a fixpoint.
    shared = sorted(set(uri1) & set(uri2))
    while True:
        deg1, deg2 = kg1.degrees(), kg2.degrees()
        kept = [
            entity for entity in shared
            if deg1.get(uri1[entity], 0) > 0 and deg2.get(uri2[entity], 0) > 0
        ]
        if len(kept) == len(shared):
            break
        shared = kept
        kg1 = kg1.filtered({uri1[e] for e in shared})
        kg2 = kg2.filtered({uri2[e] for e in shared})
    alignment = [(uri1[entity], uri2[entity]) for entity in shared]
    return KGPair(
        kg1=kg1,
        kg2=kg2,
        alignment=alignment,
        name=f"{family}-{version}-source",
        metadata={
            "family": family,
            "version": version,
            "lang1": spec.view1.language,
            "lang2": spec.view2.language,
            "seed": seed,
        },
    )


def benchmark_pair(
    family: str,
    size: int = 1500,
    version: str = "V1",
    seed: int = 0,
    oversample: float = 1.8,
    method: str = "ids",
) -> KGPair:
    """Full dataset pipeline: source pair -> IDS sample of ``size`` entities.

    ``method`` selects the sampler: ``"ids"`` (the paper's algorithm),
    ``"ras"`` or ``"prs"`` (the baselines of Table 3), or ``"direct"``
    (skip sampling; fastest, for unit tests).
    """
    source = source_pair(
        family,
        n_entities=int(size * oversample),
        version=version,
        seed=seed,
    )
    name = f"{family}-{_scale_label(size)}-{version}"
    if method == "direct":
        sampled = source
    else:
        from ..sampling import ids_sample, prs_sample, ras_sample

        samplers = {"ids": ids_sample, "ras": ras_sample, "prs": prs_sample}
        if method not in samplers:
            raise ValueError(f"unknown sampling method {method!r}")
        sampled = samplers[method](source, size, seed=seed)
    return KGPair(
        kg1=sampled.kg1,
        kg2=sampled.kg2,
        alignment=sampled.alignment,
        name=name,
        metadata={**source.metadata, "size": size, "method": method},
    )


def _get_family(family: str) -> FamilySpec:
    try:
        return FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
        ) from None


def _scale_label(size: int) -> str:
    if size >= 1000:
        return f"{size // 1000}K"
    return str(size)
