"""Seeded corruption of benchmark pairs.

The clean datasets assume the best case the paper benchmarks: every test
entity has exactly one counterpart and the reference alignment is
noise-free.  Real settings (the BEAM-style noisy WDC-Wikidata matching,
the "Critical Assessment" hard-candidate study in PAPERS.md) violate all
of that.  This module implements the three corruption axes:

* **dangling entities** — entities whose counterpart is removed from the
  other KG, so they legitimately align to nothing (NIL);
* **link noise** — ground-truth links rewired to degree-similar hard
  negatives by swapping targets between sampled links;
* **missing attributes** — attribute triples dropped outright.

Every decision is seeded and recorded in a *corruption manifest* stored
under ``pair.metadata["corruption"]`` and persisted as
``corruption.json`` by :func:`repro.kg.io.save_pair` (atomic writers).
The manifest is the ground truth the NIL-aware evaluation in
:mod:`repro.alignment.evaluate` scores against.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..kg import KGPair, KnowledgeGraph

__all__ = [
    "CORRUPTION_SCHEMA",
    "corrupt_pair",
    "corruption_rng",
    "rewire_links",
    "remove_counterparts",
    "drop_attributes",
    "corruption_manifest",
    "dangling_sources",
]

# Manifest wire-format version (bump on incompatible changes).
CORRUPTION_SCHEMA = 1

Link = tuple[str, str]


def corruption_rng(seed: int, label: str) -> np.random.Generator:
    """Stable, label-scoped RNG (builtin hash() is process-randomized)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def remove_counterparts(
    kg1: KnowledgeGraph,
    kg2: KnowledgeGraph,
    links: list[Link],
    dangling1: set[str],
    dangling2: set[str],
) -> tuple[KnowledgeGraph, KnowledgeGraph, list[Link], list[str], list[str]]:
    """Realise dangling markings: delete counterparts, drop their links.

    ``dangling1`` names KG1 entities that should lose their KG2
    counterpart (and vice versa).  When both sides of a link are marked,
    KG1 wins: the entity stays in KG1 and the KG2 counterpart is
    removed.  Deleting entities can orphan *other* aligned entities
    (their only triples referenced the deleted one); those links are
    cleaned up and the surviving side is recorded as dangling too, so
    the manifest stays the exact ground truth.

    Returns the filtered KGs, the surviving links, and the realised
    dangling entity lists (sorted, present in their own KG).
    """
    removed1: set[str] = set()
    removed2: set[str] = set()
    kept_links: list[Link] = []
    realised1: set[str] = set()
    realised2: set[str] = set()
    for a, b in links:
        if a in dangling1:
            removed2.add(b)
            realised1.add(a)
        elif b in dangling2:
            removed1.add(a)
            realised2.add(b)
        else:
            kept_links.append((a, b))
    new_kg1 = kg1.filtered(kg1.entities - removed1) if removed1 else kg1
    new_kg2 = kg2.filtered(kg2.entities - removed2) if removed2 else kg2
    # Cleanup pass: links whose entity vanished as a side effect of the
    # deletions above become dangling on the surviving side.
    ents1, ents2 = new_kg1.entities, new_kg2.entities
    final_links: list[Link] = []
    for a, b in kept_links:
        if a in ents1 and b in ents2:
            final_links.append((a, b))
        elif a in ents1:
            realised1.add(a)
        elif b in ents2:
            realised2.add(b)
    return (
        new_kg1,
        new_kg2,
        final_links,
        sorted(e for e in realised1 if e in ents1),
        sorted(e for e in realised2 if e in ents2),
    )


def rewire_links(
    links: list[Link],
    rate: float,
    rng: np.random.Generator,
    degree_of=None,
) -> tuple[list[Link], list[dict]]:
    """Rewire ``round(rate * len(links))`` links to hard negatives.

    Targets are *swapped between* the sampled links (a cyclic rotation),
    so the rewired alignment stays 1-to-1 over the same entity sets.
    With ``degree_of`` (a ``target -> degree`` callable) the sampled
    links are ordered by target degree first, making each wrong target a
    degree-similar hard negative rather than a random entity.

    Returns the new link list (original order) and one record per
    rewired link: ``{"source", "old_target", "new_target"}``.
    """
    n_noisy = int(round(rate * len(links)))
    if n_noisy < 2:
        return list(links), []
    chosen = sorted(rng.choice(len(links), size=n_noisy, replace=False))
    if degree_of is not None:
        chosen.sort(key=lambda i: (degree_of(links[i][1]), i))
    new_links = list(links)
    records: list[dict] = []
    targets = [links[i][1] for i in chosen]
    rotated = targets[1:] + targets[:1]
    for index, new_target in zip(chosen, rotated):
        source, old_target = links[index]
        new_links[index] = (source, new_target)
        records.append({
            "source": source,
            "old_target": old_target,
            "new_target": new_target,
        })
    records.sort(key=lambda r: r["source"])
    return new_links, records


def drop_attributes(
    kg: KnowledgeGraph, rate: float, rng: np.random.Generator
) -> tuple[KnowledgeGraph, int]:
    """Drop each attribute triple with probability ``rate``."""
    if rate <= 0.0 or not kg.attribute_triples:
        return kg, 0
    mask = rng.random(len(kg.attribute_triples)) >= rate
    kept = [t for t, keep in zip(kg.attribute_triples, mask) if keep]
    dropped = len(kg.attribute_triples) - len(kept)
    if not dropped:
        return kg, 0
    return (
        KnowledgeGraph(
            relation_triples=list(kg.relation_triples),
            attribute_triples=kept,
            name=kg.name,
        ),
        dropped,
    )


def corruption_manifest(
    dangling_rate: float,
    link_noise_rate: float,
    attr_missing_rate: float,
    dangling1: list[str],
    dangling2: list[str],
    noisy_links: list[dict],
    attrs_dropped1: int,
    attrs_dropped2: int,
) -> dict:
    """Assemble the manifest stored under ``metadata["corruption"]``."""
    return {
        "schema": CORRUPTION_SCHEMA,
        "rates": {
            "dangling_rate": dangling_rate,
            "link_noise_rate": link_noise_rate,
            "attr_missing_rate": attr_missing_rate,
        },
        "dangling1": sorted(dangling1),
        "dangling2": sorted(dangling2),
        "noisy_links": noisy_links,
        "attrs_dropped1": attrs_dropped1,
        "attrs_dropped2": attrs_dropped2,
    }


def dangling_sources(pair: KGPair) -> list[str]:
    """KG1 entities the manifest marks as dangling (NIL ground truth)."""
    manifest = pair.metadata.get("corruption") or {}
    return list(manifest.get("dangling1", []))


def corrupt_pair(
    pair: KGPair,
    dangling_rate: float = 0.0,
    link_noise_rate: float = 0.0,
    attr_missing_rate: float = 0.0,
    seed: int = 0,
) -> KGPair:
    """Apply the three corruption axes to a clean benchmark pair.

    Applied *after* sampling so the realised rates hold on the final
    dataset.  With all rates zero the pair is returned unchanged (same
    object), keeping clean pipelines bit-identical.
    """
    for label, rate in (("dangling_rate", dangling_rate),
                        ("link_noise_rate", link_noise_rate),
                        ("attr_missing_rate", attr_missing_rate)):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"{label} must be in [0, 1), got {rate}")
    if not (dangling_rate or link_noise_rate or attr_missing_rate):
        return pair

    rng = corruption_rng(seed, f"corrupt:{pair.name}")
    links = list(pair.alignment)

    dangling1: set[str] = set()
    dangling2: set[str] = set()
    if dangling_rate > 0.0 and links:
        n_dangling = int(round(dangling_rate * len(links)))
        chosen = rng.choice(len(links), size=n_dangling, replace=False)
        sides = rng.integers(0, 2, size=n_dangling)
        for index, side in zip(sorted(int(i) for i in chosen), sides):
            a, b = links[index]
            if side == 0:
                dangling1.add(a)
            else:
                dangling2.add(b)
    kg1, kg2, links, realised1, realised2 = remove_counterparts(
        pair.kg1, pair.kg2, links, dangling1, dangling2
    )

    noisy_records: list[dict] = []
    if link_noise_rate > 0.0:
        degrees2 = kg2.degrees()
        links, noisy_records = rewire_links(
            links, link_noise_rate, rng,
            degree_of=lambda target: degrees2.get(target, 0),
        )

    kg1, attrs_dropped1 = drop_attributes(kg1, attr_missing_rate, rng)
    kg2, attrs_dropped2 = drop_attributes(kg2, attr_missing_rate, rng)

    manifest = corruption_manifest(
        dangling_rate, link_noise_rate, attr_missing_rate,
        realised1, realised2, noisy_records,
        attrs_dropped1, attrs_dropped2,
    )
    return KGPair(
        kg1=kg1,
        kg2=kg2,
        alignment=links,
        name=pair.name,
        metadata={**pair.metadata, "corruption": manifest},
    )
