"""Derive heterogeneous KG views from a synthetic world.

Each view is one "knowledge graph" of a benchmark pair.  Views introduce
the heterogeneity axes the paper studies:

* **incompleteness** — each view keeps only a fraction of the world's
  triples and entities, so the two KGs overlap but differ;
* **schema heterogeneity** — relations/attributes are renamed per view,
  either with fresh word names or with Wikidata-style numeric IDs
  (``P123``), and can be *merged* into a coarse schema (YAGO-style);
* **language heterogeneity** — literal values are pseudo-translated;
* **value heterogeneity** — literals are perturbed with a configurable
  noise rate.

Entity URIs are opaque per-view identifiers: as in the paper (which
deletes entity labels to avoid "tricky" features), the URI itself carries
no alignment signal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..kg import KnowledgeGraph
from ..text import pseudo_translate
from .world import World

__all__ = ["ViewConfig", "derive_view", "derive_view_with_manifest"]


@dataclass
class ViewConfig:
    """How one KG view is cut from the world."""

    name: str
    language: str = "en"
    entity_prefix: str = "kg"
    # "translate": world schema names pseudo-translated into the view's
    #   language (DBpedia-style shared ontology across language editions);
    # "words": fresh opaque word names (fully heterogeneous schema);
    # "numeric": Wikidata-style property IDs (P123).
    schema_naming: str = "translate"
    entity_keep: float = 0.95
    triple_keep: float = 0.85
    attr_keep: float = 0.7
    value_noise: float = 0.22
    relation_merge: int | None = None  # collapse schema to <= this many relations
    attribute_merge: int | None = None
    drop_descriptions: bool = False
    # "plain" keeps numeric literals as-is; "decimal" renders them in a
    # different format ("42" -> "42.0"), the Wikidata-style value
    # heterogeneity that defeats exact literal matching on D-W.
    numeric_style: str = "plain"
    seed: int = 0
    # --- corruption knobs (docs/datasets.md, "Corruption knobs") ---
    # All corruption decisions draw from a *separate* RNG stream, so any
    # combination of zero rates leaves the view bit-identical to a clean
    # run under the same seed (tested as a back-compat property).
    # Fraction of this view's entities marked *dangling*: their
    # counterpart is removed from the other view and the ground-truth
    # link dropped, so they legitimately align to nothing (NIL).
    dangling_rate: float = 0.0
    # Fraction of ground-truth links rewired to degree-similar hard
    # negatives (noisy reference alignment); applied at the pair level.
    link_noise_rate: float = 0.0
    # Severe attribute incompleteness: fraction of this view's surviving
    # attribute triples dropped outright (a pure subset of the clean view).
    attr_missing_rate: float = 0.0


def _schema_names(
    items: list[str], config: ViewConfig, kind: str, rng: np.random.Generator
) -> dict[str, str]:
    """Per-view renaming of relations or attributes."""
    merge = config.relation_merge if kind == "rel" else config.attribute_merge
    if merge is not None and merge < len(items):
        # YAGO-style coarse schema: many world relations share a view name.
        # Buckets borrow a representative's (translated) name so the coarse
        # schema stays lexically meaningful, as YAGO's is.
        buckets = rng.integers(0, merge, size=len(items))
        representative: dict[int, str] = {}
        names: dict[str, str] = {}
        for item, bucket in zip(items, buckets):
            bucket = int(bucket)
            if bucket not in representative:
                if config.schema_naming == "numeric":
                    representative[bucket] = _format_name(kind, bucket, config)
                else:
                    representative[bucket] = pseudo_translate(item, config.language)
            names[item] = representative[bucket]
        return names
    if config.schema_naming == "translate":
        return {item: pseudo_translate(item, config.language) for item in items}
    order = rng.permutation(len(items))
    return {
        item: _format_name(kind, int(index), config)
        for item, index in zip(items, order)
    }


def _format_name(kind: str, index: int, config: ViewConfig) -> str:
    if config.schema_naming == "numeric":
        # Wikidata-style opaque property IDs; offset so the two views of a
        # pair never collide by accident.
        return f"P{1000 + index}"
    return f"{config.name}:{kind}{index}"


def _perturb_value(value: str, rng: np.random.Generator) -> str:
    """Symbolic value noise: drop, duplicate or mangle a token."""
    tokens = value.split(" ")
    action = rng.random()
    if action < 0.4 and len(tokens) > 1:
        tokens.pop(rng.integers(len(tokens)))
    elif action < 0.7:
        tokens.append(tokens[rng.integers(len(tokens))])
    else:
        position = rng.integers(len(tokens))
        token = tokens[position]
        if token:
            cut = rng.integers(len(token))
            tokens[position] = token[:cut] + token[cut:][::-1]
    return " ".join(tokens)


def _rewrite_description(value: str, rng: np.random.Generator) -> str:
    """Per-view rewrite of a long literal: drop and shuffle tokens."""
    tokens = [t for t in value.split(" ") if rng.random() >= 0.25]
    if not tokens:
        tokens = value.split(" ")[:1]
    if len(tokens) > 2:
        i, j = rng.integers(len(tokens)), rng.integers(len(tokens))
        tokens[i], tokens[j] = tokens[j], tokens[i]
    return " ".join(tokens)


def derive_view(world: World, config: ViewConfig) -> tuple[KnowledgeGraph, dict[int, str]]:
    """Cut one KG view out of ``world``.

    Returns the view and the mapping from world entity id to the view's
    opaque entity URI (used to build the reference alignment).
    """
    kg, uri_of, _ = derive_view_with_manifest(world, config)
    return kg, uri_of


def derive_view_with_manifest(
    world: World, config: ViewConfig
) -> tuple[KnowledgeGraph, dict[int, str], dict]:
    """:func:`derive_view` plus the view's corruption manifest.

    The manifest records the *decisions* the corruption knobs made —
    which world entities were marked dangling and how many attribute
    triples were dropped — so the pair assembly step
    (:func:`repro.datagen.families.source_pair`) can realise them and
    persist the record (docs/datasets.md, "Corruption manifest").
    """
    # Stable per-view seed: builtin hash() is randomized per process and
    # would make dataset generation non-reproducible across runs.
    digest = hashlib.sha256(f"{config.seed}:{config.name}".encode("utf-8")).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
    # Corruption draws never touch the main stream: a clean run and a
    # corrupted run produce the same base view under the same seed.
    corrupt_rng = np.random.default_rng(int.from_bytes(digest[8:16], "big"))

    kept_entities = [
        entity for entity in range(world.n_entities)
        if rng.random() < config.entity_keep
    ]
    kept = set(kept_entities)

    # Opaque, permuted entity identifiers: no string signal across views.
    permutation = rng.permutation(world.n_entities)
    uri_of = {
        entity: f"{config.entity_prefix}/e{int(permutation[entity])}"
        for entity in kept_entities
    }

    dangling: list[int] = []
    if config.dangling_rate > 0.0 and kept_entities:
        mask = corrupt_rng.random(len(kept_entities)) < config.dangling_rate
        dangling = [e for e, hit in zip(kept_entities, mask) if hit]

    relation_names = _schema_names(world.relations, config, "rel", rng)
    attribute_names = _schema_names(world.attributes, config, "attr", rng)

    relation_triples = []
    for head, relation, tail in world.relation_triples:
        if head not in kept or tail not in kept:
            continue
        if rng.random() >= config.triple_keep:
            continue
        relation_triples.append((uri_of[head], relation_names[relation], uri_of[tail]))

    attribute_triples = []
    attrs_dropped = 0
    for entity, attribute, value in world.attribute_triples:
        if entity not in kept:
            continue
        if attribute == "name":
            # Entity labels are deleted, following the paper's §3.2: aligned
            # entities usually carry identical labels, which would become a
            # "tricky" feature and mask real performance.
            continue
        if attribute == "description" and config.drop_descriptions:
            continue
        if rng.random() >= config.attr_keep:
            continue
        if len(value.split()) >= 5:
            # Long texts (descriptions) are independently written per KG:
            # heavy per-view token noise keeps them related, not equal.
            value = _rewrite_description(value, rng)
        elif config.value_noise > 0.0 and rng.random() < config.value_noise:
            value = _perturb_value(value, rng)
        if config.numeric_style == "decimal":
            value = " ".join(
                f"{token}.0" if token.isdigit() else token
                for token in value.split(" ")
            )
        value = pseudo_translate(value, config.language)
        # Missing-attribute corruption drops the fully-processed triple,
        # so surviving triples are identical to the clean view's.
        if (config.attr_missing_rate > 0.0
                and corrupt_rng.random() < config.attr_missing_rate):
            attrs_dropped += 1
            continue
        attribute_triples.append((uri_of[entity], attribute_names[attribute], value))

    kg = KnowledgeGraph(
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        name=config.name,
    )
    manifest = {
        "rates": {
            "dangling_rate": config.dangling_rate,
            "link_noise_rate": config.link_noise_rate,
            "attr_missing_rate": config.attr_missing_rate,
        },
        "dangling": dangling,
        "attrs_dropped": attrs_dropped,
    }
    return kg, uri_of, manifest
