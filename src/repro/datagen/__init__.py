"""Synthetic source-KG generation (substitute for DBpedia/Wikidata/YAGO)."""

from .families import FAMILIES, FamilySpec, benchmark_pair, source_pair
from .views import ViewConfig, derive_view
from .world import World, WorldConfig, generate_world, make_vocabulary

__all__ = [
    "World", "WorldConfig", "generate_world", "make_vocabulary",
    "ViewConfig", "derive_view",
    "FAMILIES", "FamilySpec", "source_pair", "benchmark_pair",
]
