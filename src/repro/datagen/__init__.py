"""Synthetic source-KG generation (substitute for DBpedia/Wikidata/YAGO)."""

from .corruption import (
    CORRUPTION_SCHEMA,
    corrupt_pair,
    dangling_sources,
    drop_attributes,
    remove_counterparts,
    rewire_links,
)
from .families import FAMILIES, FamilySpec, benchmark_pair, smoke_pair, source_pair
from .views import ViewConfig, derive_view, derive_view_with_manifest
from .world import World, WorldConfig, generate_world, make_vocabulary

__all__ = [
    "World", "WorldConfig", "generate_world", "make_vocabulary",
    "ViewConfig", "derive_view", "derive_view_with_manifest",
    "FAMILIES", "FamilySpec", "source_pair", "benchmark_pair", "smoke_pair",
    "CORRUPTION_SCHEMA", "corrupt_pair", "dangling_sources",
    "drop_attributes", "remove_counterparts", "rewire_links",
]
