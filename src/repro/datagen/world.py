"""Synthetic "world" generation.

The paper samples its benchmark datasets from DBpedia, Wikidata and YAGO.
Those dumps are not available offline, so we generate a *world*: a ground
truth set of entities with relation structure and attribute facts, from
which heterogeneous KG views are derived (:mod:`repro.datagen.views`).

The generator reproduces the structural properties the paper's evaluation
depends on:

* a heavy-tailed, power-law-like degree distribution (Figure 2) produced
  by preferential attachment;
* Zipfian relation/attribute popularity (a few frequent relations, many
  rare ones);
* correlated attribute groups (the signal JAPE's attribute-correlation
  embedding exploits, e.g. longitude/latitude);
* per-entity names and longer textual descriptions (used by KDCoE).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WorldConfig", "World", "generate_world", "make_vocabulary"]

_CONSONANTS = "bcdfgklmnprstvz"
_VOWELS = "aeiou"


def make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Pronounceable, unique pseudo-words built from random syllables."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        syllables = rng.integers(2, 4)
        word = "".join(
            _CONSONANTS[rng.integers(len(_CONSONANTS))]
            + _VOWELS[rng.integers(len(_VOWELS))]
            for _ in range(syllables)
        )
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


@dataclass
class WorldConfig:
    """Knobs of the synthetic world."""

    n_entities: int = 2000
    n_relations: int = 40
    n_attributes: int = 24
    avg_degree: float = 6.0
    vocab_size: int = 600
    attrs_per_entity: float = 4.0
    description_tokens: int = 8
    attribute_groups: int = 4
    preferential_attachment: float = 0.7
    seed: int = 0


@dataclass
class World:
    """Ground truth the KG views are derived from.

    Entities are integers ``0..n-1``; relations and attributes carry
    canonical English names.  ``name`` / ``description`` are the designated
    label attributes.
    """

    config: WorldConfig
    relations: list[str]
    attributes: list[str]
    relation_triples: list[tuple[int, str, int]]
    attribute_triples: list[tuple[int, str, str]]
    entity_names: dict[int, str]
    attribute_group_of: dict[str, int] = field(default_factory=dict)

    @property
    def n_entities(self) -> int:
        return self.config.n_entities

    def degrees(self) -> np.ndarray:
        degs = np.zeros(self.n_entities, dtype=np.int64)
        for head, _, tail in self.relation_triples:
            degs[head] += 1
            degs[tail] += 1
        return degs


def _zipf_weights(count: int, exponent: float = 1.1) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _generate_structure(
    config: WorldConfig, relations: list[str], rng: np.random.Generator
) -> list[tuple[int, str, int]]:
    """Preferential-attachment edge generation with Zipfian relations."""
    n = config.n_entities
    target_edges = int(round(config.avg_degree * n / 2.0))
    relation_weights = _zipf_weights(len(relations))
    # Endpoint pool seeded with every entity once: guarantees no entity is
    # impossible to pick and biases further draws towards high-degree nodes.
    endpoints: list[int] = list(range(n))
    seen: set[tuple[int, str, int]] = set()
    triples: list[tuple[int, str, int]] = []
    attempts = 0
    max_attempts = target_edges * 20
    while len(triples) < target_edges and attempts < max_attempts:
        attempts += 1
        if rng.random() < config.preferential_attachment:
            head = endpoints[rng.integers(len(endpoints))]
        else:
            head = int(rng.integers(n))
        if rng.random() < config.preferential_attachment:
            tail = endpoints[rng.integers(len(endpoints))]
        else:
            tail = int(rng.integers(n))
        if head == tail:
            continue
        relation = relations[rng.choice(len(relations), p=relation_weights)]
        triple = (head, relation, tail)
        if triple in seen:
            continue
        seen.add(triple)
        triples.append(triple)
        endpoints.append(head)
        endpoints.append(tail)
    return triples


def _generate_attributes(
    config: WorldConfig,
    attributes: list[str],
    vocabulary: list[str],
    entity_names: dict[int, str],
    group_of: dict[str, int],
    rng: np.random.Generator,
) -> list[tuple[int, str, str]]:
    """Per-entity attribute facts with correlated attribute groups."""
    triples: list[tuple[int, str, str]] = []
    plain_attributes = [a for a in attributes if a not in ("name", "description")]
    by_group: dict[int, list[str]] = {}
    for attribute in plain_attributes:
        by_group.setdefault(group_of[attribute], []).append(attribute)
    groups = sorted(by_group)
    for entity in range(config.n_entities):
        name = entity_names[entity]
        triples.append((entity, "name", name))
        description_words = name.split() + [
            vocabulary[rng.integers(len(vocabulary))]
            for _ in range(config.description_tokens - 2)
        ]
        triples.append((entity, "description", " ".join(description_words)))
        # Entities mostly describe themselves with one attribute group, so
        # attributes within a group co-occur (JAPE's correlation signal).
        home_group = groups[entity % len(groups)]
        count = rng.poisson(config.attrs_per_entity)
        chosen: set[str] = set()
        for _ in range(count):
            if rng.random() < 0.75:
                pool = by_group[home_group]
            else:
                pool = plain_attributes
            attribute = pool[rng.integers(len(pool))]
            if attribute in chosen:
                continue
            chosen.add(attribute)
            if rng.random() < 0.3:
                # numeric literal; range scales with the world so value
                # collisions (shared birth years, populations, ...) occur
                # at a realistic, size-independent rate
                value = str(rng.integers(1, max(60, config.n_entities // 2)))
            else:
                n_tokens = int(rng.integers(1, 3))
                value = " ".join(
                    vocabulary[rng.integers(len(vocabulary))] for _ in range(n_tokens)
                )
            triples.append((entity, attribute, value))
    return triples


def generate_world(config: WorldConfig) -> World:
    """Generate a :class:`World` deterministically from ``config.seed``."""
    rng = np.random.default_rng(config.seed)
    vocabulary = make_vocabulary(config.vocab_size, rng)
    relations = [f"rel_{vocabulary[i % len(vocabulary)]}_{i}" for i in range(config.n_relations)]
    attributes = ["name", "description"] + [
        f"attr_{vocabulary[(i * 7) % len(vocabulary)]}_{i}"
        for i in range(config.n_attributes - 2)
    ]
    group_of = {
        attribute: i % config.attribute_groups
        for i, attribute in enumerate(attributes)
        if attribute not in ("name", "description")
    }
    entity_names = {
        entity: " ".join(
            vocabulary[rng.integers(len(vocabulary))] for _ in range(2)
        )
        for entity in range(config.n_entities)
    }
    relation_triples = _generate_structure(config, relations, rng)
    attribute_triples = _generate_attributes(
        config, attributes, vocabulary, entity_names, group_of, rng
    )
    return World(
        config=config,
        relations=relations,
        attributes=attributes,
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        entity_names=entity_names,
        attribute_group_of=group_of,
    )
