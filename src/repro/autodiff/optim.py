"""Optimizers for :class:`~repro.autodiff.module.Parameter` collections.

All three optimizers understand both dense ``np.ndarray`` gradients and
row-sparse :class:`~repro.autodiff.sparse.SparseGrad` gradients (emitted
by ``Tensor.gather`` on embedding tables).  Sparse updates touch only the
gathered rows, so one training step costs O(batch) instead of O(rows).

Sparse semantics (documented in ``docs/performance.md``):

* **SGD** (no momentum) and **Adagrad** — exactly equivalent to a dense
  update of the scattered gradient: rows with zero gradient receive a
  zero update either way.
* **SGD with momentum** — per-row step counters apply the decay the
  skipped steps would have performed (``v ← μ^gap v + g``) plus the
  closed-form geometric-series catch-up of the skipped parameter
  updates, so the trajectory matches dense training whenever a row's
  forward value was not consumed while stale.
* **Adam** — lazy: first and second moments and the bias-correction
  step counter are kept *per row* and advance only when a row appears in
  a batch (TensorFlow's ``LazyAdam`` semantics).  When every row appears
  in every batch this is bit-for-bit identical to dense Adam.

Optimizer state is keyed by the parameter's *position* in the parameter
list — not ``id(parameter)``, which can be reused after garbage
collection — and round-trips through ``state_dict()`` /
``load_state_dict()`` for checkpointing.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter
from .sparse import SparseGrad

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam", "get_optimizer"]


def _per_row(values: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a per-row vector so it broadcasts over trailing axes."""
    values = np.asarray(values)
    return values.reshape(values.shape + (1,) * (ndim - 1))


class Optimizer:
    """Base class: holds parameters and applies gradient steps.

    State is stored in ``self._state``, a dict keyed by the parameter's
    index in ``self.parameters`` (stable across garbage collection,
    unlike ``id()``), with one sub-dict of numpy arrays per parameter.
    """

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self._state: dict[int, dict] = {}
        # Optional bookkeeping of which rows each parameter's sparse
        # gradients touched (for lazy per-epoch normalization).
        self.track_touched = False
        self._touched: dict[int, list[np.ndarray] | None] = {}

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            if self.track_touched:
                self._record_touched(index, parameter.grad)
            self._update(parameter, self._state.setdefault(index, {}))

    def _update(self, parameter: Parameter, state: dict) -> None:
        raise NotImplementedError

    # -- touched-row bookkeeping ---------------------------------------
    def _record_touched(self, index: int, grad) -> None:
        if self._touched.get(index, ()) is None:
            return  # already marked dense ("all rows")
        if isinstance(grad, SparseGrad):
            self._touched.setdefault(index, []).append(np.unique(grad.indices))
        else:
            self._touched[index] = None

    def consume_touched(self, parameter: Parameter) -> np.ndarray | None:
        """Rows of ``parameter`` updated since the last call.

        Returns ``None`` when a dense gradient touched every row, or a
        sorted unique row array otherwise (empty if never updated).
        Only meaningful with ``track_touched = True``.
        """
        for index, candidate in enumerate(self.parameters):
            if candidate is parameter:
                break
        else:
            raise ValueError("parameter is not managed by this optimizer")
        touched = self._touched.pop(index, [])
        if touched is None:
            return None
        if not touched:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(touched))

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: ``{"lr": float, "state": {index: {...}}}``."""
        return {
            "lr": float(self.lr),
            "state": {
                index: {key: np.array(value) for key, value in slot.items()}
                for index, slot in self._state.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.lr = float(state.get("lr", self.lr))
        self._state = {}
        for index, slot in state.get("state", {}).items():
            restored = {}
            for key, value in slot.items():
                value = np.asarray(value)
                restored[key] = value.item() if value.ndim == 0 else value.copy()
            self._state[int(index)] = restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum

    def _init_state(self, parameter: Parameter, state: dict) -> None:
        if "velocity" not in state:
            state["velocity"] = np.zeros_like(parameter.data)
            state["last_step"] = np.zeros(parameter.shape[0], dtype=np.int64)
            state["step"] = 0

    def _catchup(self, gap: np.ndarray) -> np.ndarray:
        """Sum of ``μ^k`` for ``k = 1 .. gap-1`` (skipped ghost updates)."""
        mu = self.momentum
        if mu >= 1.0:
            return np.maximum(gap - 1, 0).astype(np.float64)
        return mu * (1.0 - mu ** np.maximum(gap - 1, 0)) / (1.0 - mu)

    def _update(self, parameter: Parameter, state: dict) -> None:
        grad = parameter.grad
        if self.momentum <= 0.0:
            if isinstance(grad, SparseGrad):
                grad = grad.coalesce()
                parameter.data[grad.indices] -= self.lr * grad.values
            else:
                parameter.data -= self.lr * grad
            return
        if parameter.ndim == 0:  # scalar parameter: no row structure
            velocity = state.get("velocity", np.zeros_like(parameter.data))
            velocity = self.momentum * velocity + np.asarray(grad)
            state["velocity"] = velocity
            parameter.data -= self.lr * velocity
            return
        self._init_state(parameter, state)
        state["step"] += 1
        step = state["step"]
        velocity, last = state["velocity"], state["last_step"]
        ndim = parameter.data.ndim
        if isinstance(grad, SparseGrad):
            grad = grad.coalesce()
            rows, values = grad.indices, grad.values
            gap = step - last[rows]
            v_rows = velocity[rows]
            parameter.data[rows] -= self.lr * _per_row(self._catchup(gap), ndim) * v_rows
            v_rows = _per_row(self.momentum ** gap, ndim) * v_rows + values
            velocity[rows] = v_rows
            parameter.data[rows] -= self.lr * v_rows
            last[rows] = step
        else:
            gap = step - last
            stale = gap > 1
            if np.any(stale):
                parameter.data -= self.lr * _per_row(self._catchup(gap), ndim) * velocity
                velocity *= _per_row(self.momentum ** gap, ndim)
                velocity += grad
            else:
                velocity *= self.momentum
                velocity += grad
            parameter.data -= self.lr * velocity
            last[...] = step


class Adagrad(Optimizer):
    """Adagrad (per-coordinate adaptive learning rate)."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1, eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.eps = eps

    def _update(self, parameter: Parameter, state: dict) -> None:
        accum = state.get("accum")
        if accum is None:
            accum = state["accum"] = np.zeros_like(parameter.data)
        grad = parameter.grad
        if isinstance(grad, SparseGrad):
            grad = grad.coalesce()
            rows, values = grad.indices, grad.values
            accum[rows] += values**2
            parameter.data[rows] -= self.lr * values / (np.sqrt(accum[rows]) + self.eps)
        else:
            accum += grad**2
            parameter.data -= self.lr * grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (lazy per-row steps for sparse grads)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps

    def _init_state(self, parameter: Parameter, state: dict) -> None:
        if "m" not in state:
            state["m"] = np.zeros_like(parameter.data)
            state["v"] = np.zeros_like(parameter.data)
            rows = parameter.shape[0] if parameter.ndim else 1
            state["t"] = np.zeros(rows, dtype=np.int64)

    def _update(self, parameter: Parameter, state: dict) -> None:
        self._init_state(parameter, state)
        m, v, t = state["m"], state["v"], state["t"]
        grad = parameter.grad
        ndim = max(parameter.data.ndim, 1)
        if isinstance(grad, SparseGrad):
            grad = grad.coalesce()
            rows, values = grad.indices, grad.values
            t[rows] += 1
            t_rows = t[rows]
            m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * values
            v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * values**2
            m[rows] = m_rows
            v[rows] = v_rows
            m_hat = m_rows / _per_row(1.0 - self.beta1**t_rows, ndim)
            v_hat = v_rows / _per_row(1.0 - self.beta2**t_rows, ndim)
            parameter.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        else:
            t += 1
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            correction1 = _per_row(1.0 - self.beta1**t, ndim)
            correction2 = _per_row(1.0 - self.beta2**t, ndim)
            if parameter.data.ndim == 0:
                correction1 = correction1.reshape(())
                correction2 = correction2.reshape(())
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


_OPTIMIZERS = {"sgd": SGD, "adagrad": Adagrad, "adam": Adam}


def get_optimizer(name: str, parameters: list[Parameter], lr: float) -> Optimizer:
    """Construct an optimizer by name (``sgd``, ``adagrad`` or ``adam``)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(parameters, lr=lr)
