"""Optimizers for :class:`~repro.autodiff.module.Parameter` collections."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam", "get_optimizer"]


class Optimizer:
    """Base class: holds parameters and applies gradient steps."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is not None:
                self._update(parameter)

    def _update(self, parameter: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, parameter: Parameter) -> None:
        grad = parameter.grad
        if self.momentum > 0.0:
            velocity = self._velocity.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(parameter)] = velocity
            grad = velocity
        parameter.data -= self.lr * grad


class Adagrad(Optimizer):
    """Adagrad (per-coordinate adaptive learning rate)."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1, eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.eps = eps
        self._accum: dict[int, np.ndarray] = {}

    def _update(self, parameter: Parameter) -> None:
        accum = self._accum.get(id(parameter))
        if accum is None:
            accum = np.zeros_like(parameter.data)
            self._accum[id(parameter)] = accum
        accum += parameter.grad**2
        parameter.data -= self.lr * parameter.grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t: dict[int, int] = {}

    def _update(self, parameter: Parameter) -> None:
        key = id(parameter)
        if key not in self._m:
            self._m[key] = np.zeros_like(parameter.data)
            self._v[key] = np.zeros_like(parameter.data)
            self._t[key] = 0
        self._t[key] += 1
        t = self._t[key]
        m = self._m[key]
        v = self._v[key]
        m *= self.beta1
        m += (1.0 - self.beta1) * parameter.grad
        v *= self.beta2
        v += (1.0 - self.beta2) * parameter.grad**2
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


_OPTIMIZERS = {"sgd": SGD, "adagrad": Adagrad, "adam": Adam}


def get_optimizer(name: str, parameters: list[Parameter], lr: float) -> Optimizer:
    """Construct an optimizer by name (``sgd``, ``adagrad`` or ``adam``)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}"
        ) from None
    return cls(parameters, lr=lr)
