"""Neural building blocks on top of the autodiff engine.

Provides the layers the deep embedding models need: dense layers, embedding
tables, a 2-D convolution (ConvE), a GRU cell (the recurrent skipping
network of RSN4EA) and a highway gate (RDGCN).
"""

from __future__ import annotations

import numpy as np

from .init import xavier_init
from .module import Module, Parameter
from .tensor import Tensor, concat

__all__ = ["Linear", "EmbeddingTable", "GRUCell", "Highway", "conv2d"]


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 bias: bool = True, name: str = "linear"):
        self.weight = Parameter(xavier_init((in_dim, out_dim), rng), name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_dim), name=f"{name}.bias") if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class EmbeddingTable(Module):
    """A lookup table of row embeddings."""

    def __init__(self, count: int, dim: int, rng: np.random.Generator,
                 initializer=xavier_init, name: str = "embedding"):
        self.table = Parameter(initializer((count, dim), rng), name=name)

    def __call__(self, indices) -> Tensor:
        return self.table.gather(np.asarray(indices, dtype=np.int64))

    @property
    def count(self) -> int:
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    def normalize_rows(self, rows: np.ndarray | None = None) -> None:
        """Project rows onto the unit sphere (in place, no gradient).

        ``rows`` restricts the projection to a subset — with the sparse
        gradient path only rows updated this step need renormalizing.
        """
        if rows is None:
            norms = np.linalg.norm(self.table.data, axis=1, keepdims=True)
            self.table.data /= np.maximum(norms, 1e-12)
            return
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        block = self.table.data[rows]
        norms = np.linalg.norm(block, axis=1, keepdims=True)
        self.table.data[rows] = block / np.maximum(norms, 1e-12)

    def all_embeddings(self) -> np.ndarray:
        """Current embedding matrix as a plain array (no graph)."""
        return self.table.data


class GRUCell(Module):
    """Gated recurrent unit cell."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator,
                 name: str = "gru"):
        self.hidden_dim = hidden_dim
        self.w_z = Linear(input_dim + hidden_dim, hidden_dim, rng, name=f"{name}.z")
        self.w_r = Linear(input_dim + hidden_dim, hidden_dim, rng, name=f"{name}.r")
        self.w_h = Linear(input_dim + hidden_dim, hidden_dim, rng, name=f"{name}.h")

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        xh = concat([x, h], axis=-1)
        z = self.w_z(xh).sigmoid()
        r = self.w_r(xh).sigmoid()
        candidate = self.w_h(concat([x, r * h], axis=-1)).tanh()
        return (1.0 - z) * h + z * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))


class Highway(Module):
    """Highway gate: ``y = t * transform(x) + (1 - t) * x``."""

    def __init__(self, dim: int, rng: np.random.Generator, name: str = "highway"):
        self.gate = Linear(dim, dim, rng, name=f"{name}.gate")
        # Bias the gate towards carrying the input through at start.
        self.gate.bias.data[...] = -1.0

    def __call__(self, x: Tensor, transformed: Tensor) -> Tensor:
        t = self.gate(x).sigmoid()
        return t * transformed + (1.0 - t) * x


def _im2col(x: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Extract sliding (kh, kw) patches; valid padding, stride 1.

    Input ``(N, C, H, W)`` -> output ``(N, H', W', C*kh*kw)``.
    """
    n, c, h, w = x.shape
    oh, ow = h - kh + 1, w - kw + 1
    shape = (n, c, oh, ow, kh, kw)
    strides = (
        x.strides[0], x.strides[1], x.strides[2], x.strides[3],
        x.strides[2], x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    # (N, OH, OW, C, KH, KW) -> flatten trailing dims
    return patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh, ow, c * kh * kw)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """2-D convolution, valid padding, stride 1 (what ConvE uses).

    ``x``: (N, C, H, W); ``weight``: (F, C, KH, KW); returns (N, F, H', W').
    """
    n, c, h, w = x.shape
    f, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, kernel expects {c2}")
    oh, ow = h - kh + 1, w - kw + 1

    cols = _im2col(x.data, kh, kw)  # (N, OH, OW, C*KH*KW)
    kernel = weight.data.reshape(f, -1)  # (F, C*KH*KW)
    out_data = cols @ kernel.T  # (N, OH, OW, F)
    out_data = out_data.transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        # grad: (N, F, OH, OW)
        grad_cols = grad.transpose(0, 2, 3, 1)  # (N, OH, OW, F)
        if weight.requires_grad:
            grad_kernel = np.einsum("nijf,nijk->fk", grad_cols, cols)
            weight._accumulate(grad_kernel.reshape(weight.shape))
        if x.requires_grad:
            grad_patch = grad_cols @ kernel  # (N, OH, OW, C*KH*KW)
            grad_patch = grad_patch.reshape(n, oh, ow, c, kh, kw)
            grad_x = np.zeros_like(x.data)
            for i in range(kh):
                for j in range(kw):
                    grad_x[:, :, i:i + oh, j:j + ow] += grad_patch[
                        :, :, :, :, i, j
                    ].transpose(0, 3, 1, 2)
            x._accumulate(grad_x)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)
