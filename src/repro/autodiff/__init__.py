"""Reverse-mode autodiff engine: the library's TensorFlow substitute."""

from .gradcheck import check_gradients, numerical_gradient
from .init import (
    INITIALIZERS,
    get_initializer,
    orthogonal_init,
    uniform_init,
    unit_init,
    xavier_init,
)
from .module import Module, Parameter
from .nn import EmbeddingTable, GRUCell, Highway, Linear, conv2d
from .optim import SGD, Adagrad, Adam, Optimizer, get_optimizer
from .sparse import (
    SparseGrad,
    scatter_rows,
    set_sparse_gradients,
    sparse_gradients_enabled,
)
from .tensor import (
    Tensor,
    as_tensor,
    circular_correlation,
    concat,
    maximum,
    minimum,
    sparse_matmul,
    stack,
    where,
)

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "where", "maximum", "minimum",
    "circular_correlation", "sparse_matmul",
    "Module", "Parameter",
    "Linear", "EmbeddingTable", "GRUCell", "Highway", "conv2d",
    "SGD", "Adagrad", "Adam", "Optimizer", "get_optimizer",
    "SparseGrad", "scatter_rows", "set_sparse_gradients",
    "sparse_gradients_enabled",
    "unit_init", "uniform_init", "orthogonal_init", "xavier_init",
    "INITIALIZERS", "get_initializer",
    "check_gradients", "numerical_gradient",
]
