"""Row-sparse gradients for embedding tables.

Every embedding model in the paper trains by gathering a few hundred
entity/relation rows per minibatch, yet a dense backward pays
full-vocabulary cost per step: ``gather``'s backward would allocate a
``zeros_like`` of the whole table and the optimizer would then update
every row.  A :class:`SparseGrad` carries only ``(indices, values)``
pairs instead, so the cost of one training step is proportional to the
batch size rather than the table size.

Duplicate indices (the same entity appearing many times in one batch, as
negative sampling produces) are *coalesced* with a sort + ``reduceat``
segment sum — ``np.add.at`` is an order of magnitude slower for this.

The sparse path is enabled by default and can be toggled globally (for
benchmarking the dense baseline) via :func:`set_sparse_gradients`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SparseGrad",
    "set_sparse_gradients",
    "sparse_gradients_enabled",
    "scatter_rows",
]

_SPARSE_ENABLED = True


def set_sparse_gradients(enabled: bool) -> bool:
    """Globally enable/disable the sparse gradient path.

    Returns the previous setting so callers can restore it::

        previous = set_sparse_gradients(False)
        try:
            ...  # dense baseline
        finally:
            set_sparse_gradients(previous)
    """
    global _SPARSE_ENABLED
    previous = _SPARSE_ENABLED
    _SPARSE_ENABLED = bool(enabled)
    return previous


def sparse_gradients_enabled() -> bool:
    """Whether ``gather`` on a leaf tensor emits :class:`SparseGrad`."""
    return _SPARSE_ENABLED


def _coalesce_rows(indices: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` over duplicate ``indices`` (sort + segment-sum)."""
    if indices.size == 0:
        return indices, values
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    sorted_values = values[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_indices[1:] != sorted_indices[:-1]))
    )
    return sorted_indices[starts], np.add.reduceat(sorted_values, starts, axis=0)


def scatter_rows(out: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """``out[indices] += values`` with duplicate indices summed.

    Coalesces first so the scatter is a plain (fast) fancy-index add
    instead of ``np.add.at``.
    """
    rows, summed = _coalesce_rows(
        np.asarray(indices, dtype=np.int64).reshape(-1),
        np.asarray(values, dtype=np.float64).reshape((-1,) + out.shape[1:]),
    )
    out[rows] += summed


class SparseGrad:
    """Gradient of a row-gather: ``values[i]`` flows into row ``indices[i]``.

    ``indices`` is 1-D (rows along axis 0 of the dense ``shape``);
    ``values`` has shape ``(len(indices),) + shape[1:]``.  The object is
    array-like enough for diagnostics (``shape``, ``__array__``) but the
    optimizers consume it directly via :meth:`coalesce` without ever
    materializing the dense matrix.
    """

    __slots__ = ("indices", "values", "shape", "_coalesced")

    def __init__(self, indices, values, shape: tuple[int, ...], coalesced: bool = False):
        self.indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        self.values = np.asarray(values, dtype=np.float64).reshape(
            (self.indices.shape[0],) + tuple(shape[1:])
        )
        self.shape = tuple(shape)
        self._coalesced = bool(coalesced)

    def __repr__(self) -> str:
        return f"SparseGrad(nnz_rows={len(self.indices)}, shape={self.shape})"

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self):
        return self.values.dtype

    def coalesce(self) -> "SparseGrad":
        """Return an equivalent gradient with unique, sorted indices."""
        if self._coalesced:
            return self
        rows, values = _coalesce_rows(self.indices, self.values)
        return SparseGrad(rows, values, self.shape, coalesced=True)

    def merged(self, other: "SparseGrad") -> "SparseGrad":
        """Concatenate two sparse gradients of the same dense shape."""
        if other.shape != self.shape:
            raise ValueError(
                f"cannot merge sparse grads of shapes {self.shape} and {other.shape}"
            )
        return SparseGrad(
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.values, other.values]),
            self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense gradient (densification)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        grad = self.coalesce()
        dense[grad.indices] = grad.values
        return dense

    def add_to(self, dense: np.ndarray) -> None:
        """Scatter-add this gradient into an existing dense array."""
        grad = self.coalesce()
        dense[grad.indices] += grad.values

    def copy(self) -> "SparseGrad":
        return SparseGrad(
            self.indices.copy(), self.values.copy(), self.shape, self._coalesced
        )

    def __array__(self, dtype=None, copy=None):
        dense = self.to_dense()
        return dense.astype(dtype) if dtype is not None else dense

    def __getitem__(self, key):
        # Diagnostics convenience (O(dense) — not for hot paths).
        return self.to_dense()[key]
