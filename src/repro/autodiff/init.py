"""Embedding initialization functions (Figure 4, embedding module).

The paper's library offers unit, uniform, orthogonal and Xavier
initialization; all four are provided here as pure functions of an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["unit_init", "uniform_init", "orthogonal_init", "xavier_init"]


def unit_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Gaussian vectors normalized to unit L2 norm along the last axis."""
    data = rng.normal(size=shape)
    norms = np.linalg.norm(data, axis=-1, keepdims=True)
    return data / np.maximum(norms, 1e-12)


def uniform_init(
    shape: tuple[int, ...], rng: np.random.Generator, scale: float | None = None
) -> np.ndarray:
    """Uniform initialization in ``[-scale, scale]``.

    The default scale is the TransE convention ``6 / sqrt(dim)``.
    """
    if scale is None:
        scale = 6.0 / np.sqrt(shape[-1])
    return rng.uniform(-scale, scale, size=shape)


def orthogonal_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization (rows/columns orthonormal)."""
    if len(shape) < 2:
        return unit_init(shape, rng)
    rows = int(np.prod(shape[:-1]))
    cols = shape[-1]
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].reshape(shape)


def xavier_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialization."""
    if len(shape) == 1:
        bound = np.sqrt(3.0 / shape[0])
    else:
        fan_in = int(np.prod(shape[:-1]))
        fan_out = shape[-1]
        bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


INITIALIZERS = {
    "unit": unit_init,
    "uniform": uniform_init,
    "orthogonal": orthogonal_init,
    "xavier": xavier_init,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ``KeyError`` with choices."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; choose from {sorted(INITIALIZERS)}"
        ) from None
