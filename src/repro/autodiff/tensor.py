"""Reverse-mode automatic differentiation over numpy arrays.

This module is the training substrate of the library.  The paper's original
system (OpenEA) is built on TensorFlow 1.x; here we provide the minimal
engine that the embedding models need: a :class:`Tensor` wrapping a numpy
array, a set of differentiable operations with full broadcasting support,
and topologically-ordered backpropagation.

Only the features the library uses are implemented, but each op computes an
exact gradient (verified by numerical gradient checks in the test suite).
"""

from __future__ import annotations

import numpy as np

from .sparse import SparseGrad, scatter_rows, sparse_gradients_enabled

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "circular_correlation",
    "sparse_matmul",
]


# Optional hook timing each backward closure, installed by the op
# profiler (repro.obs.opprof).  ``None`` keeps the hot loop branch-free
# apart from a single identity check per node.
_BACKWARD_OP_HOOK = None


def set_backward_op_hook(hook):
    """Install ``hook(node, closure)`` called instead of ``closure(node.grad)``
    for every node during backprop; returns the previous hook.  Pass
    ``None`` to restore the direct call."""
    global _BACKWARD_OP_HOOK
    previous = _BACKWARD_OP_HOOK
    _BACKWARD_OP_HOOK = hook
    return previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that numpy broadcasting introduced.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``,
    the gradient w.r.t. that operand is the sum of ``grad`` over every
    broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward graph edge."""

    # _op is the producing op's kind, set only while the op profiler
    # (repro.obs.opprof) is active; it lets backward closures be
    # attributed to the forward op that created them.
    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | SparseGrad | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str | None = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # graph construction / backprop
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray | SparseGrad) -> None:
        if isinstance(grad, SparseGrad):
            if self.grad is None:
                self.grad = grad
            elif isinstance(self.grad, SparseGrad):
                self.grad = self.grad.merged(grad)
            else:
                grad.add_to(self.grad)
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        elif isinstance(self.grad, SparseGrad):
            # A dense gradient joined a sparse one (e.g. a norm regularizer
            # over the full matrix): densify once and keep accumulating.
            dense = self.grad.to_dense()
            dense += grad
            self.grad = dense
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        order: list[Tensor] = []
        seen: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        hook = _BACKWARD_OP_HOOK
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                if hook is None:
                    node._backward(node.grad)
                else:
                    hook(node, node._backward)
                # Free the closure so intermediate buffers can be collected.
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                    )
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    other._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                    )

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad):
            self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def gather(self, indices) -> "Tensor":
        """Row lookup (embedding gather) with scatter-add backward.

        ``indices`` may be an array, list or tuple of integers (any
        shape); rows are gathered along axis 0.  When this tensor is a
        graph *leaf* (a parameter or input, not an op output) and sparse
        gradients are enabled, the backward pass emits a
        :class:`~repro.autodiff.sparse.SparseGrad` carrying only the
        gathered rows — O(batch) instead of O(rows) per step.
        """
        if self.ndim < 1:
            raise IndexError("gather requires a tensor with at least one axis")
        indices = np.asarray(indices)
        if indices.size == 0:
            indices = indices.astype(np.int64)
        if not np.issubdtype(indices.dtype, np.integer):
            raise TypeError(
                f"gather indices must be integers, got dtype {indices.dtype}"
            )
        n_rows = self.shape[0]
        if indices.size:
            low = int(indices.min())
            high = int(indices.max())
            if low < -n_rows or high >= n_rows:
                bad = high if high >= n_rows else low
                raise IndexError(
                    f"gather index {bad} out of range for axis 0 with "
                    f"{n_rows} rows"
                )
            if low < 0:
                indices = np.where(indices < 0, indices + n_rows, indices)
        out_data = self.data[indices]
        # Sparse grads are only valid for leaves: an op output's gradient
        # must stay dense so it can flow through the producing op.
        is_leaf = not self._parents

        def backward(grad):
            if is_leaf and sparse_gradients_enabled():
                self._accumulate(SparseGrad(indices, grad, self.shape))
            else:
                full = np.zeros_like(self.data)
                scatter_rows(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad):
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500.0, 500.0)))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # log(1 + exp(x)), computed stably.
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad):
            self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return Tensor._make(out_data, (self,), backward)

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(grad):
            self._accumulate(-grad * np.sin(self.data))

        return Tensor._make(out_data, (self,), backward)

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(grad):
            self._accumulate(grad * np.cos(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad):
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # composite helpers
    # ------------------------------------------------------------------
    def square(self) -> "Tensor":
        return self * self

    def norm(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm along ``axis`` (smoothed so the gradient exists at 0)."""
        return (self.square().sum(axis=axis, keepdims=keepdims) + eps).sqrt()

    def l2_normalize(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        return self / self.norm(axis=axis, keepdims=True, eps=eps)

    def dropout(self, rate: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout; pass ``rate=0`` (or skip the call) at eval time."""
        if rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.shape) < keep).astype(np.float64) / keep
        return self * Tensor(mask)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable select: gradient flows to the chosen branch."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient flows to the larger operand."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data >= b.data, a, b)


def minimum(a, b) -> Tensor:
    """Elementwise minimum; gradient flows to the smaller operand."""
    a, b = as_tensor(a), as_tensor(b)
    return where(a.data <= b.data, a, b)


def circular_correlation(a: Tensor, b: Tensor) -> Tensor:
    """Circular correlation along the last axis (used by HolE).

    ``corr(a, b)[k] = sum_i a[i] * b[(i + k) mod n]``, computed via FFT.
    The gradients are themselves correlations/convolutions:
    ``d/da = corr(g, b)`` and ``d/db = cconv(g, a)``.
    """
    a, b = as_tensor(a), as_tensor(b)

    def _corr(x, y):
        return np.real(np.fft.ifft(np.conj(np.fft.fft(x)) * np.fft.fft(y)))

    def _cconv(x, y):
        return np.real(np.fft.ifft(np.fft.fft(x) * np.fft.fft(y)))

    out_data = _corr(a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(_corr(grad, b.data), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(_cconv(grad, a.data), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sparse_matmul(sparse_matrix, dense: Tensor) -> Tensor:
    """Multiply a constant ``scipy.sparse`` matrix with a dense tensor.

    The sparse operand (typically a normalized adjacency matrix) is treated
    as a constant; gradients flow only to ``dense``.
    """
    dense = as_tensor(dense)
    out_data = sparse_matrix @ dense.data

    def backward(grad):
        if dense.requires_grad:
            dense._accumulate(sparse_matrix.T @ grad)

    return Tensor._make(out_data, (dense,), backward)
