"""Numerical gradient checking used by the test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    func: Callable[..., Tensor], inputs: list[np.ndarray], index: int, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. input ``index``."""
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(target.size):
        original = target[i]
        target[i] = original + eps
        plus = float(func(*[Tensor(x) for x in base]).data.sum())
        target[i] = original - eps
        minus = float(func(*[Tensor(x) for x in base]).data.sum())
        target[i] = original
        flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: list[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autodiff gradients of ``sum(func(*inputs))`` match finite differences."""
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = func(*tensors)
    out.sum().backward()
    for index, tensor in enumerate(tensors):
        expected = numerical_gradient(func, inputs, index)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(
            actual, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {index}",
        )
