"""Parameter containers and a light ``Module`` abstraction."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .sparse import SparseGrad
from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is updated by an optimizer.

    Parameters always require gradients and carry an optional name used in
    diagnostics.  After a backward pass ``grad`` may be a dense array or a
    row-sparse :class:`~repro.autodiff.sparse.SparseGrad`; optimizers
    handle both, and :meth:`dense_grad` densifies for diagnostics.
    """

    __slots__ = ("name",)

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True)
        self.name = name

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"

    def dense_grad(self) -> np.ndarray | None:
        """The accumulated gradient as a dense array (``None`` if unset)."""
        if isinstance(self.grad, SparseGrad):
            return self.grad.to_dense()
        return self.grad

    def assign(self, data: np.ndarray) -> None:
        """Replace the parameter value in place (e.g. after normalization)."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch assigning to {self.name or 'parameter'}: "
                f"{data.shape} != {self.data.shape}"
            )
        self.data[...] = data


class Module:
    """Minimal container of parameters and sub-modules.

    Sub-classes register parameters/sub-modules by plain attribute
    assignment; :meth:`parameters` walks the object graph.
    """

    def parameters(self) -> list[Parameter]:
        """All unique parameters reachable from this module's attributes."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list[Parameter], seen: set[int]) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        for value in vars(self).values():
            self._collect_value(value, found, seen)

    @staticmethod
    def _collect_value(value, found: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                Module._collect_value(item, found, seen)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for parameter in self.parameters():
            parameter.grad = None

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs."""
        for parameter in self.parameters():
            yield parameter.name, parameter

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())
