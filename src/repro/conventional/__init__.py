"""Conventional entity alignment systems: PARIS and a LogMap-style matcher."""

from .logmap import LogMap, LogMapConfig, LogMapResult
from .paris import Paris, ParisConfig, ParisResult

__all__ = [
    "Paris", "ParisConfig", "ParisResult",
    "LogMap", "LogMapConfig", "LogMapResult",
]
