"""PARIS: probabilistic alignment of relations, instances and schema.

Faithful condensation of Suchanek et al. (PVLDB 2012): literal equality
weighted by *inverse functionality* seeds instance-equivalence
probabilities; relation-correspondence probabilities and instance
probabilities then reinforce each other over a few fixpoint rounds.

As in the paper's study (§6.3), non-English literals are first run
through machine translation — here the :func:`repro.text.translate_back`
substitute with a configurable error rate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..kg import KGPair, KnowledgeGraph
from ..text import translate_back

__all__ = ["ParisConfig", "Paris"]


@dataclass
class ParisConfig:
    """PARIS hyper-parameters."""

    iterations: int = 3
    threshold: float = 0.5          # final acceptance threshold
    relation_evidence: float = 0.6  # weight of relational reinforcement
    translation_error: float = 0.05
    max_block: int = 40             # ignore values shared by more entities


@dataclass
class ParisResult:
    """Predicted alignment plus diagnostics."""

    alignment: list[tuple[str, str]]
    scores: dict[tuple[str, str], float]
    relation_correspondence: dict[tuple[str, str], float] = field(default_factory=dict)


class Paris:
    """The PARIS matcher.

    Usage: ``Paris().align(pair)`` — no training data needed (Table 9:
    PARIS needs attribute triples, no pre-aligned entities).
    """

    def __init__(self, config: ParisConfig | None = None):
        self.config = config or ParisConfig()

    # ------------------------------------------------------------------
    def align(self, pair: KGPair) -> ParisResult:
        """Align ``pair`` and return the predicted 1-to-1 alignment."""
        config = self.config
        lang1 = pair.metadata.get("lang1", "en")
        lang2 = pair.metadata.get("lang2", "en")
        values1 = self._entity_values(pair.kg1, lang1)
        values2 = self._entity_values(pair.kg2, lang2)
        ifun1 = self._inverse_functionality(pair.kg1, lang1)
        ifun2 = self._inverse_functionality(pair.kg2, lang2)

        scores = self._literal_scores(values1, values2, ifun1, ifun2)
        relation_scores: dict[tuple[str, str], float] = {}
        for _ in range(config.iterations):
            relation_scores = self._relation_correspondence(pair, scores)
            scores = self._reinforce(pair, scores, relation_scores)

        alignment = self._harvest(scores)
        return ParisResult(
            alignment=alignment, scores=scores,
            relation_correspondence=relation_scores,
        )

    # ------------------------------------------------------------------
    def _normalize(self, value: str, language: str) -> str:
        if language == "en":
            return value
        return translate_back(
            value, language, error_rate=self.config.translation_error
        )

    def _entity_values(
        self, kg: KnowledgeGraph, language: str
    ) -> dict[str, list[tuple[str, str]]]:
        """entity -> [(attribute, normalized value)]."""
        out: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for entity, attribute, value in kg.attribute_triples:
            out[entity].append((attribute, self._normalize(value, language)))
        return out

    def _inverse_functionality(
        self, kg: KnowledgeGraph, language: str
    ) -> dict[str, float]:
        """ifun(a) = avg(1 / #subjects sharing each value of a)."""
        subjects_per_value: dict[tuple[str, str], set[str]] = defaultdict(set)
        for entity, attribute, value in kg.attribute_triples:
            subjects_per_value[(attribute, self._normalize(value, language))].add(entity)
        per_attribute: dict[str, list[float]] = defaultdict(list)
        for (attribute, _), subjects in subjects_per_value.items():
            per_attribute[attribute].append(1.0 / len(subjects))
        return {
            attribute: sum(vals) / len(vals)
            for attribute, vals in per_attribute.items()
        }

    def _literal_scores(self, values1, values2, ifun1, ifun2) -> dict[tuple[str, str], float]:
        """Seed equivalence probabilities from shared literal values."""
        by_value2: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for entity, pairs in values2.items():
            for attribute, value in pairs:
                by_value2[value].append((entity, attribute))
        scores: dict[tuple[str, str], float] = {}
        survival: dict[tuple[str, str], float] = defaultdict(lambda: 1.0)
        for entity1, pairs in values1.items():
            for attribute1, value in pairs:
                matches = by_value2.get(value, ())
                if not matches or len(matches) > self.config.max_block:
                    continue
                for entity2, attribute2 in matches:
                    evidence = ifun1.get(attribute1, 0.0) * ifun2.get(attribute2, 0.0)
                    survival[(entity1, entity2)] *= 1.0 - evidence
        for key, miss in survival.items():
            scores[key] = 1.0 - miss
        return scores

    def _relation_correspondence(
        self, pair: KGPair, scores: dict[tuple[str, str], float]
    ) -> dict[tuple[str, str], float]:
        """P(r1 ~ r2) from currently-equivalent endpoint pairs."""
        overlap: dict[tuple[str, str], float] = defaultdict(float)
        mass1: dict[str, float] = defaultdict(float)
        by_head2: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for head2, relation2, tail2 in pair.kg2.relation_triples:
            by_head2[head2].append((relation2, tail2))
        tail_scores: dict[str, dict[str, float]] = defaultdict(dict)
        for (e1, e2), score in scores.items():
            if score > 0.1:
                tail_scores[e1][e2] = score
        for head1, relation1, tail1 in pair.kg1.relation_triples:
            mass1[relation1] += 1.0
            for head2 in tail_scores.get(head1, ()):
                head_score = tail_scores[head1][head2]
                for relation2, tail2 in by_head2.get(head2, ()):
                    tail_score = tail_scores.get(tail1, {}).get(tail2, 0.0)
                    if tail_score > 0.0:
                        overlap[(relation1, relation2)] += head_score * tail_score
        return {
            key: value / mass1[key[0]]
            for key, value in overlap.items()
            if mass1[key[0]] > 0
        }

    def _reinforce(self, pair, scores, relation_scores) -> dict[tuple[str, str], float]:
        """Propagate equivalence along corresponding relations."""
        config = self.config
        by_head2: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for head2, relation2, tail2 in pair.kg2.relation_triples:
            by_head2[head2].append((relation2, tail2))
        known: dict[str, dict[str, float]] = defaultdict(dict)
        for (e1, e2), score in scores.items():
            if score > 0.1:
                known[e1][e2] = score
        survival: dict[tuple[str, str], float] = {
            key: 1.0 - value for key, value in scores.items()
        }
        for head1, relation1, tail1 in pair.kg1.relation_triples:
            for head2 in known.get(head1, ()):
                head_score = known[head1][head2]
                for relation2, tail2 in by_head2.get(head2, ()):
                    rel_score = relation_scores.get((relation1, relation2), 0.0)
                    if rel_score <= 0.01:
                        continue
                    evidence = config.relation_evidence * rel_score * head_score
                    key = (tail1, tail2)
                    survival[key] = survival.get(key, 1.0) * (1.0 - evidence)
        return {key: 1.0 - value for key, value in survival.items()}

    def _harvest(self, scores) -> list[tuple[str, str]]:
        """Greedy 1-1 extraction above the acceptance threshold."""
        taken1: set[str] = set()
        taken2: set[str] = set()
        alignment = []
        for (e1, e2), score in sorted(scores.items(), key=lambda kv: -kv[1]):
            if score < self.config.threshold:
                break
            if e1 in taken1 or e2 in taken2:
                continue
            taken1.add(e1)
            taken2.add(e2)
            alignment.append((e1, e2))
        return alignment
