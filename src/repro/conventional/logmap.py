"""LogMap-style ontology/instance matcher.

Condenses Jiménez-Ruiz & Cuenca Grau (ISWC 2011) to the capabilities the
paper's comparison exercises:

1. **lexical indexation** — property alignment from local-name string
   similarity (after machine translation), then entity *anchors* from
   highly similar literal values on aligned properties;
2. **structural propagation** — candidate pairs gain confidence when
   their neighbors (via relation-aligned edges) are anchors;
3. **repair** — a greedy 1-to-1 consistency repair that discards mapping
   conflicts.

Because the lexical stage depends on meaningful property names, the
matcher outputs nothing on Wikidata-style numeric schemata (the paper's
observation that LogMap fails on D-W).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..kg import KGPair
from ..text import string_similarity, translate_back

__all__ = ["LogMapConfig", "LogMap"]


@dataclass
class LogMapConfig:
    """LogMap hyper-parameters."""

    property_threshold: float = 0.75   # property-name alignment
    anchor_threshold: float = 0.9      # literal similarity for anchors
    candidate_threshold: float = 0.55  # weaker candidates kept for repair
    neighbor_bonus: float = 0.25
    translation_error: float = 0.05
    max_block: int = 40


@dataclass
class LogMapResult:
    alignment: list[tuple[str, str]]
    scores: dict[tuple[str, str], float]
    property_alignment: dict[str, str]


class LogMap:
    """The LogMap-style matcher; needs no training data (Table 9)."""

    def __init__(self, config: LogMapConfig | None = None):
        self.config = config or LogMapConfig()

    def align(self, pair: KGPair) -> LogMapResult:
        """Align ``pair``; returns nothing when the schema is uninterpretable."""
        lang1 = pair.metadata.get("lang1", "en")
        lang2 = pair.metadata.get("lang2", "en")
        property_alignment = self._align_properties(pair, lang1, lang2)
        if not property_alignment:
            # No interpretable schema overlap (e.g. D-W): LogMap cannot
            # compute lexical similarities and outputs nothing.
            return LogMapResult(alignment=[], scores={}, property_alignment={})
        scores = self._anchor_scores(pair, property_alignment, lang1, lang2)
        scores = self._propagate(pair, scores)
        alignment = self._repair(scores)
        return LogMapResult(
            alignment=alignment, scores=scores,
            property_alignment=property_alignment,
        )

    # ------------------------------------------------------------------
    def _normalize(self, text: str, language: str) -> str:
        if language == "en":
            return text
        return translate_back(
            text, language, error_rate=self.config.translation_error
        )

    def _align_properties(self, pair: KGPair, lang1, lang2) -> dict[str, str]:
        """Match attribute names by local-name string similarity."""
        attrs1 = sorted(pair.kg1.attributes)
        attrs2 = sorted(pair.kg2.attributes)
        aligned: dict[str, str] = {}
        for a1 in attrs1:
            best, best_score = None, 0.0
            n1 = self._normalize(a1, lang1)
            for a2 in attrs2:
                score = string_similarity(n1, self._normalize(a2, lang2))
                if score > best_score:
                    best, best_score = a2, score
            if best is not None and best_score >= self.config.property_threshold:
                aligned[a1] = best
        return aligned

    def _anchor_scores(
        self, pair: KGPair, property_alignment, lang1, lang2
    ) -> dict[tuple[str, str], float]:
        """Entity pairs sharing (nearly) equal values on aligned properties."""
        config = self.config
        values2: dict[tuple[str, str], list[str]] = defaultdict(list)
        for entity, attribute, value in pair.kg2.attribute_triples:
            values2[(attribute, self._normalize(value, lang2))].append(entity)
        scores: dict[tuple[str, str], float] = defaultdict(float)
        for entity, attribute, value in pair.kg1.attribute_triples:
            a2 = property_alignment.get(attribute)
            if a2 is None:
                continue
            candidates = values2.get((a2, self._normalize(value, lang1)), ())
            if not candidates or len(candidates) > config.max_block:
                continue
            for entity2 in candidates:
                scores[(entity, entity2)] += 1.0 / len(candidates)
        # squash accumulated evidence into [0, 1]
        return {key: min(1.0, value / 2.0 + 0.45) for key, value in scores.items()}

    def _propagate(self, pair: KGPair, scores) -> dict[tuple[str, str], float]:
        """Neighbor agreement boosts candidate confidence."""
        config = self.config
        anchors = {
            key for key, score in scores.items()
            if score >= config.anchor_threshold
        }
        if not anchors:
            return dict(scores)
        anchor_map: dict[str, set[str]] = defaultdict(set)
        for e1, e2 in anchors:
            anchor_map[e1].add(e2)
        neighbors1 = pair.kg1.adjacency()
        neighbors2 = pair.kg2.adjacency()
        boosted = dict(scores)
        for (e1, e2), score in scores.items():
            if score >= config.anchor_threshold:
                continue
            agreement = 0
            for n1 in neighbors1.get(e1, ()):
                if anchor_map.get(n1, set()) & neighbors2.get(e2, set()):
                    agreement += 1
            if agreement:
                boosted[(e1, e2)] = min(
                    1.0, score + config.neighbor_bonus * min(agreement, 3)
                )
        return boosted

    def _repair(self, scores) -> list[tuple[str, str]]:
        """Greedy 1-1 repair: keep the most confident consistent mappings."""
        taken1: set[str] = set()
        taken2: set[str] = set()
        alignment = []
        for (e1, e2), score in sorted(scores.items(), key=lambda kv: -kv[1]):
            if score < self.config.candidate_threshold:
                break
            if e1 in taken1 or e2 in taken2:
                continue  # inconsistency: conflicting mapping discarded
            taken1.add(e1)
            taken2.add(e2)
            alignment.append((e1, e2))
        return alignment
