"""Exploratory analysis: geometry, long-tail recall, prediction overlap."""

from .degree_recall import DEGREE_BUCKETS, bucket_of, recall_by_degree
from .geometry import SimilarityDistribution, hubness_isolation, similarity_distribution
from .norms import degree_norm_correlation, norm_by_degree
from .overlap import prediction_overlap

__all__ = [
    "similarity_distribution", "SimilarityDistribution", "hubness_isolation",
    "recall_by_degree", "bucket_of", "DEGREE_BUCKETS",
    "prediction_overlap",
    "norm_by_degree", "degree_norm_correlation",
]
