"""Embedding-norm bias analysis.

Translational embeddings tend to encode entity *degree* in the embedding
norm (hub entities drift outward), which biases nearest-neighbor search
toward hubs — one mechanism behind the long-tail failures of Figure 5
and the motivation for SEA's degree-aware regularization.  This module
measures that bias.
"""

from __future__ import annotations

import numpy as np

__all__ = ["norm_by_degree", "degree_norm_correlation"]


def norm_by_degree(
    embeddings: np.ndarray,
    degrees: np.ndarray,
    buckets: list[tuple[int, float]] | None = None,
) -> dict[tuple[int, float], tuple[float, int]]:
    """Mean embedding norm per degree bucket.

    Returns ``bucket -> (mean_norm, count)``; empty buckets report
    ``(nan, 0)``.
    """
    from .degree_recall import DEGREE_BUCKETS

    buckets = buckets or DEGREE_BUCKETS
    degrees = np.asarray(degrees)
    norms = np.linalg.norm(embeddings, axis=1)
    out: dict[tuple[int, float], tuple[float, int]] = {}
    for low, high in buckets:
        mask = (degrees >= low) & (degrees < high)
        count = int(mask.sum())
        mean = float(norms[mask].mean()) if count else float("nan")
        out[(low, high)] = (mean, count)
    return out


def degree_norm_correlation(embeddings: np.ndarray, degrees: np.ndarray) -> float:
    """Pearson correlation between entity degree and embedding norm.

    Near 0 indicates degree-unbiased norms (what per-epoch normalization
    or SEA's regularizer enforce); strongly positive values indicate hub
    drift.  Returns 0.0 when either quantity is constant.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    norms = np.linalg.norm(embeddings, axis=1)
    if len(degrees) < 2 or degrees.std() == 0.0 or norms.std() == 0.0:
        return 0.0
    return float(np.corrcoef(degrees, norms)[0, 1])
