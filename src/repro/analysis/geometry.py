"""Geometric analysis of entity embeddings (§6.1).

* :func:`similarity_distribution` — Figure 9: average cosine similarity
  between source entities and their top-k cross-KG nearest neighbors.
* :func:`hubness_isolation` — Figure 10: how often each target entity
  appears as a top-1 nearest neighbor (0 = isolated, >1 = hub).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimilarityDistribution", "similarity_distribution", "hubness_isolation"]


@dataclass(frozen=True)
class SimilarityDistribution:
    """Mean similarity of the k nearest neighbors, plus diagnostics."""

    top_k_means: np.ndarray      # (k,) mean similarity, 1st..kth neighbor
    top1_mean: float
    variance: float              # mean (top1 - top5) gap: discriminativeness

    def __str__(self) -> str:
        tops = " ".join(f"{value:.3f}" for value in self.top_k_means)
        return f"top-k sims [{tops}] gap={self.variance:.3f}"


def similarity_distribution(
    similarity: np.ndarray, k: int = 5
) -> SimilarityDistribution:
    """Summarize a source-by-target cosine similarity matrix (Figure 9).

    A high first-neighbor similarity with a large drop towards the fifth
    indicates confident, discriminative embeddings — the profile of the
    best approaches in the paper.
    """
    if similarity.size == 0:
        return SimilarityDistribution(
            top_k_means=np.zeros(k), top1_mean=0.0, variance=0.0
        )
    k = min(k, similarity.shape[1])
    ordered = -np.sort(-similarity, axis=1)[:, :k]
    means = ordered.mean(axis=0)
    gap = float((ordered[:, 0] - ordered[:, -1]).mean())
    return SimilarityDistribution(
        top_k_means=means, top1_mean=float(means[0]), variance=gap
    )


def hubness_isolation(similarity: np.ndarray) -> dict[str, float]:
    """Figure 10: proportions of target entities appearing 0 / 1 / [2,4] /
    >=5 times as the top-1 nearest neighbor of source entities."""
    if similarity.size == 0:
        return {"0": 0.0, "1": 0.0, "[2,4]": 0.0, ">=5": 0.0}
    top1 = similarity.argmax(axis=1)
    counts = np.bincount(top1, minlength=similarity.shape[1])
    total = similarity.shape[1]
    return {
        "0": float((counts == 0).sum() / total),
        "1": float((counts == 1).sum() / total),
        "[2,4]": float(((counts >= 2) & (counts <= 4)).sum() / total),
        ">=5": float((counts >= 5).sum() / total),
    }
