"""Recall by alignment degree — the long-tail analysis of Figure 5."""

from __future__ import annotations

import numpy as np

from ..kg import KGPair

__all__ = ["DEGREE_BUCKETS", "bucket_of", "recall_by_degree"]

DEGREE_BUCKETS: list[tuple[int, float]] = [(1, 6), (6, 11), (11, 16), (16, np.inf)]


def bucket_of(degree: int, buckets=None) -> int:
    """Index of the degree bucket ``degree`` falls into (clamped)."""
    buckets = buckets or DEGREE_BUCKETS
    for index, (low, high) in enumerate(buckets):
        if low <= degree < high:
            return index
    return 0 if degree < buckets[0][0] else len(buckets) - 1


def recall_by_degree(
    pair: KGPair,
    test_pairs: list[tuple[str, str]],
    predicted: list[tuple[str, str]],
    buckets=None,
) -> dict[tuple[int, float], tuple[float, int]]:
    """Recall within each alignment-degree bucket.

    The degree of an alignment is the sum of its two entities' relation
    triples (paper Figure 5).  Returns ``bucket -> (recall, count)``.
    """
    buckets = buckets or DEGREE_BUCKETS
    correct = set(predicted) & set(test_pairs)
    hits = [0] * len(buckets)
    totals = [0] * len(buckets)
    for gold in test_pairs:
        index = bucket_of(pair.alignment_degree(gold), buckets)
        totals[index] += 1
        if gold in correct:
            hits[index] += 1
    return {
        bucket: ((hits[i] / totals[i]) if totals[i] else 0.0, totals[i])
        for i, bucket in enumerate(buckets)
    }
