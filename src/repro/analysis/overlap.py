"""Overlap of correct predictions across systems — Figure 12's Venn."""

from __future__ import annotations

from itertools import combinations

__all__ = ["prediction_overlap"]


def prediction_overlap(
    correct_by_system: dict[str, set[tuple[str, str]]],
    gold: set[tuple[str, str]],
) -> dict[frozenset[str], float]:
    """Proportion of the gold alignment found by each system combination.

    Returns a map from the *exact* set of systems that found an alignment
    (the Venn region) to its share of ``gold``; the empty frozenset is the
    share no system found.
    """
    if not gold:
        return {}
    regions: dict[frozenset[str], int] = {}
    for pair in gold:
        finders = frozenset(
            name for name, correct in correct_by_system.items() if pair in correct
        )
        regions[finders] = regions.get(finders, 0) + 1
    total = len(gold)
    # make sure every possible region is present for stable reporting
    names = list(correct_by_system)
    for size in range(len(names) + 1):
        for combo in combinations(names, size):
            regions.setdefault(frozenset(combo), 0)
    return {region: count / total for region, count in regions.items()}
