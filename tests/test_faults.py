"""Unit tests for the repro.faults injection harness and atomic writers."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_lines,
    atomic_write_text,
    atomic_write_with,
    fault_point,
    parse_plan,
    sha256_file,
)


# ---------------------------------------------------------------- parsing
def test_parse_plan_grammar():
    plan = parse_plan("checkpoint.write:nth=3:mode=kill;io.read:p=0.5:seed=7")
    assert plan.sites == ["checkpoint.write", "io.read"]
    (rule,) = plan.rules_for("checkpoint.write")
    assert rule.nth == 3 and rule.mode == "kill"
    (rule,) = plan.rules_for("io.read")
    assert rule.p == 0.5 and rule.seed == 7


def test_parse_plan_rejects_bad_mode():
    with pytest.raises(ValueError):
        parse_plan("site:mode=explode")


def test_inactive_by_default():
    assert not faults.is_active()
    fault_point("anything")  # no plan installed: must be a no-op


# ---------------------------------------------------------------- firing
def test_nth_rule_fires_once_at_nth_hit():
    with faults.inject("site.a:nth=3:mode=raise") as plan:
        fault_point("site.a")
        fault_point("site.a")
        with pytest.raises(InjectedFault):
            fault_point("site.a")
        fault_point("site.a")  # nth rules default to firing once
    assert plan.hits("site.a") == 3  # exhausted rules stop counting
    assert plan.log == [("site.a", "raise")]


def test_probability_rule_is_deterministic():
    def run():
        fired = []
        with faults.inject("site.p:p=0.5:seed=11:times=100"):
            for i in range(50):
                try:
                    fault_point("site.p")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
        return fired

    first, second = run(), run()
    assert first == second
    assert any(first) and not all(first)


def test_sites_are_independent():
    with faults.inject("site.a:nth=1:mode=raise"):
        fault_point("site.b")  # different site: untouched
        with pytest.raises(InjectedFault):
            fault_point("site.a")


def test_inject_restores_previous_plan():
    assert faults.active_plan() is None
    with faults.inject("x:nth=1"):
        assert faults.active_plan() is not None
    assert faults.active_plan() is None


def test_stage_matching():
    # corrupt rules default to the post stage, crash rules to pre
    rule = FaultRule(site="s", mode="corrupt")
    assert rule.stage == "post"
    rule = FaultRule(site="s", mode="kill")
    assert rule.stage == "pre"
    # a stageless call site accepts any rule
    assert FaultRule(site="s", mode="raise").matches_stage(None)


def test_partial_mode_tears_the_file(tmp_path):
    path = tmp_path / "data.bin"
    payload = b"0123456789" * 10
    with faults.inject("io.write:nth=1:mode=partial:stage=pre"):
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, payload, site="io.write")
    # the tear happened on the tmp file; the final path never appeared
    assert not path.exists()
    tmp_file = path.with_name(path.name + ".tmp")
    assert tmp_file.exists()
    assert 0 < tmp_file.stat().st_size < len(payload)


def test_corrupt_mode_flips_bytes_silently(tmp_path):
    path = tmp_path / "data.bin"
    payload = bytes(range(256))
    with faults.inject("io.write:nth=1:mode=corrupt"):
        atomic_write_bytes(path, payload, site="io.write")  # no exception
    assert path.read_bytes() != payload
    assert path.stat().st_size == len(payload)


def test_kill_mode_exits_137(tmp_path):
    code = (
        "from repro import faults\n"
        "with faults.inject('boom:nth=1:mode=kill'):\n"
        "    faults.fault_point('boom')\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            cwd=Path(__file__).resolve().parents[1])
    assert result.returncode == faults.KILL_EXIT_CODE == 137


def test_env_plan_installs_in_subprocess(tmp_path):
    code = (
        "from repro.faults import fault_point\n"
        "fault_point('env.site')\n"
    )
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_FAULTS="env.site:nth=1:mode=raise")
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True,
                            cwd=Path(__file__).resolve().parents[1])
    assert result.returncode != 0
    assert "InjectedFault" in result.stderr


# ---------------------------------------------------------------- atomic
def test_atomic_writers_round_trip(tmp_path):
    text_path = atomic_write_text(tmp_path / "a.txt", "hello\n")
    assert text_path.read_text() == "hello\n"
    json_path = atomic_write_json(tmp_path / "a.json", {"x": [1, 2]})
    assert json.loads(json_path.read_text()) == {"x": [1, 2]}
    lines_path = atomic_write_lines(tmp_path / "a.lines", ["one", "two"])
    assert lines_path.read_text() == "one\ntwo\n"
    npz_path = atomic_write_with(
        tmp_path / "a.npz",
        lambda handle: np.savez(handle, x=np.arange(3)),
    )
    with np.load(npz_path) as npz:
        assert list(npz["x"]) == [0, 1, 2]


def test_atomic_write_preserves_old_file_on_crash(tmp_path):
    path = tmp_path / "table.txt"
    atomic_write_text(path, "old complete contents\n", site="io.write")
    with faults.inject("io.write:nth=1:mode=raise:stage=pre"):
        with pytest.raises(InjectedFault):
            atomic_write_text(path, "new contents\n", site="io.write")
    # reader still sees the previous complete file, never a torn one
    assert path.read_text() == "old complete contents\n"


def test_sha256_file_matches_hashlib(tmp_path):
    import hashlib

    path = tmp_path / "blob"
    payload = os.urandom(4096)
    path.write_bytes(payload)
    assert sha256_file(path) == hashlib.sha256(payload).hexdigest()


def test_fault_plan_add_and_times():
    plan = FaultPlan()
    plan.add(FaultRule(site="s", mode="raise", p=1.0, times=2))
    faults.install(plan)
    try:
        with pytest.raises(InjectedFault):
            fault_point("s")
        with pytest.raises(InjectedFault):
            fault_point("s")
        fault_point("s")  # times=2 exhausted
    finally:
        faults.reset()
