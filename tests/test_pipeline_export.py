"""Tests for the CSV result exporter."""

import csv

import pytest

from repro.approaches import get_approach
from repro.pipeline import cross_validate, export_csv, export_fold_csv


@pytest.fixture(scope="module")
def results(enfr_pair_for_export):
    from repro.approaches import ApproachConfig

    config = ApproachConfig(dim=16, epochs=6, valid_every=3)
    return [
        cross_validate(lambda: get_approach(name, config),
                       enfr_pair_for_export, n_folds=2)
        for name in ("MTransE", "BootEA")
    ]


@pytest.fixture(scope="module")
def enfr_pair_for_export():
    from repro.datagen import benchmark_pair

    return benchmark_pair("EN-FR", size=150, method="direct", seed=0)


def test_export_csv_structure(results, tmp_path):
    path = tmp_path / "results.csv"
    export_csv(results, path)
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert {row["approach"] for row in rows} == {"MTransE", "BootEA"}
    for row in rows:
        assert row["folds"] == "2"
        assert 0.0 <= float(row["hits@1_mean"]) <= 1.0
        assert float(row["hits@1_std"]) >= 0.0
        assert float(row["train_seconds"]) > 0.0


def test_export_fold_csv_structure(results, tmp_path):
    path = tmp_path / "folds.csv"
    export_fold_csv(results, path)
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4  # 2 approaches x 2 folds
    assert {row["fold"] for row in rows} == {"1", "2"}
    for row in rows:
        assert int(row["epochs"]) >= 1
        assert float(row["mr"]) >= 1.0


def test_export_creates_parent_dirs(results, tmp_path):
    path = tmp_path / "deep" / "nested" / "out.csv"
    export_csv(results, path)
    assert path.exists()


def test_export_mean_matches_cv(results, tmp_path):
    path = tmp_path / "check.csv"
    export_csv(results, path)
    with open(path, newline="", encoding="utf-8") as handle:
        rows = {row["approach"]: row for row in csv.DictReader(handle)}
    for result in results:
        mean, std = result.mean_std("hits@1")
        assert float(rows[result.name]["hits@1_mean"]) == pytest.approx(mean, abs=1e-6)
        assert float(rows[result.name]["hits@1_std"]) == pytest.approx(std, abs=1e-6)
