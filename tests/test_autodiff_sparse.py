"""Tests for the row-sparse gradient path.

Covers the SparseGrad container (coalescing, densification, merging),
gather's sparse backward and index validation, mixed sparse+dense
accumulation, the optimizers' sparse fast paths, and optimizer
state_dict round-trips.
"""

import numpy as np
import pytest

from repro.autodiff import (
    SGD,
    Adagrad,
    Adam,
    Parameter,
    SparseGrad,
    Tensor,
    scatter_rows,
    set_sparse_gradients,
    sparse_gradients_enabled,
)

RNG = np.random.default_rng(7)


@pytest.fixture
def dense_mode():
    """Temporarily disable the sparse path."""
    previous = set_sparse_gradients(False)
    yield
    set_sparse_gradients(previous)


# ---------------------------------------------------------------------------
# SparseGrad container
# ---------------------------------------------------------------------------
def test_coalesce_sums_duplicate_rows():
    grad = SparseGrad([2, 0, 2, 2], np.array([[1.0, 2], [3, 4], [5, 6], [7, 8]]), (4, 2))
    coalesced = grad.coalesce()
    np.testing.assert_array_equal(coalesced.indices, [0, 2])
    np.testing.assert_allclose(coalesced.values, [[3, 4], [13, 16]])
    assert coalesced.coalesce() is coalesced  # idempotent


def test_to_dense_matches_scatter_add_reference():
    indices = RNG.integers(0, 10, size=40)
    values = RNG.normal(size=(40, 3))
    expected = np.zeros((10, 3))
    np.add.at(expected, indices, values)
    grad = SparseGrad(indices, values, (10, 3))
    np.testing.assert_allclose(grad.to_dense(), expected, atol=1e-12)
    # __array__ interop
    np.testing.assert_allclose(np.asarray(grad), expected, atol=1e-12)
    # add_to scatters into an existing dense array
    dense = np.ones((10, 3))
    grad.add_to(dense)
    np.testing.assert_allclose(dense, expected + 1.0, atol=1e-12)


def test_merged_concatenates_and_checks_shape():
    a = SparseGrad([0], np.ones((1, 2)), (3, 2))
    b = SparseGrad([0, 1], np.ones((2, 2)), (3, 2))
    merged = a.merged(b)
    np.testing.assert_allclose(merged.to_dense()[0], [2.0, 2.0])
    with pytest.raises(ValueError):
        a.merged(SparseGrad([0], np.ones((1, 4)), (3, 4)))


def test_sparse_grad_1d_values():
    """Row-sparse grads over 1-D parameters (e.g. ConvE's entity bias)."""
    grad = SparseGrad([1, 1, 3], np.array([1.0, 2.0, 3.0]), (5,))
    np.testing.assert_allclose(grad.to_dense(), [0, 3.0, 0, 3.0, 0])


def test_scatter_rows_matches_add_at():
    out = np.zeros((6, 2))
    indices = np.array([5, 0, 5, 5])
    values = RNG.normal(size=(4, 2))
    scatter_rows(out, indices, values)
    expected = np.zeros((6, 2))
    np.add.at(expected, indices, values)
    np.testing.assert_allclose(out, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# gather: sparse backward + validation
# ---------------------------------------------------------------------------
def test_gather_on_leaf_emits_sparse_grad():
    assert sparse_gradients_enabled()
    table = Parameter(RNG.normal(size=(6, 3)))
    table.gather([0, 4, 4]).sum().backward()
    assert isinstance(table.grad, SparseGrad)
    dense = table.dense_grad()
    assert dense[4].sum() == pytest.approx(6.0)  # two lookups of row 4


def test_gather_on_intermediate_stays_dense():
    table = Parameter(RNG.normal(size=(6, 3)))
    hidden = table * 2.0  # op output: its grad must flow through the op
    hidden.gather([1, 1, 2]).sum().backward()
    assert isinstance(table.grad, np.ndarray)
    assert table.grad[1].sum() == pytest.approx(12.0)  # 2 lookups * dim 3 * factor 2


def test_gather_dense_mode_matches_sparse_mode():
    indices = RNG.integers(0, 8, size=30)
    data = RNG.normal(size=(8, 4))

    def run():
        table = Parameter(data.copy())
        (table.gather(indices) * table.gather(indices[::-1])).sum().backward()
        return table.dense_grad()

    sparse_grad = run()
    previous = set_sparse_gradients(False)
    try:
        dense_grad = run()
    finally:
        set_sparse_gradients(previous)
    np.testing.assert_allclose(sparse_grad, dense_grad, atol=1e-12)


def test_gather_accepts_lists_tuples_and_negative_indices():
    table = Parameter(np.arange(12.0).reshape(4, 3))
    np.testing.assert_allclose(table.gather([1, 2]).data, table.data[[1, 2]])
    np.testing.assert_allclose(table.gather((0,)).data, table.data[[0]])
    np.testing.assert_allclose(table.gather([-1]).data, table.data[[3]])
    # negative indices normalize so the sparse backward scatters correctly
    table.gather([-1, 3]).sum().backward()
    assert table.dense_grad()[3].sum() == pytest.approx(6.0)


def test_gather_out_of_range_raises_index_error():
    table = Tensor(np.zeros((4, 2)))
    with pytest.raises(IndexError, match="out of range"):
        table.gather([0, 4])
    with pytest.raises(IndexError, match="out of range"):
        table.gather([-5])


def test_gather_non_integer_raises_type_error():
    table = Tensor(np.zeros((4, 2)))
    with pytest.raises(TypeError, match="integers"):
        table.gather([0.5, 1.0])
    with pytest.raises(TypeError, match="integers"):
        table.gather(np.array([True, False]))


def test_gather_empty_indices():
    table = Parameter(np.ones((4, 2)))
    out = table.gather([])
    assert out.shape == (0, 2)


def test_gather_scalar_tensor_raises():
    with pytest.raises(IndexError):
        Tensor(3.0).gather([0])


# ---------------------------------------------------------------------------
# mixed accumulation
# ---------------------------------------------------------------------------
def test_accumulate_sparse_then_dense_densifies():
    p = Parameter(RNG.normal(size=(5, 2)))
    p._accumulate(SparseGrad([1, 1], np.ones((2, 2)), (5, 2)))
    p._accumulate(np.full((5, 2), 0.5))
    assert isinstance(p.grad, np.ndarray)
    np.testing.assert_allclose(p.grad[1], [2.5, 2.5])
    np.testing.assert_allclose(p.grad[0], [0.5, 0.5])


def test_accumulate_dense_then_sparse_scatters():
    p = Parameter(RNG.normal(size=(5, 2)))
    p._accumulate(np.full((5, 2), 0.5))
    p._accumulate(SparseGrad([1, 1], np.ones((2, 2)), (5, 2)))
    assert isinstance(p.grad, np.ndarray)
    np.testing.assert_allclose(p.grad[1], [2.5, 2.5])


def test_accumulate_sparse_then_sparse_merges_lazily():
    p = Parameter(RNG.normal(size=(5, 2)))
    p._accumulate(SparseGrad([0], np.ones((1, 2)), (5, 2)))
    p._accumulate(SparseGrad([0, 2], np.ones((2, 2)), (5, 2)))
    assert isinstance(p.grad, SparseGrad)
    np.testing.assert_allclose(p.dense_grad()[0], [2.0, 2.0])


def test_graph_mixed_sparse_dense_gradient_is_correct():
    """gather (sparse) + full-matrix regularizer (dense) on one parameter."""
    data = RNG.normal(size=(6, 3))
    indices = np.array([2, 2, 5])

    def run(enabled):
        previous = set_sparse_gradients(enabled)
        try:
            p = Parameter(data.copy())
            loss = p.gather(indices).square().sum() + 0.1 * p.square().sum()
            loss.backward()
            return p.dense_grad()
        finally:
            set_sparse_gradients(previous)

    np.testing.assert_allclose(run(True), run(False), atol=1e-12)


# ---------------------------------------------------------------------------
# optimizer sparse fast paths
# ---------------------------------------------------------------------------
def _sparse_vs_dense_step(make_optimizer, steps=20, rows=50, dim=4, coverage=8):
    """Run identical gather-based training sparsely and densely."""
    data = RNG.normal(size=(rows, dim))
    batches = [RNG.integers(0, rows, size=coverage) for _ in range(steps)]
    results = {}
    for enabled in (True, False):
        previous = set_sparse_gradients(enabled)
        try:
            p = Parameter(data.copy())
            optimizer = make_optimizer(p)
            for batch in batches:
                optimizer.zero_grad()
                (p.gather(batch).square().sum() * 0.5).backward()
                optimizer.step()
            results[enabled] = p.data.copy()
        finally:
            set_sparse_gradients(previous)
    return results[True], results[False]


def test_sgd_sparse_exactly_matches_dense():
    sparse, dense = _sparse_vs_dense_step(lambda p: SGD([p], lr=0.05))
    np.testing.assert_allclose(sparse, dense, atol=1e-12)


def test_adagrad_sparse_exactly_matches_dense():
    sparse, dense = _sparse_vs_dense_step(lambda p: Adagrad([p], lr=0.05))
    np.testing.assert_allclose(sparse, dense, atol=1e-12)


def test_adam_sparse_matches_dense_under_full_coverage():
    """When every row appears in every batch, lazy Adam == dense Adam."""
    rows = 12
    batches = [
        np.concatenate([np.arange(rows), RNG.integers(0, rows, size=6)])
        for _ in range(15)
    ]
    data = RNG.normal(size=(rows, 3))
    results = {}
    for enabled in (True, False):
        previous = set_sparse_gradients(enabled)
        try:
            p = Parameter(data.copy())
            optimizer = Adam([p], lr=0.01)
            for batch in batches:
                optimizer.zero_grad()
                p.gather(batch).square().sum().backward()
                optimizer.step()
            results[enabled] = p.data.copy()
        finally:
            set_sparse_gradients(previous)
    np.testing.assert_allclose(results[True], results[False], atol=1e-9)


def test_momentum_sparse_matches_dense_under_full_coverage():
    rows = 10
    batches = [np.arange(rows) for _ in range(12)]
    data = RNG.normal(size=(rows, 3))
    results = {}
    for enabled in (True, False):
        previous = set_sparse_gradients(enabled)
        try:
            p = Parameter(data.copy())
            optimizer = SGD([p], lr=0.01, momentum=0.9)
            for batch in batches:
                optimizer.zero_grad()
                p.gather(batch).square().sum().backward()
                optimizer.step()
            results[enabled] = p.data.copy()
        finally:
            set_sparse_gradients(previous)
    np.testing.assert_allclose(results[True], results[False], atol=1e-10)


def test_momentum_sparse_applies_geometric_catchup():
    """A row skipped for k steps receives the k decayed ghost updates."""
    mu, lr = 0.5, 0.1
    p_dense = Parameter(np.array([[1.0], [1.0]]))
    p_sparse = Parameter(np.array([[1.0], [1.0]]))
    opt_dense = SGD([p_dense], lr=lr, momentum=mu)
    opt_sparse = SGD([p_sparse], lr=lr, momentum=mu)
    grads = [  # row 1 only gets a gradient on steps 0 and 3
        ([0, 1], [[1.0], [2.0]]),
        ([0], [[1.0]]),
        ([0], [[1.0]]),
        ([0, 1], [[1.0], [2.0]]),
    ]
    for indices, values in grads:
        opt_sparse.zero_grad()
        p_sparse.grad = SparseGrad(indices, np.array(values), (2, 1))
        opt_sparse.step()
        opt_dense.zero_grad()
        dense = np.zeros((2, 1))
        dense[indices] = values
        p_dense.grad = dense
        opt_dense.step()
    np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-12)


def test_sparse_update_leaves_untouched_rows_alone():
    p = Parameter(np.ones((100, 4)))
    optimizer = Adam([p], lr=0.5)
    p.grad = SparseGrad([3, 7], RNG.normal(size=(2, 4)), (100, 4))
    optimizer.step()
    untouched = np.delete(np.arange(100), [3, 7])
    np.testing.assert_array_equal(p.data[untouched], 1.0)
    assert not np.allclose(p.data[[3, 7]], 1.0)


# ---------------------------------------------------------------------------
# state keying + checkpointing
# ---------------------------------------------------------------------------
def _step(optimizer, p, value=1.0):
    optimizer.zero_grad()
    p.grad = np.full(p.shape, value)
    optimizer.step()


@pytest.mark.parametrize("factory", [
    lambda p: SGD([p], lr=0.1, momentum=0.9),
    lambda p: Adagrad([p], lr=0.1),
    lambda p: Adam([p], lr=0.1),
])
def test_state_dict_roundtrip_resumes_exactly(factory):
    p1 = Parameter(np.ones((4, 2)))
    opt1 = factory(p1)
    for _ in range(3):
        _step(opt1, p1)
    snapshot = opt1.state_dict()
    data_at_save = p1.data.copy()

    # continue the original
    for _ in range(2):
        _step(opt1, p1)

    # fresh parameter + optimizer restored from the snapshot
    p2 = Parameter(data_at_save)
    opt2 = factory(p2)
    opt2.load_state_dict(snapshot)
    for _ in range(2):
        _step(opt2, p2)

    np.testing.assert_allclose(p2.data, p1.data, atol=1e-12)


def test_state_keyed_by_index_not_identity():
    """State must be keyed by parameter position, not id() (which can be
    reused after garbage collection and breaks checkpoint/restore)."""
    p = Parameter(np.ones((3, 2)))
    optimizer = Adam([p], lr=0.1)
    _step(optimizer, p)
    assert set(optimizer.state_dict()["state"].keys()) == {0}


def test_consume_touched_tracks_sparse_rows():
    p = Parameter(np.ones((10, 2)))
    optimizer = SGD([p], lr=0.1)
    optimizer.track_touched = True
    p.grad = SparseGrad([4, 2, 4], np.ones((3, 2)), (10, 2))
    optimizer.step()
    p.grad = SparseGrad([7], np.ones((1, 2)), (10, 2))
    optimizer.step()
    np.testing.assert_array_equal(optimizer.consume_touched(p), [2, 4, 7])
    # consumed: the next query starts empty
    np.testing.assert_array_equal(optimizer.consume_touched(p), [])
    # a dense gradient means "all rows" -> None
    p.grad = np.ones((10, 2))
    optimizer.step()
    assert optimizer.consume_touched(p) is None


def test_consume_touched_rejects_foreign_parameter():
    p = Parameter(np.ones((2, 2)))
    optimizer = SGD([p], lr=0.1)
    with pytest.raises(ValueError):
        optimizer.consume_touched(Parameter(np.ones((2, 2))))


# ---------------------------------------------------------------------------
# checkpoint round-trip under the sparse path
# ---------------------------------------------------------------------------
def _sparse_step(optimizer, p, seed):
    """One update touching a seed-dependent subset of rows."""
    rng = np.random.default_rng(seed)
    rows = rng.choice(p.shape[0], size=3, replace=False)
    optimizer.zero_grad()
    p.grad = SparseGrad(rows, rng.normal(size=(3,) + p.shape[1:]), p.shape)
    optimizer.step()


@pytest.mark.parametrize("factory,lazy_keys", [
    (lambda p: SGD([p], lr=0.1, momentum=0.9), ("last_step",)),
    (lambda p: Adam([p], lr=0.1), ("t",)),
    (lambda p: Adagrad([p], lr=0.1), ()),
])
def test_sparse_state_dict_roundtrip_is_bit_identical(factory, lazy_keys):
    """Save mid-training under row-sparse grads, restore into a fresh
    optimizer, continue: parameters and per-row lazy state (momentum
    ``last_step``, lazy-Adam per-row ``t``) must match bit for bit."""
    p1 = Parameter(RNG.normal(size=(12, 3)))
    opt1 = factory(p1)
    for seed in range(4):
        _sparse_step(opt1, p1, seed)
    snapshot = opt1.state_dict()
    data_at_save = p1.data.copy()
    for seed in range(4, 7):
        _sparse_step(opt1, p1, seed)

    p2 = Parameter(data_at_save)
    opt2 = factory(p2)
    opt2.load_state_dict(snapshot)
    # the lazy per-row counters restore exactly, not just the tensors
    for key in lazy_keys:
        np.testing.assert_array_equal(
            opt2.state_dict()["state"][0][key], snapshot["state"][0][key]
        )
    for seed in range(4, 7):
        _sparse_step(opt2, p2, seed)

    np.testing.assert_array_equal(p2.data, p1.data)
    state1, state2 = opt1.state_dict()["state"][0], opt2.state_dict()["state"][0]
    assert state1.keys() == state2.keys()
    for key in state1:
        np.testing.assert_array_equal(state1[key], state2[key])


def test_sparse_roundtrip_preserves_pending_catchup():
    """Rows with *stale* momentum at save time (touched early, then not
    again) must catch up identically after a restore — the ghost-update
    arithmetic depends on last_step surviving the round-trip."""
    p1 = Parameter(np.zeros((6, 2)))
    opt1 = SGD([p1], lr=0.1, momentum=0.9)
    # touch row 0 once, then hammer row 5 so row 0 goes stale
    p1.grad = SparseGrad([0], np.ones((1, 2)), p1.shape)
    opt1.step()
    for _ in range(3):
        p1.grad = SparseGrad([5], np.ones((1, 2)), p1.shape)
        opt1.step()
    snapshot = opt1.state_dict()
    saved = p1.data.copy()
    assert snapshot["state"][0]["last_step"][0] == 1  # row 0 is stale

    p1.grad = SparseGrad([0], np.ones((1, 2)), p1.shape)  # catch-up fires
    opt1.step()

    p2 = Parameter(saved)
    opt2 = SGD([p2], lr=0.1, momentum=0.9)
    opt2.load_state_dict(snapshot)
    p2.grad = SparseGrad([0], np.ones((1, 2)), p2.shape)
    opt2.step()
    np.testing.assert_array_equal(p2.data, p1.data)
