"""End-to-end integration: the full paper workflow on one tiny dataset.

Covers: generation -> IDS sampling -> OpenEA-format persistence ->
5-fold cross-validation -> geometric analysis -> conventional systems ->
overlap — the complete chain a user of the library walks through.
"""

import numpy as np
import pytest

import repro
from repro import (
    ApproachConfig,
    LogMap,
    Paris,
    benchmark_pair,
    cross_validate,
    get_approach,
)
from repro.analysis import hubness_isolation, prediction_overlap, similarity_distribution
from repro.kg import load_pair, load_splits, save_pair, save_splits

pytestmark = pytest.mark.slow  # full training loops; deselect via -m 'not slow'


def test_package_version_and_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    """Run the full chain once; individual tests assert on the pieces."""
    tmp = tmp_path_factory.mktemp("workflow")
    pair = benchmark_pair("D-Y", size=180, version="V1", seed=7, method="ids")

    directory = tmp / "dataset"
    save_pair(pair, directory)
    save_splits(pair.five_fold_splits(seed=7), directory)
    loaded = load_pair(directory, name=pair.name)
    splits = load_splits(directory)

    config = ApproachConfig(dim=16, epochs=15, lr=0.05, valid_every=5)
    cv = cross_validate(
        lambda: get_approach("BootEA", config), loaded, n_folds=2, seed=7
    )
    return pair, loaded, splits, cv


def test_roundtrip_preserves_dataset(workflow):
    pair, loaded, splits, _ = workflow
    assert sorted(loaded.alignment) == sorted(pair.alignment)
    assert len(splits) == 5
    assert splits[0].total == len(pair.alignment)


def test_cross_validation_aggregates(workflow):
    _, _, _, cv = workflow
    mean, std = cv.mean_std("hits@1")
    assert 0.0 < mean <= 1.0
    assert std >= 0.0
    assert len(cv.folds) == 2


def test_trained_fold_supports_analysis(workflow):
    _, loaded, _, cv = workflow
    approach = cv.folds[0].approach
    test_pairs = loaded.five_fold_splits(seed=7)[0].test
    similarity = approach.similarity_between(
        [a for a, _ in test_pairs], [b for _, b in test_pairs], metric="cosine"
    )
    dist = similarity_distribution(similarity)
    assert np.isfinite(dist.top1_mean)
    proportions = hubness_isolation(similarity)
    assert sum(proportions.values()) == pytest.approx(1.0)


def test_conventional_systems_run_on_same_dataset(workflow):
    pair, _, _, cv = workflow
    gold = set(pair.alignment)
    paris_correct = set(Paris().align(pair).alignment) & gold
    logmap_correct = set(LogMap().align(pair).alignment) & gold
    approach = cv.folds[0].approach
    test_pairs = pair.five_fold_splits(seed=7)[0].test
    embedding_correct = set(approach.predict(test_pairs)) & set(test_pairs)
    overlap = prediction_overlap(
        {"PARIS": paris_correct, "LogMap": logmap_correct,
         "OpenEA": embedding_correct},
        set(test_pairs),
    )
    assert sum(overlap.values()) == pytest.approx(1.0)
    assert paris_correct, "PARIS should find something on D-Y"


def test_alignment_strategies_consistent(workflow):
    _, loaded, _, cv = workflow
    approach = cv.folds[0].approach
    test_pairs = loaded.five_fold_splits(seed=7)[0].test
    greedy = approach.predict(test_pairs, strategy="greedy")
    hungarian = approach.predict(test_pairs, strategy="hungarian")
    # hungarian is 1-to-1; greedy may repeat targets
    targets = [b for _, b in hungarian]
    assert len(targets) == len(set(targets))
    assert len(greedy) == len(test_pairs)
