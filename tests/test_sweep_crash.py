"""Crash recovery for parallel sweeps (docs/orchestration.md).

Arms the fault-injection plan so workers ``os._exit(137)`` mid-fold
(the ``epoch.end`` site) or at job pickup (the ``sweep.job`` site) —
forked workers inherit the armed plan — then asserts the sweep still
completes, only torn jobs were requeued, and every metric matches an
uninterrupted run bit for bit.
"""

import pytest

from repro import faults
from repro.faults import KILL_EXIT_CODE
from repro.orchestrate import parse_spec, payload_metrics, run_sweep

RAW_SPEC = {
    "sweep": {"name": "crashy", "n_folds": 2, "seed": 0, "epochs": 4},
    "halving": {"min_epochs": 1, "eta": 2},
    "datasets": [{"family": "EN-FR", "size": 120, "method": "direct"}],
    "approaches": [
        {"name": "MTransE", "config": {"dim": 8, "valid_every": 2},
         "grid": {"lr": [0.01, 0.05, 0.2, 1.0]}},
    ],
}


@pytest.fixture(scope="module")
def clean_result():
    return run_sweep(parse_spec(RAW_SPEC), jobs=1, record=False)


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.install(None)


def _assert_matches_clean(crashed, clean_result):
    assert not crashed.stats.failed
    assert crashed.stats.worker_deaths > 0, "no worker was ever killed"
    assert crashed.stats.requeued, "the torn job was not requeued"
    # each death tears at most the one in-flight job of that worker
    assert len(crashed.stats.requeued) <= crashed.stats.worker_deaths
    assert crashed.job_payloads.keys() == clean_result.job_payloads.keys()
    for job_id, payload in clean_result.job_payloads.items():
        assert payload_metrics(payload) == \
            payload_metrics(crashed.job_payloads[job_id]), job_id


def test_worker_killed_at_job_pickup_is_survived(tmp_path, clean_result):
    # every worker dies the moment it picks up its second job; veteran
    # deaths are requeued without charging attempts, so the sweep
    # finishes no matter how often the fault fires
    faults.install("sweep.job:nth=2:mode=kill")
    crashed = run_sweep(parse_spec(RAW_SPEC), jobs=2, record=False,
                        workdir=tmp_path / "sweep")
    faults.install(None)
    _assert_matches_clean(crashed, clean_result)
    # requeued jobs were torn mid-flight yet still completed exactly once
    assert set(crashed.stats.requeued) <= set(crashed.job_payloads)


def test_worker_killed_mid_fold_resumes_checkpoint(tmp_path, clean_result):
    # os._exit(137) fires *inside* training (second epoch boundary of
    # each worker generation).  The requeued job resumes its lineage
    # checkpoint in the sweep workdir, so repeated kills still make
    # forward progress and the final metrics are bit-identical.
    assert KILL_EXIT_CODE == 137
    faults.install("epoch.end:nth=2:mode=kill")
    crashed = run_sweep(parse_spec(RAW_SPEC), jobs=2, record=False,
                        workdir=tmp_path / "sweep", max_attempts=20)
    faults.install(None)
    _assert_matches_clean(crashed, clean_result)


def test_killed_sweep_resumes_to_same_final_table(tmp_path, clean_result):
    # after a crashed-but-completed sweep, a rerun with the same workdir
    # restores every job from the progress file and recomputes nothing
    workdir = tmp_path / "sweep"
    faults.install("epoch.end:nth=2:mode=kill")
    crashed = run_sweep(parse_spec(RAW_SPEC), jobs=2, record=False,
                        workdir=workdir, max_attempts=20)
    faults.install(None)
    assert not crashed.stats.failed
    resumed = run_sweep(parse_spec(RAW_SPEC), jobs=2, record=False,
                        workdir=workdir)
    assert not resumed.stats.executed
    assert len(resumed.stats.restored) == len(clean_result.job_payloads)
    for (key, cv), (ckey, ccv) in zip(sorted(resumed.tables.items()),
                                      sorted(clean_result.tables.items())):
        assert key == ckey
        assert cv.mean_std("hits@1") == ccv.mean_std("hits@1")
        assert cv.mean_std("mrr") == ccv.mean_std("mrr")
