"""Tests for IDS, the baseline samplers and PageRank."""

import networkx as nx
import numpy as np
import pytest

from repro.datagen import source_pair
from repro.kg import (
    KGPair,
    KnowledgeGraph,
    degree_distribution,
    isolated_entity_ratio,
    js_divergence,
)
from repro.sampling import (
    degree_biased_sample,
    ids_sample,
    pagerank,
    prs_sample,
    ras_sample,
)


@pytest.fixture(scope="module")
def source():
    return source_pair("EN-FR", n_entities=900, version="V1", seed=0)


# ---------------------------------------------------------------------------
# pagerank
# ---------------------------------------------------------------------------
def test_pagerank_sums_to_one(source):
    ranks = pagerank(source.kg1)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)


def test_pagerank_empty_graph():
    assert pagerank(KnowledgeGraph()) == {}


def test_pagerank_matches_networkx(source):
    ranks = pagerank(source.kg1)
    graph = nx.Graph()
    graph.add_nodes_from(source.kg1.entities)
    graph.add_edges_from(
        (h, t) for h, _, t in source.kg1.relation_triples if h != t
    )
    expected = nx.pagerank(graph, alpha=0.85)
    worst = max(abs(ranks[e] - expected[e]) for e in ranks)
    assert worst < 1e-3


def test_pagerank_hub_ranks_high():
    triples = [("hub", "r", f"leaf{i}") for i in range(20)]
    triples += [("leaf0", "r", "leaf1")]
    ranks = pagerank(KnowledgeGraph(triples))
    assert ranks["hub"] == max(ranks.values())


def test_pagerank_isolated_entities_get_teleport_mass():
    kg = KnowledgeGraph(
        relation_triples=[("a", "r", "b")],
        attribute_triples=[("loner", "x", "1")],
    )
    ranks = pagerank(kg)
    assert ranks["loner"] > 0.0


# ---------------------------------------------------------------------------
# IDS
# ---------------------------------------------------------------------------
def test_ids_reaches_target_size(source):
    pair = ids_sample(source, 300, seed=0)
    assert len(pair.alignment) <= 300
    assert len(pair.alignment) > 240  # no catastrophic overshoot


def test_ids_keeps_alignment_consistent(source):
    pair = ids_sample(source, 300, seed=0)
    ent1, ent2 = pair.kg1.entities, pair.kg2.entities
    for a, b in pair.alignment:
        assert a in ent1
        assert b in ent2


def test_ids_low_js_divergence(source):
    result = ids_sample(source, 400, seed=0, return_details=True)
    assert result.js1 < 0.08
    assert result.js2 < 0.08


def test_ids_no_isolates(source):
    pair = ids_sample(source, 300, seed=0)
    assert isolated_entity_ratio(pair.kg1) < 0.02
    assert isolated_entity_ratio(pair.kg2) < 0.02


def test_ids_validates_arguments(source):
    with pytest.raises(ValueError):
        ids_sample(source, 0)
    with pytest.raises(ValueError):
        ids_sample(source, 10**6)


def test_ids_deterministic(source):
    one = ids_sample(source, 300, seed=7)
    two = ids_sample(source, 300, seed=7)
    assert one.alignment == two.alignment


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------
def test_ras_exact_size(source):
    pair = ras_sample(source, 250, seed=0)
    assert len(pair.alignment) == 250


def test_prs_exact_size(source):
    pair = prs_sample(source, 250, seed=0)
    assert len(pair.alignment) == 250


def test_baselines_validate_size(source):
    for sampler in (ras_sample, prs_sample, degree_biased_sample):
        with pytest.raises(ValueError):
            sampler(source, 0)
        with pytest.raises(ValueError):
            sampler(source, 10**6)


def test_table3_quality_ordering(source):
    """Paper Table 3: IDS beats PRS beats RAS on JS and isolation."""
    reference = degree_distribution(source.kg1)

    def quality(pair):
        js = js_divergence(reference, degree_distribution(pair.kg1))
        return js, isolated_entity_ratio(pair.kg1)

    js_ids, iso_ids = quality(ids_sample(source, 200, seed=0))
    js_ras, iso_ras = quality(ras_sample(source, 200, seed=0))
    js_prs, iso_prs = quality(prs_sample(source, 200, seed=0))
    assert js_ids < js_prs < js_ras
    assert iso_ids < iso_ras
    assert iso_ids < iso_prs


def test_degree_biased_sample_is_denser(source):
    biased = degree_biased_sample(source, 200, bias=2.0, seed=0)
    plain = ras_sample(source, 200, seed=0)
    assert biased.kg1.average_degree() > plain.kg1.average_degree()


def test_samplers_preserve_metadata(source):
    pair = ras_sample(source, 100, seed=0)
    assert pair.metadata["family"] == "EN-FR"
