"""Unit tests for the repro.obs telemetry layer.

Tracer timing uses injected fake clocks so span durations are exact and
deterministic; registry and histogram semantics are checked directly.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import Tracer, events_to_chrome


class FakeClock:
    """A monotonic clock advanced explicitly by the test."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_tracer():
    wall, cpu = FakeClock(100.0), FakeClock(50.0)
    rss = FakeClock(0.0)
    tracer = Tracer(clock=wall, cpu_clock=cpu, rss=lambda: int(rss.now))
    return tracer, wall, cpu, rss


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_records_wall_cpu_and_rss(self):
        tracer, wall, cpu, rss = make_tracer()
        with tracer.span("work", kind="unit"):
            wall.advance(2.0)
            cpu.advance(1.5)
            rss.advance(4096)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["dur_s"] == pytest.approx(2.0)
        assert event["cpu_s"] == pytest.approx(1.5)
        assert event["rss_peak_delta_bytes"] == 4096
        assert event["attrs"] == {"kind": "unit"}
        assert event["parent_id"] is None
        assert event["depth"] == 0

    def test_nesting_links_parent_ids_and_depths(self):
        tracer, wall, _, _ = make_tracer()
        with tracer.span("outer") as outer:
            wall.advance(1.0)
            with tracer.span("inner") as inner:
                wall.advance(3.0)
            wall.advance(1.0)
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["inner"]["parent_id"] == outer.id
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["dur_s"] == pytest.approx(3.0)
        assert by_name["outer"]["dur_s"] == pytest.approx(5.0)
        assert by_name["outer"]["depth"] == 0
        # children close (and are recorded) before their parent
        assert tracer.events[0]["name"] == "inner"
        assert inner.parent_id == outer.id

    def test_span_set_attaches_attributes(self):
        tracer, _, _, _ = make_tracer()
        with tracer.span("epoch") as s:
            s.set(loss=0.25)
        assert tracer.events[0]["attrs"]["loss"] == 0.25

    def test_exception_is_recorded_and_span_closed(self):
        tracer, wall, _, _ = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                wall.advance(1.0)
                raise ValueError("x")
        (event,) = tracer.events
        assert event["error"] == "ValueError"
        assert tracer.current_span is None

    def test_jsonl_round_trip(self, tmp_path):
        tracer, wall, _, _ = make_tracer()
        with tracer.span("a"):
            wall.advance(1.0)
        tracer.event("metrics", "registry", snapshot={"counters": {}})
        path = tmp_path / "events.jsonl"
        tracer.write_jsonl(path)
        events = obs.load_events(path)
        assert [e["type"] for e in events] == ["span", "metrics"]
        assert events[0]["dur_s"] == pytest.approx(1.0)

    def test_load_events_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            obs.load_events(path)


class TestChromeTrace:
    def test_schema_matches_trace_event_format(self):
        tracer, wall, _, _ = make_tracer()
        with tracer.span("outer"):
            wall.advance(0.5)
            with tracer.span("inner", epoch=1):
                wall.advance(0.25)
        trace = tracer.chrome_trace()
        # the whole object must survive a JSON round trip
        trace = json.loads(json.dumps(trace))
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert len(trace["traceEvents"]) == 2
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"  # complete events
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
        # sorted by start timestamp: outer opened first
        assert trace["traceEvents"][0]["name"] == "outer"
        assert trace["traceEvents"][1]["dur"] == pytest.approx(0.25e6)

    def test_non_span_events_are_skipped(self):
        chrome = events_to_chrome([{"type": "metrics", "name": "x", "ts": 0}])
        assert chrome["traceEvents"] == []


class TestModuleLevelSpan:
    def test_disabled_span_is_shared_noop(self):
        assert obs.get_tracer() is None
        a = obs.span("anything")
        b = obs.span("else")
        assert a is b  # the shared null span: no allocation per call
        with a as s:
            s.set(loss=1.0)  # must not raise

    def test_capture_installs_and_restores(self):
        assert not obs.tracing_enabled()
        before_registry = obs.get_registry()
        with obs.capture() as cap:
            assert obs.tracing_enabled()
            assert obs.get_tracer() is cap.tracer
            assert obs.get_registry() is cap.registry
            with obs.span("inside"):
                pass
        assert not obs.tracing_enabled()
        assert obs.get_registry() is before_registry
        assert [e["name"] for e in cap.events] == ["inside"]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("req", side="kg1")
        b = registry.counter("req", side="kg1")
        c = registry.counter("req", side="kg2")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert c.value == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x="1", y="2")
        b = registry.counter("m", y="2", x="1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("m")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("m").inc(-1)

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(1)
        registry.counter("a", side="kg2").inc(2)
        registry.counter("a", side="kg1").inc(3)
        registry.gauge("g").set(0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a{side=kg1}", "a{side=kg2}", "z"]
        assert snap["counters"]["a{side=kg1}"] == 3
        assert snap["gauges"]["g"] == 0.5
        json.dumps(snap)  # plain data only

    def test_merge_adds_counters_and_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").inc(2)
        right.counter("n").inc(5)
        right.counter("only_right").inc(1)
        left.gauge("g").set(1.0)
        right.gauge("g").set(7.0)
        left.histogram("h").observe(1.0)
        right.histogram("h").observe(3.0)
        left.merge(right)
        assert left.counter("n").value == 7
        assert left.counter("only_right").value == 1
        assert left.gauge("g").value == 7.0  # last write wins
        assert left.histogram("h").count == 2
        assert left.histogram("h").sum == pytest.approx(4.0)

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc(5)
        hist = registry.histogram("h")
        hist.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert hist.count == 0
        assert registry.counter("n") is counter

    def test_thread_safety_exact_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_exact_percentiles_below_cap(self):
        np = pytest.importorskip("numpy")
        hist = Histogram("h", reservoir_size=1000)
        values = list(np.random.default_rng(0).normal(size=500))
        for v in values:
            hist.observe(v)
        for q in (0, 25, 50, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_reservoir_caps_memory(self):
        hist = Histogram("h", reservoir_size=100)
        for i in range(10_000):
            hist.observe(float(i))
        assert hist.count == 10_000
        assert hist.n_samples == 100
        assert hist.sum == pytest.approx(sum(range(10_000)))
        # the reservoir stays a uniform sample: its median tracks the
        # stream's median well within a loose statistical bound
        assert 2_000 < hist.percentile(50) < 8_000

    def test_bucket_counts(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_10": 1, "le_inf": 1}
        assert snap["count"] == 4

    def test_empty_percentile_is_nan(self):
        import math
        assert math.isnan(Histogram("h").percentile(50))

    def test_merge_requires_same_buckets(self):
        a = Histogram("h", buckets=(1.0,))
        b = Histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a._merge_from(b)
