"""Fast end-to-end sweep tests (tier-1): a toy sweep through the real
scheduler, checking parallel == serial bit-identity, halving pruning,
workdir resume, ledger tagging and `cross_validate(jobs=N)`."""

import os

import pytest

from repro.fingerprint import config_fingerprint
from repro.obs import RunLedger, gate, sweep_where
from repro.orchestrate import parse_spec, payload_metrics, run_sweep

RAW_SPEC = {
    "sweep": {"name": "toy", "n_folds": 2, "seed": 0, "epochs": 4},
    "halving": {"min_epochs": 1, "eta": 2},
    "datasets": [{"family": "EN-FR", "size": 120, "method": "direct"}],
    "approaches": [
        {"name": "MTransE", "config": {"dim": 8, "valid_every": 2},
         "grid": {"lr": [0.01, 0.05, 0.2, 1.0]}},
        {"name": "JAPE", "config": {"dim": 8}},
    ],
}


def _spec():
    return parse_spec(RAW_SPEC)


@pytest.fixture(scope="module")
def serial_result():
    return run_sweep(_spec(), jobs=1, record=False)


def test_serial_sweep_shape(serial_result):
    # tuning: 4 candidates @rung0 + 2 @rung1; final: 2 approaches x 2 folds
    assert len(serial_result.job_payloads) == 10
    assert len(serial_result.stats.executed) == 10
    assert not serial_result.stats.failed
    assert set(serial_result.tables) == {("MTransE", "EN-FR-120-V1"),
                                         ("JAPE", "EN-FR-120-V1")}
    for cv in serial_result.tables.values():
        assert len(cv.folds) == 2
    table = serial_result.format()
    assert "MTransE" in table and "winner" in table


def test_halving_prunes_at_least_half_of_bad_grid(serial_result):
    # the deliberately-bad grid (lr from 0.01 to 1.0) loses >= 50% of
    # its candidates at rung 0, before anything trains the full budget
    pruned = serial_result.pruned[("MTransE", "EN-FR-120-V1")]
    assert len(pruned) >= 2
    winner = serial_result.winners[("MTransE", "EN-FR-120-V1")]
    assert winner and winner not in pruned
    # pruned candidates never trained at the full 4-epoch budget
    for payload in serial_result.job_payloads.values():
        if payload["candidate"] in pruned:
            assert payload["epochs"] < 4


def test_parallel_sweep_is_bit_identical_to_serial(serial_result):
    parallel = run_sweep(_spec(), jobs=4, record=False)
    assert parallel.job_payloads.keys() == serial_result.job_payloads.keys()
    for job_id, payload in serial_result.job_payloads.items():
        assert payload_metrics(payload) == \
            payload_metrics(parallel.job_payloads[job_id])
    assert parallel.winners == serial_result.winners
    assert not parallel.stats.failed


def test_sweep_resume_restores_everything(tmp_path, serial_result):
    workdir = tmp_path / "sweep"
    first = run_sweep(_spec(), jobs=2, record=False, workdir=workdir)
    assert len(first.stats.executed) == 10
    assert (workdir / "sweep_progress.json").is_file()
    resumed = run_sweep(_spec(), jobs=2, record=False, workdir=workdir)
    assert not resumed.stats.executed
    assert len(resumed.stats.restored) == 10
    for job_id, payload in serial_result.job_payloads.items():
        assert payload_metrics(payload) == \
            payload_metrics(resumed.job_payloads[job_id])


def test_sweep_records_tagged_with_sweep_id(tmp_path, monkeypatch):
    ledger_path = tmp_path / "ledger.jsonl"
    monkeypatch.setenv("REPRO_LEDGER_PATH", str(ledger_path))
    spec = _spec()
    result = run_sweep(spec, jobs=1)
    ledger = RunLedger(ledger_path)
    records, skipped = ledger.read()
    assert not skipped
    # one record per executed job + the summary record
    assert len(records) == len(result.stats.executed) + 1
    matching = [r for r in records if sweep_where(spec.sweep_id)(r)]
    assert len(matching) == len(records)
    assert [r for r in records if sweep_where("toy")(r)] == matching
    # the fingerprint excludes the sweep id: identical job configs stay
    # comparable across different sweeps of the same spec
    job_records = [r for r in records if not r["name"].endswith("summary")]
    for record in job_records:
        config = dict(record["config"])
        config.pop("sweep_id")
        assert record["fingerprint"] == config_fingerprint(config)
    # gating scoped to this sweep sees only its records
    report = gate(ledger, where=sweep_where(spec.sweep_id))
    assert report.status in ("ok", "no-baseline")


def test_cross_validate_parallel_matches_serial(enfr_pair):
    from repro.approaches import ApproachConfig, MTransE
    from repro.pipeline.runner import cross_validate

    def factory():
        return MTransE(ApproachConfig(dim=8, epochs=3, seed=7,
                                      batch_size=512))

    serial = cross_validate(factory, enfr_pair, n_folds=2, jobs=1)
    parallel = cross_validate(factory, enfr_pair, n_folds=2, jobs=2)
    assert len(parallel.folds) == 2
    for a, b in zip(serial.folds, parallel.folds):
        assert a.metrics.hits == b.metrics.hits
        assert a.metrics.mrr == b.metrics.mrr
        assert a.log.losses == b.log.losses


def test_cross_validate_parallel_writes_progress(tmp_path, enfr_pair):
    from repro.approaches import ApproachConfig, MTransE
    from repro.pipeline.runner import cross_validate

    def factory():
        return MTransE(ApproachConfig(dim=8, epochs=3, seed=7,
                                      batch_size=512))

    workdir = tmp_path / "cv"
    first = cross_validate(factory, enfr_pair, n_folds=2, jobs=2,
                           checkpoint_dir=workdir)
    assert (workdir / "cv_progress.json").is_file()
    resumed = cross_validate(factory, enfr_pair, n_folds=2, jobs=2,
                             checkpoint_dir=workdir)
    assert resumed.status == "resumed"
    for a, b in zip(first.folds, resumed.folds):
        assert a.metrics.hits == b.metrics.hits


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 cores; on smaller boxes "
                           "`make sweep-smoke` still reports the ratio")
def test_parallel_sweep_speeds_up(serial_result):
    import time

    started = time.perf_counter()
    run_sweep(_spec(), jobs=4, record=False)
    parallel_seconds = time.perf_counter() - started
    assert parallel_seconds < serial_result.seconds
