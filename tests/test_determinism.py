"""Cross-process reproducibility of the full stack.

Regression tests for a bug where ``derive_view`` seeded its RNG with the
builtin ``hash()``, which Python randomizes per process: datasets (and
therefore all experiment results) silently changed between runs.
"""

import os
import subprocess
import sys

import numpy as np

from repro.approaches import ApproachConfig, get_approach
from repro.datagen import benchmark_pair

_PROBE = """
from repro.datagen import benchmark_pair
pair = benchmark_pair("EN-FR", size=120, method="direct", seed=3)
print(hash(tuple(sorted(pair.alignment))))
print(hash(tuple(sorted(pair.kg1.relation_triples))))
print(hash(tuple(sorted(pair.kg2.attribute_triples))))
sampled = benchmark_pair("D-Y", size=100, method="ids", seed=3)
print(hash(tuple(sorted(sampled.alignment))))
"""


def _run_probe(hash_seed: str) -> str:
    # A minimal env would drop PYTHONPATH and break ``import repro`` when
    # the package is used from a source checkout, so build the import path
    # from the parent's live ``sys.path`` instead of trusting the variable.
    python_path = os.pathsep.join(p for p in sys.path if p)
    result = subprocess.run(
        [sys.executable, "-c", _PROBE.replace("hash(", "repr(")],
        capture_output=True, text=True,
        env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin",
             "PYTHONPATH": python_path},
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_dataset_identical_across_hash_seeds():
    """The same dataset must come out under any PYTHONHASHSEED."""
    first = _run_probe("1")
    second = _run_probe("424242")
    assert first == second
    assert first.strip()


def test_training_deterministic_within_process():
    pair = benchmark_pair("EN-FR", size=150, method="direct", seed=0)
    split = pair.split(seed=0)
    config = ApproachConfig(dim=16, epochs=5, valid_every=0)
    one = get_approach("MTransE", config)
    one.fit(pair, split)
    two = get_approach("MTransE", config)
    two.fit(pair, split)
    np.testing.assert_allclose(
        one.model.entity_embeddings(), two.model.entity_embeddings()
    )


def test_sampling_deterministic():
    from repro.datagen import source_pair
    from repro.sampling import ids_sample, prs_sample, ras_sample

    source = source_pair("D-Y", n_entities=400, seed=5)
    for sampler in (ids_sample, ras_sample, prs_sample):
        assert sampler(source, 150, seed=9).alignment == \
            sampler(source, 150, seed=9).alignment
