"""Tests for the serving layer: store, indexes, engine, metrics, CLI."""

import json

import numpy as np
import pytest

from repro.pipeline.checkpoint import EmbeddingSnapshot
from repro.serve import (
    EmbeddingStore,
    ExactIndex,
    IVFIndex,
    LSHIndex,
    QueryEngine,
    ServingMetrics,
    StoredEmbeddings,
    make_index,
    recall_vs_exact,
)


# ---------------------------------------------------------------------------
# fixtures: a clustered world shaped like trained alignment embeddings
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def clustered_world():
    rng = np.random.default_rng(7)
    n, dim = 600, 32
    centers = rng.normal(size=(12, dim))
    target = centers[rng.integers(0, 12, size=n)] \
        + 0.3 * rng.normal(size=(n, dim))
    source = target + 0.1 * rng.normal(size=(n, dim))
    return source, target


@pytest.fixture(scope="module")
def stored(clustered_world):
    source, target = clustered_world
    return StoredEmbeddings(
        version="v001",
        sources=[f"s{i}" for i in range(len(source))],
        targets=[f"t{i}" for i in range(len(target))],
        source_matrix=source,
        target_matrix=target,
    )


def _snapshot(source, target):
    return EmbeddingSnapshot(
        [f"s{i}" for i in range(len(source))], source,
        [f"t{i}" for i in range(len(target))], target,
    )


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------
def test_store_round_trip_identical_vectors(tmp_path, clustered_world):
    source, target = clustered_world
    store = EmbeddingStore(tmp_path / "store")
    version = store.save(_snapshot(source, target), metadata={"note": "x"})
    assert version == "v001"
    loaded = store.load(mmap=True)
    assert isinstance(loaded.source_matrix, np.memmap)
    np.testing.assert_array_equal(np.asarray(loaded.source_matrix), source)
    np.testing.assert_array_equal(np.asarray(loaded.target_matrix), target)
    assert loaded.sources[3] == "s3" and loaded.targets[5] == "t5"
    assert loaded.source_row("s3") == 3
    assert loaded.metadata == {"note": "x"}
    # non-mmap load gives a plain array
    assert not isinstance(store.load(mmap=False).source_matrix, np.memmap)


def test_store_versioning_and_manifest(tmp_path, clustered_world):
    source, target = clustered_world
    store = EmbeddingStore(tmp_path / "store")
    store.save(_snapshot(source, target))
    v2 = store.save(_snapshot(source * 2.0, target))
    assert store.versions() == ["v001", "v002"]
    assert store.latest() == "v002"
    # default load is the latest; explicit version works too
    np.testing.assert_array_equal(
        np.asarray(store.load().source_matrix), source * 2.0)
    np.testing.assert_array_equal(
        np.asarray(store.load("v001").source_matrix), source)
    assert store.load(v2).version == "v002"
    manifest = json.loads(
        (tmp_path / "store" / "manifest.json").read_text())
    assert [e["id"] for e in manifest["versions"]] == ["v001", "v002"]
    assert manifest["versions"][0]["checksums"]["source_matrix.npy"]


def test_store_errors(tmp_path, clustered_world):
    source, target = clustered_world
    store = EmbeddingStore(tmp_path / "store")
    with pytest.raises(FileNotFoundError):
        store.load()
    store.save(_snapshot(source, target))
    with pytest.raises(KeyError):
        store.load("v999")


def test_store_save_cv_result(tmp_path, enfr_pair, fast_config):
    from repro.approaches import get_approach
    from repro.pipeline import cross_validate

    result = cross_validate(
        lambda: get_approach("MTransE", fast_config), enfr_pair,
        n_folds=2,
    )
    store = EmbeddingStore(tmp_path / "store")
    version = store.save_cv_result(result, enfr_pair.alignment)
    loaded = store.load(version)
    assert loaded.name == "MTransE"
    assert len(loaded.sources) == len(enfr_pair.alignment)
    assert "hits@1" in loaded.metadata and "fold" in loaded.metadata


# ---------------------------------------------------------------------------
# indexes
# ---------------------------------------------------------------------------
def test_exact_index_matches_brute_force(clustered_world):
    source, target = clustered_world
    index = ExactIndex()
    index.build(target)
    ids, scores = index.search(source[:50], k=5)
    sn = source[:50] / np.linalg.norm(source[:50], axis=1, keepdims=True)
    tn = target / np.linalg.norm(target, axis=1, keepdims=True)
    sim = sn @ tn.T
    np.testing.assert_array_equal(ids[:, 0], sim.argmax(axis=1))
    assert (np.diff(scores, axis=1) <= 1e-12).all()  # sorted descending


@pytest.mark.parametrize("kind,params", [
    ("lsh", {"n_bits": 5, "n_tables": 6, "probes": 1}),
    ("ivf", {"n_probe": 4}),
])
def test_approximate_recall_at_10(clustered_world, kind, params):
    source, target = clustered_world
    index = make_index(kind, **params)
    index.build(target)
    recall = recall_vs_exact(index, source, target, k=10, sample=200, seed=0)
    assert recall >= 0.9, f"{kind} recall@10 {recall:.3f} < 0.9"


def test_lsh_empty_bucket_fallback_in_search():
    rng = np.random.default_rng(1)
    target = rng.normal(size=(20, 16))
    index = LSHIndex(n_bits=10, n_tables=1, probes=0)
    index.build(target)
    # orthogonal-ish queries: with 2^10 buckets and 20 vectors, most
    # queries hash into empty buckets — the fallback must still answer
    queries = rng.normal(size=(40, 16))
    ids, scores = index.search(queries, k=3)
    assert (ids >= 0).all()
    assert np.isfinite(scores).all()


def test_index_pads_when_k_exceeds_entities():
    rng = np.random.default_rng(2)
    target = rng.normal(size=(4, 8))
    for kind in ("exact", "lsh", "ivf"):
        index = make_index(kind)
        index.build(target)
        ids, scores = index.search(rng.normal(size=(3, 8)), k=6)
        assert ids.shape == (3, 6) and scores.shape == (3, 6)
        assert (ids[:, 4:] == -1).all()
        assert set(ids[0, :4].tolist()) == {0, 1, 2, 3}


def test_index_validation_errors():
    index = ExactIndex()
    with pytest.raises(RuntimeError):
        index.search(np.zeros((1, 4)))
    index.build(np.eye(4))
    with pytest.raises(ValueError):
        index.search(np.zeros((1, 4)), k=0)
    with pytest.raises(KeyError):
        make_index("hnsw")
    with pytest.raises(ValueError):
        IVFIndex(n_probe=0)
    with pytest.raises(ValueError):
        LSHIndex(probes=-1)


def test_ivf_handles_fewer_points_than_clusters():
    rng = np.random.default_rng(3)
    target = rng.normal(size=(5, 8))
    index = IVFIndex(n_clusters=32, n_probe=8)
    index.build(target)
    ids, _ = index.search(rng.normal(size=(2, 8)), k=5)
    assert set(ids[0].tolist()) == {0, 1, 2, 3, 4}


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
def test_engine_query_and_confidence(stored):
    engine = QueryEngine(stored, index="exact", k=5)
    result = engine.query("s0")
    assert result.query == "s0"
    assert len(result.neighbors) == 5
    assert result.best == result.neighbors[0][0]
    scores = [score for _, score in result.neighbors]
    assert scores == sorted(scores, reverse=True)
    assert result.confidence == pytest.approx(scores[0] - scores[1])


def test_engine_cache_accounting(stored):
    engine = QueryEngine(stored, index="exact", k=3, cache_size=10)
    engine.query("s1")
    assert engine.metrics.cache_misses == 1
    assert engine.metrics.cache_hits == 0
    repeat = engine.query("s1")
    assert engine.metrics.cache_hits == 1
    assert engine.metrics.cache_misses == 1
    assert repeat.best == engine.query("s1").best
    # a different k is a different cache entry
    engine.query("s1", k=2)
    assert engine.metrics.cache_misses == 2
    assert engine.metrics.cache_hit_rate == pytest.approx(2 / 4)


def test_engine_cache_eviction(stored):
    engine = QueryEngine(stored, index="exact", k=3, cache_size=2)
    engine.query_batch(["s0", "s1", "s2"])  # s0 evicted (LRU)
    assert engine.cache_len == 2
    engine.query("s0")
    assert engine.metrics.cache_hits == 0
    engine.query("s2")
    assert engine.metrics.cache_hits == 1


def test_engine_micro_batching_and_latency(stored):
    metrics = ServingMetrics()
    engine = QueryEngine(stored, index="exact", k=3, batch_size=16,
                         metrics=metrics)
    names = [f"s{i}" for i in range(40)]
    results = engine.query_batch(names)
    assert [r.query for r in results] == names
    assert metrics.batches == 3  # ceil(40 / 16)
    assert metrics.queries == 40
    summary = metrics.summary()
    assert summary["p99_ms"] >= summary["p50_ms"] > 0
    assert metrics.qps > 0


def test_engine_agrees_with_snapshot_similarity(stored):
    # exact serving must reproduce the offline similarity ranking
    engine = QueryEngine(stored, index="exact", k=1)
    similarity = stored.snapshot().similarity_between(
        stored.sources[:100], stored.targets)
    offline_best = similarity.argmax(axis=1)
    for result, j in zip(engine.query_batch(stored.sources[:100]),
                         offline_best):
        assert result.best == stored.targets[int(j)]


def test_engine_query_vectors(stored):
    engine = QueryEngine(stored, index="ivf", k=4)
    ids, scores = engine.query_vectors(
        np.asarray(stored.source_matrix[:8]))
    assert ids.shape == (8, 4)
    assert engine.metrics.queries == 8


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def test_latency_histogram_percentiles():
    metrics = ServingMetrics()
    for ms in range(1, 101):
        metrics.record_batch(1, ms / 1e3)
    summary = metrics.latency.summary()
    assert summary["p50_ms"] == pytest.approx(50.5)
    assert summary["p99_ms"] == pytest.approx(99.01)
    assert metrics.queries == 100


def test_recall_vs_exact_is_one_for_exact(clustered_world):
    source, target = clustered_world
    index = ExactIndex()
    index.build(target)
    assert recall_vs_exact(index, source, target, k=10, sample=50) == 1.0


# ---------------------------------------------------------------------------
# CLI smoke
# ---------------------------------------------------------------------------
def test_cli_serve_build_and_query(tmp_path, capsys):
    from repro.cli import main

    store_dir = tmp_path / "store"
    code = main([
        "serve-build", "--store", str(store_dir), "--family", "EN-FR",
        "--size", "120", "--method", "direct", "--dim", "16",
        "--epochs", "3", "--note", "smoke",
    ])
    assert code == 0
    assert "v001" in capsys.readouterr().out
    code = main([
        "serve-query", "--store", str(store_dir), "--index", "ivf",
        "--k", "3", "--sample", "4", "--recall-sample", "20",
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "confidence" in stdout
    assert "recall@3" in stdout
    assert "p95" in stdout


def test_cli_serve_query_errors(tmp_path, capsys):
    from repro.cli import main

    assert main(["serve-query", "--store", str(tmp_path / "nope")]) == 2
    capsys.readouterr()
