"""Tests for the analysis toolkit and the cross-validation pipeline."""

import numpy as np
import pytest

from repro.analysis import (
    DEGREE_BUCKETS,
    bucket_of,
    hubness_isolation,
    prediction_overlap,
    recall_by_degree,
    similarity_distribution,
)
from repro.approaches import ApproachConfig, get_approach
from repro.kg import KGPair, KnowledgeGraph
from repro.pipeline import CVResult, cross_validate, run_fold


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------
def test_similarity_distribution_ordering():
    sim = np.random.default_rng(0).normal(size=(20, 30))
    dist = similarity_distribution(sim, k=5)
    assert len(dist.top_k_means) == 5
    assert np.all(np.diff(dist.top_k_means) <= 1e-12)  # decreasing
    assert dist.top1_mean == pytest.approx(dist.top_k_means[0])
    assert dist.variance >= 0


def test_similarity_distribution_empty():
    dist = similarity_distribution(np.zeros((0, 5)), k=3)
    assert dist.top1_mean == 0.0


def test_similarity_distribution_k_clamped():
    sim = np.eye(4)
    dist = similarity_distribution(sim, k=10)
    assert len(dist.top_k_means) == 4


def test_hubness_isolation_identity():
    sim = np.eye(6)
    result = hubness_isolation(sim)
    assert result["1"] == pytest.approx(1.0)
    assert result["0"] == 0.0


def test_hubness_isolation_single_hub():
    sim = np.zeros((5, 5))
    sim[:, 2] = 1.0  # everyone's nearest neighbor is target 2
    result = hubness_isolation(sim)
    assert result[">=5"] == pytest.approx(1 / 5)
    assert result["0"] == pytest.approx(4 / 5)


def test_hubness_proportions_sum_to_one():
    sim = np.random.default_rng(1).normal(size=(40, 25))
    result = hubness_isolation(sim)
    assert sum(result.values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# degree recall
# ---------------------------------------------------------------------------
def test_bucket_of_boundaries():
    assert bucket_of(1) == 0
    assert bucket_of(5) == 0
    assert bucket_of(6) == 1
    assert bucket_of(15) == 2
    assert bucket_of(100) == 3
    assert bucket_of(0) == 0  # clamped below


def test_recall_by_degree():
    kg1 = KnowledgeGraph([("a", "r", "x")] * 1 + [("b", "r", f"t{i}") for i in range(9)])
    kg2 = KnowledgeGraph([("A", "s", "X"), ("B", "s", "Y")])
    pair = KGPair(kg1=kg1, kg2=kg2, alignment=[("a", "A"), ("b", "B")])
    test_pairs = [("a", "A"), ("b", "B")]
    predicted = [("a", "A"), ("b", "WRONG")]
    result = recall_by_degree(pair, test_pairs, predicted)
    # ("a","A") has degree 1+1=2 -> bucket [1,6): recall 1.0
    assert result[DEGREE_BUCKETS[0]] == (1.0, 1)
    # ("b","B") has degree 9+1=10 -> bucket [6,11): recall 0.0
    assert result[DEGREE_BUCKETS[1]] == (0.0, 1)


# ---------------------------------------------------------------------------
# overlap
# ---------------------------------------------------------------------------
def test_prediction_overlap_regions():
    gold = {("a", "x"), ("b", "y"), ("c", "z"), ("d", "w")}
    overlap = prediction_overlap(
        {
            "sys1": {("a", "x"), ("b", "y")},
            "sys2": {("b", "y"), ("c", "z")},
        },
        gold,
    )
    assert overlap[frozenset({"sys1"})] == pytest.approx(0.25)       # a
    assert overlap[frozenset({"sys1", "sys2"})] == pytest.approx(0.25)  # b
    assert overlap[frozenset({"sys2"})] == pytest.approx(0.25)       # c
    assert overlap[frozenset()] == pytest.approx(0.25)               # d
    assert sum(overlap.values()) == pytest.approx(1.0)


def test_prediction_overlap_empty_gold():
    assert prediction_overlap({"s": set()}, set()) == {}


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------
def test_run_fold_and_cross_validate(enfr_pair, fast_config):
    factory = lambda: get_approach("MTransE", fast_config)
    result = cross_validate(factory, enfr_pair, n_folds=2, hits_at=(1, 5))
    assert isinstance(result, CVResult)
    assert len(result.folds) == 2
    mean, std = result.mean_std("hits@1")
    assert 0.0 <= mean <= 1.0
    assert std >= 0.0
    assert result.train_seconds > 0
    assert "hits@1" in result.format()


def test_cross_validate_validates_folds(enfr_pair, fast_config):
    factory = lambda: get_approach("MTransE", fast_config)
    with pytest.raises(ValueError):
        cross_validate(factory, enfr_pair, n_folds=0)
    with pytest.raises(ValueError):
        cross_validate(factory, enfr_pair, n_folds=6)


def test_cv_result_unknown_metric(enfr_pair, fast_config):
    factory = lambda: get_approach("MTransE", fast_config)
    result = cross_validate(factory, enfr_pair, n_folds=1)
    with pytest.raises(KeyError):
        result.mean_std("accuracy")
    assert result.mean_std("mr")[0] > 0
    assert 0 <= result.mean_std("mrr")[0] <= 1


def test_run_fold_returns_trained_approach(enfr_pair, enfr_split, fast_config):
    fold = run_fold(lambda: get_approach("MTransE", fast_config),
                    enfr_pair, enfr_split)
    assert fold.seconds > 0
    assert fold.approach.log is fold.log


# ---------------------------------------------------------------------------
# norm bias
# ---------------------------------------------------------------------------
def test_degree_norm_correlation_detects_hub_drift():
    from repro.analysis import degree_norm_correlation

    rng = np.random.default_rng(0)
    degrees = rng.integers(1, 30, size=200)
    unbiased = rng.normal(size=(200, 8))
    unbiased /= np.linalg.norm(unbiased, axis=1, keepdims=True)
    assert abs(degree_norm_correlation(unbiased, degrees)) < 0.2
    biased = unbiased * (1.0 + 0.1 * degrees)[:, None]
    assert degree_norm_correlation(biased, degrees) > 0.9


def test_degree_norm_correlation_constant_inputs():
    from repro.analysis import degree_norm_correlation

    emb = np.ones((5, 4))
    assert degree_norm_correlation(emb, np.ones(5)) == 0.0
    assert degree_norm_correlation(emb[:1], np.array([3])) == 0.0


def test_norm_by_degree_buckets():
    from repro.analysis import DEGREE_BUCKETS, norm_by_degree

    degrees = np.array([1, 2, 7, 20])
    emb = np.diag([1.0, 2.0, 3.0, 4.0])
    result = norm_by_degree(emb, degrees)
    assert result[DEGREE_BUCKETS[0]] == (pytest.approx(1.5), 2)
    assert result[DEGREE_BUCKETS[1]][1] == 1
    assert result[DEGREE_BUCKETS[2]][1] == 0
    assert np.isnan(result[DEGREE_BUCKETS[2]][0])
