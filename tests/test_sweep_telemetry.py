"""Distributed tracing + live telemetry for parallel sweeps.

Covers the observability stack of docs/observability.md ("Distributed
tracing & live dashboards"): a ``jobs=2`` sweep must emit per-worker
heartbeat JSONL, stitch one Chrome trace under a single ``trace_id``
whose job spans cover ≥90% of every worker's parent-measured job wall
time, surface a kill -9'd worker as a dead row in the dashboard state,
agree with ``sweep_progress.json`` through ``obs-top --once --json``,
and — above all — leave the computed metrics bit-identical to a serial
run (telemetry observes; it never perturbs seeding or scheduling).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.obs import (MetricsRegistry, StallDetector, format_top,
                       label_snapshot, peak_rss_bytes,
                       peak_rss_children_bytes, peak_rss_tree_bytes,
                       read_state, set_registry, tail_jsonl)
from repro.obs.report import load_events_merged
from repro.orchestrate import (SweepTelemetry, parse_spec, payload_metrics,
                               run_sweep, stitch_events)

RAW_SPEC = {
    "sweep": {"name": "tele", "n_folds": 2, "seed": 0, "epochs": 8},
    "datasets": [{"family": "EN-FR", "size": 150, "method": "direct"}],
    "approaches": [
        {"name": "MTransE", "config": {"dim": 16, "valid_every": 0}},
    ],
}

# Enough jobs that every worker generation picks up a second one — the
# ``sweep.job:nth=2:mode=kill`` fault needs that to fire.
CRASHY_SPEC = {
    "sweep": {"name": "tele-crash", "n_folds": 2, "seed": 0, "epochs": 4},
    "halving": {"min_epochs": 1, "eta": 2},
    "datasets": [{"family": "EN-FR", "size": 120, "method": "direct"}],
    "approaches": [
        {"name": "MTransE", "config": {"dim": 8, "valid_every": 2},
         "grid": {"lr": [0.01, 0.05, 0.2, 1.0]}},
    ],
}


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    faults.install(None)


@pytest.fixture(scope="module")
def sweep2(tmp_path_factory):
    """One jobs=2 telemetered sweep shared by the read-only assertions."""
    workdir = tmp_path_factory.mktemp("sweep2")
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        result = run_sweep(parse_spec(RAW_SPEC), jobs=2, workdir=workdir,
                           record=False, heartbeat_interval=0.05)
    finally:
        set_registry(previous)
    assert not result.stats.failed
    return {"workdir": workdir, "telemetry": workdir / "telemetry",
            "result": result, "snapshot": registry.snapshot()}


def _parent_events(telemetry_dir: Path) -> list[dict]:
    lines = (telemetry_dir / "parent.jsonl").read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


# ---------------------------------------------------------------------------
# heartbeats
# ---------------------------------------------------------------------------
def test_each_worker_writes_heartbeat_jsonl(sweep2):
    tdir = sweep2["telemetry"]
    buses = sorted(p for p in tdir.glob("worker_*.jsonl")
                   if not p.name.endswith(".trace.jsonl"))
    assert len(buses) == 2
    for index, bus in enumerate(buses):
        beats = [json.loads(line) for line in bus.read_text().splitlines()]
        beats = [b for b in beats if b.get("type") == "heartbeat"]
        assert beats, f"{bus} carries no heartbeats"
        for beat in beats:
            assert beat["worker"] == index
            assert beat["pid"] > 0
            assert beat["ts_unix"] > 0
            assert beat["rss_bytes"] > 0
        # the heartbeat loop reported at least one real training stage
        assert any(b.get("stage") == "train" for b in beats)


def test_summary_has_worker_rss_coverage_and_zero_stalls(sweep2):
    summary = json.loads(
        (sweep2["telemetry"] / "summary.json").read_text())
    assert summary["workers_stalled"] == 0
    assert summary["error"] is None
    assert set(summary["workers"]) == {"0", "1"}
    for info in summary["workers"].values():
        assert info["peak_rss_bytes"] > 0
        assert info["heartbeats"] >= 1
        assert 0.0 < info["heartbeat_coverage"] <= 1.0
    # the parent reports max(self, reaped children)
    assert summary["parent_peak_rss_bytes"] >= max(
        info["peak_rss_bytes"] for info in summary["workers"].values())
    # and the same numbers flow into the sweep's ledger scalars
    scalars_keys = {"workers_stalled", "peak_rss_bytes",
                    "worker0_peak_rss_bytes", "worker1_peak_rss_bytes",
                    "heartbeat_coverage_min"}
    telemetry = SweepTelemetry(sweep2["workdir"], sweep_id="x")
    telemetry.summary = summary
    scalars = telemetry.scalars()
    assert scalars_keys <= set(scalars)
    assert scalars["workers_stalled"] == 0.0


# ---------------------------------------------------------------------------
# the stitched distributed trace
# ---------------------------------------------------------------------------
def test_one_chrome_trace_with_a_row_per_process(sweep2):
    trace = json.loads((sweep2["telemetry"] / "trace.json").read_text())
    events = trace["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    meta = {e["pid"]: e["args"]["name"] for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"}
    pids = {e["pid"] for e in spans}
    assert len(pids) == 3  # parent + 2 workers
    assert sorted(meta[p] for p in pids) == \
        ["sweep parent", "worker 0", "worker 1"]
    names = {e["name"] for e in spans}
    assert {"sweep.root", "sweep", "sweep.schedule", "job", "fit"} <= names


def test_worker_spans_share_trace_id_and_parent_under_root(sweep2):
    tdir = sweep2["telemetry"]
    meta = json.loads((tdir / "meta.json").read_text())
    worker_files = sorted(tdir.glob("worker_*.trace.jsonl"))
    assert len(worker_files) == 2
    for path in worker_files:
        for line in path.read_text().splitlines():
            event = json.loads(line)
            assert event["trace_id"] == meta["trace_id"]

    events, process_names, skipped = stitch_events(
        [], meta["parent_pid"], meta["started_unix"],
        meta["root_span_id"], meta["trace_id"], worker_files)
    assert skipped == 0
    spans = [e for e in events if e.get("type") == "span"]
    assert len({e["id"] for e in spans}) == len(spans), "id collision"
    roots = [e for e in spans if str(e["parent_id"]).startswith("p")]
    assert roots, "no worker span was re-parented under the sweep root"
    for root in roots:
        assert root["parent_id"] == f"p{meta['root_span_id']}"
        assert root["name"] == "job"


def test_job_spans_cover_90pct_of_parent_measured_wall(sweep2):
    """Per worker: Σ(job span dur) ≥ 0.9 × Σ(parent running→done wall)."""
    tdir = sweep2["telemetry"]
    running, wall = {}, {}
    for event in _parent_events(tdir):
        if event.get("type") != "job_state":
            continue
        if event["state"] == "running":
            running[event["job_id"]] = (event["worker"], event["ts_unix"])
        elif event["state"] == "done":
            worker, started = running[event["job_id"]]
            wall[worker] = wall.get(worker, 0.0) + \
                (event["ts_unix"] - started)
    spans = {}
    for path in tdir.glob("worker_*.trace.jsonl"):
        for line in path.read_text().splitlines():
            event = json.loads(line)
            if event.get("type") == "span" and event["name"] == "job":
                worker = event["worker"]
                spans[worker] = spans.get(worker, 0.0) + event["dur_s"]
    assert set(wall) == {0, 1}
    for worker, total in wall.items():
        assert total > 0
        ratio = spans.get(worker, 0.0) / total
        assert ratio >= 0.9, (
            f"worker {worker} job spans cover only {ratio:.1%} of its "
            f"parent-measured job wall time")


def test_merged_report_reader_handles_multiprocess_files(sweep2, tmp_path):
    tdir = sweep2["telemetry"]
    files = sorted(tdir.glob("worker_*.trace.jsonl"))
    events, skipped = load_events_merged(files)
    assert skipped == 0
    spans = [e for e in events if e.get("type") == "span"]
    # per-pid namespacing: no id collides across worker files
    assert len({e["id"] for e in spans}) == len(spans)
    # ordered by (trace_id, ts) within the single sweep trace
    stamps = [e.get("ts_unix", e.get("ts", 0.0)) for e in events]
    assert stamps == sorted(stamps)
    # a torn trailing line is skipped, not fatal
    torn = tmp_path / "torn.jsonl"
    torn.write_text('{"type": "span", "name": "x", "id": 1, '
                    '"parent_id": null, "ts": 0, "dur_s": 1}\n'
                    '{"type": "span", "broken...')
    merged, skipped = load_events_merged([files[0], torn])
    assert skipped == 1
    assert any(e.get("name") == "x" for e in merged)


# ---------------------------------------------------------------------------
# worker-labelled metrics
# ---------------------------------------------------------------------------
def test_merged_snapshot_carries_worker_labels(sweep2):
    counters = sweep2["snapshot"]["counters"]
    sweep_id = sweep2["result"].sweep_id
    # the unlabelled aggregate survives...
    assert counters[f"sweep.jobs_completed{{sweep={sweep_id}}}"] == 2
    # ...and per-worker series exist alongside it
    per_worker = [key for key in counters
                  if key.startswith("sweep.jobs_completed{")
                  and "worker=" in key]
    assert len(per_worker) == 2
    assert sum(counters[key] for key in per_worker) == 2
    heartbeat_keys = [key for key in counters
                      if key.startswith("sweep.heartbeats{")]
    assert heartbeat_keys and all("worker=" in key
                                  for key in heartbeat_keys)


def test_label_snapshot_adds_labels_without_clobbering():
    registry = MetricsRegistry()
    registry.counter("a", x="1").inc(3)
    registry.counter("b").inc()
    out = label_snapshot(registry.snapshot(), worker="7")
    assert out["counters"]["a{worker=7,x=1}"] == 3
    assert out["counters"]["b{worker=7}"] == 1


# ---------------------------------------------------------------------------
# stall detection
# ---------------------------------------------------------------------------
def test_stall_detector_fake_clock():
    now = [0.0]
    detector = StallDetector(timeout=5.0, clock=lambda: now[0])
    detector.beat("w0")
    detector.beat("w1")
    assert detector.check() == ([], [])
    now[0] = 4.0
    assert detector.check() == ([], [])
    now[0] = 6.0
    detector.beat("w1")  # w1 keeps beating, w0 goes silent
    assert detector.check() == (["w0"], [])
    assert detector.stalled == {"w0"}
    assert detector.check() == ([], [])  # stalls report once
    detector.beat("w0")
    assert detector.check() == ([], ["w0"])
    assert detector.stalled == set()
    now[0] = 20.0
    detector.forget("w0")  # exited workers never count as stalled
    newly, _ = detector.check()
    assert "w0" not in newly


def test_sweep_telemetry_flags_silent_worker(tmp_path):
    """Parent-side stall path with an injected clock: a worker whose
    heartbeats stop arriving trips the counter, the warning event and
    ``stalled_workers`` — and recovers when beats resume."""
    now = [0.0]
    registry = MetricsRegistry()
    telemetry = SweepTelemetry(tmp_path, sweep_id="unit", jobs=1,
                               registry=registry, heartbeat_interval=1.0,
                               stall_intervals=3, clock=lambda: now[0])
    with telemetry:
        telemetry.worker_spawned(0, 12345)
        bus = tmp_path / "telemetry" / "worker_0.jsonl"
        bus.write_text(json.dumps({"type": "heartbeat", "worker": 0,
                                   "pid": 12345, "ts_unix": 1.0,
                                   "rss_bytes": 1024}) + "\n")
        now[0] = 1.0
        telemetry.poll()
        assert telemetry.stalled_workers == set()
        now[0] = 10.0  # silent for > 3 intervals
        telemetry.poll()
        assert telemetry.stalled_workers == {0}
        with open(bus, "a") as handle:
            handle.write(json.dumps({"type": "heartbeat", "worker": 0,
                                     "pid": 12345, "ts_unix": 10.5,
                                     "rss_bytes": 2048}) + "\n")
        now[0] = 10.2
        telemetry.poll()
        assert telemetry.stalled_workers == set()
    counters = registry.snapshot()["counters"]
    assert counters["sweep.workers_stalled{sweep=unit}"] == 1
    events = [json.loads(line) for line in
              (tmp_path / "telemetry" / "parent.jsonl")
              .read_text().splitlines()]
    kinds = [(e.get("event")) for e in events if e.get("type") == "worker"]
    assert kinds == ["spawned", "stalled", "recovered"]
    assert telemetry.summary["workers_stalled"] == 1


def test_retired_worker_never_stalls_across_pools(tmp_path):
    """A worker that sent its clean goodbye beat (its pool's queue
    drained) is retired from stall watching: one sweep runs several
    scheduler pools, and a worker from an earlier rung must not read
    as stalled while later rungs run."""
    now = [0.0]
    registry = MetricsRegistry()
    telemetry = SweepTelemetry(tmp_path, sweep_id="unit", jobs=1,
                               registry=registry, heartbeat_interval=1.0,
                               stall_intervals=3, clock=lambda: now[0])
    with telemetry:
        telemetry.worker_spawned(0, 111)
        bus = tmp_path / "telemetry" / "worker_0.jsonl"
        bus.write_text(
            json.dumps({"type": "heartbeat", "worker": 0, "pid": 111,
                        "ts_unix": 1.0, "rss_bytes": 1024}) + "\n" +
            json.dumps({"type": "heartbeat", "worker": 0, "pid": 111,
                        "ts_unix": 1.5, "rss_bytes": 1024,
                        "final": True}) + "\n")
        now[0] = 1.0
        telemetry.poll()
        now[0] = 50.0  # far past the stall timeout: a later rung's pool
        telemetry.poll()
        assert telemetry.stalled_workers == set()
    assert telemetry.summary["workers_stalled"] == 0
    counters = registry.snapshot()["counters"]
    assert "sweep.workers_stalled{sweep=unit}" not in counters
    kinds = [e.get("event") for e in _parent_events(tmp_path / "telemetry")
             if e.get("type") == "worker"]
    assert kinds == ["spawned", "exited"]
    state = read_state(tmp_path)
    assert state["workers"][0]["status"] == "exited"
    assert not state["workers"][0]["alive"]


def test_killed_worker_death_is_visible_in_dashboard_state(tmp_path):
    """kill -9 mid-sweep: the sweep survives (requeue) and the dead
    worker shows up as a dead row with a terminal heartbeat gap."""
    faults.install("sweep.job:nth=2:mode=kill")
    result = run_sweep(parse_spec(CRASHY_SPEC), jobs=2, record=False,
                       workdir=tmp_path / "sweep",
                       heartbeat_interval=0.05)
    faults.install(None)
    assert not result.stats.failed
    assert result.stats.worker_deaths > 0
    state = read_state(tmp_path / "sweep")
    assert state["finished"]
    dead = [w for w in state["workers"].values() if w["status"] == "dead"]
    assert len(dead) == result.stats.worker_deaths
    # the death is a heartbeat gap, not a clean goodbye: the dead
    # worker's last beat predates the end of the sweep
    finished_unix = max(e["ts_unix"] for e in
                        _parent_events(tmp_path / "sweep" / "telemetry"))
    for worker in dead:
        assert worker["last_beat_unix"] is None or \
            worker["last_beat_unix"] < finished_unix
    assert state["requeues"] == len(result.stats.requeued)
    assert state["counts"]["failed"] == 0


# ---------------------------------------------------------------------------
# obs-top
# ---------------------------------------------------------------------------
def test_obs_top_json_counts_match_progress_file(sweep2):
    workdir = sweep2["workdir"]
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "obs-top", str(workdir),
         "--json"],
        capture_output=True, text=True, check=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent
                               / "src"), "PATH": "/usr/bin:/bin"},
    )
    state = json.loads(out.stdout)
    progress = json.loads((workdir / "sweep_progress.json").read_text())
    assert state["finished"]
    assert state["counts"]["done"] == len(progress["jobs"])
    assert state["counts"]["running"] == 0
    assert state["counts"]["pending"] == 0
    assert state["counts"]["failed"] == 0
    assert set(state["jobs"]) == set(progress["jobs"])
    # the human rendering works off the same state
    top = subprocess.run(
        [sys.executable, "-m", "repro.cli", "obs-top", str(workdir),
         "--once"],
        capture_output=True, text=True, check=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent
                               / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert "[finished]" in top.stdout
    assert f"{len(progress['jobs'])} done" in top.stdout


# ---------------------------------------------------------------------------
# bus-reader tolerance: torn tails and unknown event kinds
# ---------------------------------------------------------------------------
def test_read_state_tolerates_torn_lines_and_unknown_kinds(tmp_path):
    """Dashboard readers must survive (a) a torn trailing line a live
    writer is mid-appending, (b) a malformed complete line from a torn
    write, and (c) event kinds from a newer writer they don't know."""
    tdir = tmp_path / "telemetry"
    tdir.mkdir()
    (tdir / "meta.json").write_text(json.dumps(
        {"sweep_id": "t", "jobs": 1, "heartbeat_interval": 1.0,
         "started_unix": 0.0}))
    parent = tdir / "parent.jsonl"
    parent.write_text(
        json.dumps({"type": "job_state", "job_id": "j1",
                    "state": "running", "worker": 0, "ts_unix": 1.0}) + "\n"
        + json.dumps({"type": "quality_blob", "hits": [1, 2, 3]}) + "\n"
        + '{"type": "job_state", "broken...}\n'
        + json.dumps({"type": "job_state", "job_id": "j1", "state": "done",
                      "ts_unix": 2.0, "score": 0.4}) + "\n"
        + '{"type": "job_state", "state": "torn-mid-wri')
    bus = tdir / "worker_0.jsonl"
    bus.write_text(
        json.dumps({"type": "heartbeat", "worker": 0, "pid": 1,
                    "ts_unix": 1.5, "rss_bytes": 1024, "job_id": "j1",
                    "hits1": 0.25}) + "\n"
        + json.dumps({"type": "mystery", "payload": {"x": 1}}) + "\n"
        + '{"type": "heartbeat", "worker": 0, "ts_un')

    events, _, skipped = tail_jsonl(parent)
    assert skipped == 1  # the malformed complete line only
    assert [e["type"] for e in events] == \
        ["job_state", "quality_blob", "job_state"]

    state = read_state(tmp_path, now_unix=3.0)
    assert state["skipped_lines"] == 1
    job = state["jobs"]["j1"]
    assert job["state"] == "done"
    assert job["score"] == 0.4
    assert job["hits1"] == 0.25  # heartbeat attribution survived the noise
    assert state["workers"][0]["hits1"] == 0.25
    assert state["best_hits1"] == 0.4
    # the rendering works off that state too, unknown kinds and all
    top = format_top(state)
    assert "best H@1: 0.400" in top
    assert "torn/unreadable" in top


# ---------------------------------------------------------------------------
# quality in the dashboard: live Hits@1 and diverged jobs
# ---------------------------------------------------------------------------
QUALITY_SPEC = {
    "sweep": {"name": "tele-quality", "n_folds": 2, "seed": 0, "epochs": 4},
    "halving": {"min_epochs": 2, "eta": 2},
    "datasets": [{"family": "EN-FR", "size": 120, "method": "direct"}],
    "approaches": [
        {"name": "MTransE",
         "config": {"dim": 8, "valid_every": 2, "optimizer": "sgd",
                    "probe_every": 2, "probe_sample": 32,
                    "sentinel": True},
         "grid": {"lr": [0.05, 10000.0]}},
    ],
}


def test_sweep_surfaces_probe_hits_and_diverged_jobs(tmp_path):
    """The lr=1e4 candidate must be sentinel-aborted and flagged in the
    dashboard, while the sweep completes and reports its best Hits@1."""
    result = run_sweep(parse_spec(QUALITY_SPEC), jobs=2, record=False,
                       workdir=tmp_path / "sweep",
                       heartbeat_interval=0.05)
    assert not result.stats.failed
    diverged_payloads = [job_id for job_id, payload
                         in result.job_payloads.items()
                         if payload.get("status") == "diverged"]
    assert diverged_payloads, "the lr=1e4 candidate should diverge"
    state = read_state(tmp_path / "sweep")
    assert state["finished"]
    assert set(state["diverged_jobs"]) == set(diverged_payloads)
    assert isinstance(state["best_hits1"], float)
    assert state["best_hits1"] >= 0.0
    top = format_top(state)
    assert "best H@1" in top
    assert "hits@1" in top  # per-worker column header
    assert "diverged:" in top
    assert f"{len(diverged_payloads)} diverged" in top


# ---------------------------------------------------------------------------
# determinism: telemetry must only observe
# ---------------------------------------------------------------------------
def test_parallel_telemetered_sweep_bit_identical_to_serial(sweep2,
                                                            tmp_path):
    serial = run_sweep(parse_spec(RAW_SPEC), jobs=1,
                       workdir=tmp_path / "serial", record=False,
                       heartbeat_interval=0.05)
    parallel = sweep2["result"]
    assert serial.job_payloads.keys() == parallel.job_payloads.keys()
    for job_id, payload in serial.job_payloads.items():
        assert payload_metrics(payload) == \
            payload_metrics(parallel.job_payloads[job_id]), job_id


# ---------------------------------------------------------------------------
# RUSAGE_CHILDREN
# ---------------------------------------------------------------------------
def test_peak_rss_tree_sees_reaped_children():
    assert peak_rss_children_bytes() >= 0
    subprocess.run([sys.executable, "-c", "x = bytearray(1 << 20)"],
                   check=True)
    assert peak_rss_children_bytes() > 0
    assert peak_rss_tree_bytes() >= peak_rss_bytes()
    assert peak_rss_tree_bytes() >= peak_rss_children_bytes()
