"""Tests for the §7.2 future-direction extensions: unsupervised alignment
and LSH blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import HyperplaneLSH, blocked_greedy_alignment, greedy_alignment
from repro.approaches import ApproachConfig, UnsupervisedProcrustes, orthogonal_procrustes


# ---------------------------------------------------------------------------
# orthogonal Procrustes
# ---------------------------------------------------------------------------
def test_procrustes_recovers_rotation():
    rng = np.random.default_rng(0)
    source = rng.normal(size=(50, 8))
    # random orthogonal matrix
    q, _ = np.linalg.qr(rng.normal(size=(8, 8)))
    target = source @ q
    recovered = orthogonal_procrustes(source, target)
    np.testing.assert_allclose(recovered, q, atol=1e-8)


def test_procrustes_result_is_orthogonal():
    rng = np.random.default_rng(1)
    rotation = orthogonal_procrustes(rng.normal(size=(30, 6)), rng.normal(size=(30, 6)))
    np.testing.assert_allclose(rotation @ rotation.T, np.eye(6), atol=1e-8)


def test_procrustes_shape_mismatch():
    with pytest.raises(ValueError):
        orthogonal_procrustes(np.zeros((3, 4)), np.zeros((4, 4)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_procrustes_never_increases_error(seed):
    """||S R - T|| <= ||S - T|| for the optimal R."""
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(20, 5))
    target = rng.normal(size=(20, 5))
    rotation = orthogonal_procrustes(source, target)
    before = np.linalg.norm(source - target)
    after = np.linalg.norm(source @ rotation - target)
    assert after <= before + 1e-9


# ---------------------------------------------------------------------------
# unsupervised approach
# ---------------------------------------------------------------------------
def test_unsupervised_ignores_training_seeds(enfr_pair, enfr_split):
    config = ApproachConfig(dim=16, epochs=10, lr=0.05, valid_every=0)
    approach = UnsupervisedProcrustes(config, refinement_rounds=1)
    # hand it an EMPTY training set: a supervised approach would collapse
    empty_split = type(enfr_split)(train=[], valid=[], test=enfr_split.test)
    approach.fit(enfr_pair, empty_split)
    hits1 = approach.evaluate(enfr_split.test, hits_at=(1,)).hits_at(1)
    assert hits1 > 5.0 / len(enfr_split.test), "should beat random by far"
    assert approach.pseudo_seeds, "distant supervision must find pseudo-seeds"


def test_unsupervised_pseudo_seeds_are_one_to_one(enfr_pair, enfr_split):
    config = ApproachConfig(dim=16, epochs=2, valid_every=0)
    approach = UnsupervisedProcrustes(config, refinement_rounds=0)
    approach.fit(enfr_pair, enfr_split)
    lefts = [a for a, _ in approach.pseudo_seeds]
    rights = [b for _, b in approach.pseudo_seeds]
    assert len(lefts) == len(set(lefts))
    assert len(rights) == len(set(rights))


def test_unsupervised_rotation_is_orthogonal(enfr_pair, enfr_split):
    config = ApproachConfig(dim=16, epochs=5, valid_every=0)
    approach = UnsupervisedProcrustes(config, refinement_rounds=1)
    approach.fit(enfr_pair, enfr_split)
    rotation = approach.rotation
    np.testing.assert_allclose(rotation @ rotation.T, np.eye(16), atol=1e-8)


# ---------------------------------------------------------------------------
# LSH blocking
# ---------------------------------------------------------------------------
def test_lsh_self_query_contains_self():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(40, 16))
    lsh = HyperplaneLSH(16, n_bits=6, n_tables=3, seed=0)
    lsh.index(vectors)
    candidates = lsh.candidates(vectors)
    for row, cand in enumerate(candidates):
        assert row in cand  # identical vector hashes identically


def test_lsh_requires_index_before_query():
    lsh = HyperplaneLSH(8)
    with pytest.raises(RuntimeError):
        lsh.candidates(np.zeros((2, 8)))


def test_lsh_validates_params():
    with pytest.raises(ValueError):
        HyperplaneLSH(8, n_bits=0)
    with pytest.raises(ValueError):
        HyperplaneLSH(8, n_tables=0)


def test_blocked_alignment_prunes_and_mostly_agrees():
    rng = np.random.default_rng(3)
    target = rng.normal(size=(300, 24))
    noise = 0.05 * rng.normal(size=(300, 24))
    source = target + noise  # near-duplicates: gold is the identity
    assignment, fraction = blocked_greedy_alignment(
        source, target, n_bits=8, n_tables=6, seed=0
    )
    full = greedy_alignment(
        (source / np.linalg.norm(source, axis=1, keepdims=True))
        @ (target / np.linalg.norm(target, axis=1, keepdims=True)).T
    )
    agreement = (assignment == full).mean()
    assert fraction < 0.5, "blocking must prune most of the candidate space"
    assert agreement > 0.8, "blocking should keep most greedy decisions"


def test_blocked_alignment_reports_no_candidates_as_minus_one():
    rng = np.random.default_rng(4)
    # orthogonal clusters: some queries may land in empty buckets with one
    # aggressive table (legacy behaviour, kept reachable via fallback="none")
    source = rng.normal(size=(50, 8))
    target = rng.normal(size=(5, 8))
    assignment, _ = blocked_greedy_alignment(source, target, n_bits=10,
                                             n_tables=1, seed=1,
                                             fallback="none")
    assert ((assignment >= -1) & (assignment < 5)).all()


def test_lsh_empty_bucket_fallback_rescues_queries():
    # regression: queries hashing into empty buckets used to silently get
    # zero candidates; with 2^10 buckets and 5 indexed vectors almost every
    # query bucket is empty
    rng = np.random.default_rng(4)
    queries = rng.normal(size=(50, 8))
    target = rng.normal(size=(5, 8))
    lsh = HyperplaneLSH(8, n_bits=10, n_tables=1, seed=1)
    lsh.index(target)
    starved = [c.size for c in lsh.candidates(queries, fallback="none")]
    assert 0 in starved, "scenario must actually produce empty buckets"
    for fallback in ("nearest", "exact"):
        rescued = lsh.candidates(queries, fallback=fallback)
        assert all(c.size > 0 for c in rescued)
    # exact fallback hands starved queries the whole index
    exact = lsh.candidates(queries, fallback="exact")
    for count, candidates in zip(starved, exact):
        if count == 0:
            assert candidates.size == 5
    with pytest.raises(ValueError):
        lsh.candidates(queries, fallback="best-effort")


def test_blocked_alignment_fallback_leaves_no_query_unanswered():
    rng = np.random.default_rng(4)
    source = rng.normal(size=(50, 8))
    target = rng.normal(size=(5, 8))
    assignment, _ = blocked_greedy_alignment(source, target, n_bits=10,
                                             n_tables=1, seed=1)
    assert (assignment >= 0).all()  # default fallback answers every query


def test_lsh_multi_probe_expands_candidates():
    rng = np.random.default_rng(5)
    target = rng.normal(size=(200, 16))
    queries = rng.normal(size=(50, 16))
    lsh = HyperplaneLSH(16, n_bits=8, n_tables=2, seed=0)
    lsh.index(target)
    plain = sum(c.size for c in lsh.candidates(queries, fallback="none"))
    probed = sum(c.size
                 for c in lsh.candidates(queries, probes=2, fallback="none"))
    assert probed > plain  # flipped low-margin bits visit extra buckets
