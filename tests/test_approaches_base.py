"""Tests for the approach framework: PairData, fit/evaluate, registry."""

import numpy as np
import pytest

from repro.approaches import (
    APPROACHES,
    ApproachConfig,
    EmbeddingApproach,
    PairData,
    get_approach,
    required_information_table,
)
from repro.approaches.base import ApproachInfo
from repro.kg import AlignmentSplit, KGPair, KnowledgeGraph


def _tiny_pair():
    triples1 = [("a1", "r", "b1"), ("b1", "r", "c1"), ("c1", "s", "a1")]
    triples2 = [("a2", "t", "b2"), ("b2", "t", "c2"), ("c2", "u", "a2")]
    return KGPair(
        kg1=KnowledgeGraph(triples1, [("a1", "p", "v")], name="K1"),
        kg2=KnowledgeGraph(triples2, [("a2", "q", "v")], name="K2"),
        alignment=[("a1", "a2"), ("b1", "b2"), ("c1", "c2")],
    )


def _split():
    return AlignmentSplit(train=[("a1", "a2")], valid=[("b1", "b2")],
                          test=[("c1", "c2")])


# ---------------------------------------------------------------------------
# PairData
# ---------------------------------------------------------------------------
def test_pairdata_unmerged_entity_count():
    data = PairData(_tiny_pair(), _split(), merge_seeds=False)
    assert data.n_entities == 6
    assert data.triples.shape == (6, 3)


def test_pairdata_merged_shares_seed_ids():
    data = PairData(_tiny_pair(), _split(), merge_seeds=True)
    assert data.n_entities == 5  # a1/a2 folded
    assert data.entity_id("a1") == data.entity_id("a2")
    assert data.entity_id("b1") != data.entity_id("b2")


def test_pairdata_relations_namespaced():
    data = PairData(_tiny_pair(), _split())
    # r, s from KG1 and t, u from KG2 stay distinct even if names collide
    assert data.n_relations == 4


def test_pairdata_seed_id_pairs():
    data = PairData(_tiny_pair(), _split())
    ids = data.seed_id_pairs([("a1", "a2"), ("b1", "b2")])
    assert ids.shape == (2, 2)
    assert data.seed_id_pairs([]).shape == (0, 2)


def test_pairdata_triples_reference_valid_ids():
    data = PairData(_tiny_pair(), _split(), merge_seeds=True)
    assert data.triples[:, [0, 2]].max() < data.n_entities
    assert data.triples[:, 1].max() < data.n_relations


# ---------------------------------------------------------------------------
# registry & info
# ---------------------------------------------------------------------------
def test_registry_has_the_twelve_approaches():
    assert len(APPROACHES) == 12
    expected = {
        "MTransE", "IPTransE", "JAPE", "KDCoE", "BootEA", "GCNAlign",
        "AttrE", "IMUSE", "SEA", "RSN4EA", "MultiKE", "RDGCN",
    }
    assert set(APPROACHES) == expected


def test_get_approach_case_insensitive():
    approach = get_approach("bootea")
    assert approach.info.name == "BootEA"
    with pytest.raises(KeyError):
        get_approach("AlignNet9000")


def test_every_approach_has_table1_categorization():
    for name, cls in APPROACHES.items():
        info = cls.info
        assert isinstance(info, ApproachInfo)
        assert info.name == name
        assert info.relation_embedding in ("Triple", "Path", "Neighbor")
        assert info.metric in ("cosine", "euclidean", "manhattan")
        assert info.combination in (
            "Transformation", "Sharing", "Swapping", "Calibration"
        )
        assert info.learning in ("Supervised", "Semi-supervised")


def test_table9_covers_all_systems():
    from repro.approaches import REQUIRED_INFORMATION

    assert set(REQUIRED_INFORMATION) == set(APPROACHES) | {"LogMap", "PARIS"}
    text = required_information_table()
    assert "BootEA" in text
    assert "PARIS" in text


def test_semi_supervised_flags_match_paper():
    semi = {n for n, c in APPROACHES.items() if c.info.learning == "Semi-supervised"}
    assert semi == {"IPTransE", "BootEA", "KDCoE"}


# ---------------------------------------------------------------------------
# fit/evaluate contract
# ---------------------------------------------------------------------------
def test_fit_records_log(enfr_pair, enfr_split, fast_config):
    approach = get_approach("MTransE", fast_config)
    log = approach.fit(enfr_pair, enfr_split)
    assert log.epochs_run >= 1
    assert len(log.losses) == log.epochs_run
    assert log.train_seconds > 0
    assert log.valid_history  # validation ran


def test_early_stopping_restores_best(enfr_pair, enfr_split):
    config = ApproachConfig(dim=16, epochs=30, lr=0.3, valid_every=5,
                            patience=1, early_stop=True)
    approach = get_approach("MTransE", config)
    log = approach.fit(enfr_pair, enfr_split)
    # with an aggressive lr the run may stop early; never past max epochs
    assert log.epochs_run <= 30


def test_evaluate_and_predict_shapes(enfr_pair, enfr_split, fast_config):
    approach = get_approach("MTransE", fast_config)
    approach.fit(enfr_pair, enfr_split)
    metrics = approach.evaluate(enfr_split.test, hits_at=(1, 5))
    assert 0.0 <= metrics.hits_at(1) <= metrics.hits_at(5) <= 1.0
    predictions = approach.predict(enfr_split.test)
    assert len(predictions) == len(enfr_split.test)
    sources = {a for a, _ in enfr_split.test}
    assert all(a in sources for a, _ in predictions)


def test_predict_with_stable_marriage_is_one_to_one(enfr_pair, enfr_split, fast_config):
    approach = get_approach("MTransE", fast_config)
    approach.fit(enfr_pair, enfr_split)
    predictions = approach.predict(enfr_split.test, strategy="stable_marriage")
    targets = [b for _, b in predictions]
    assert len(targets) == len(set(targets))


def test_csls_option_changes_similarity(enfr_pair, enfr_split, fast_config):
    approach = get_approach("MTransE", fast_config)
    approach.fit(enfr_pair, enfr_split)
    plain = approach.similarity_between(
        [enfr_split.test[0][0]], [b for _, b in enfr_split.test[:10]]
    )
    scaled = approach.similarity_between(
        [enfr_split.test[0][0]], [b for _, b in enfr_split.test[:10]], csls_k=3
    )
    assert plain.shape == scaled.shape
    assert not np.allclose(plain, scaled)


def test_base_class_hooks_are_abstract():
    approach = EmbeddingApproach(ApproachConfig())
    with pytest.raises(NotImplementedError):
        approach._setup(None, None, None)
    with pytest.raises(NotImplementedError):
        approach._run_epoch(0, None)


def test_evaluate_all_candidates_is_harder(enfr_pair, enfr_split, fast_config):
    """Ranking against all of KG2 cannot beat ranking against test targets."""
    approach = get_approach("BootEA", fast_config)
    approach.fit(enfr_pair, enfr_split)
    compact = approach.evaluate(enfr_split.test, hits_at=(1,))
    full = approach.evaluate(enfr_split.test, hits_at=(1,), candidates="all")
    assert full.hits_at(1) <= compact.hits_at(1) + 1e-9
    assert full.mr >= compact.mr - 1e-9
    with pytest.raises(ValueError):
        approach.evaluate(enfr_split.test, candidates="everything")
