"""Tests for the text substrate: pseudo-translation, similarity, embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    LANGUAGES,
    CharEmbeddingTable,
    WordEmbeddingTable,
    jaccard_tokens,
    levenshtein,
    normalized_levenshtein,
    pseudo_translate,
    string_similarity,
    translate_back,
    trigram_similarity,
)

WORDS = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


# ---------------------------------------------------------------------------
# pseudo-translation
# ---------------------------------------------------------------------------
def test_english_identity():
    assert pseudo_translate("hello world", "en") == "hello world"


def test_translation_changes_text():
    assert pseudo_translate("hello world", "fr") != "hello world"
    assert pseudo_translate("hello world", "de") != "hello world"


def test_languages_differ():
    assert pseudo_translate("mountain", "fr") != pseudo_translate("mountain", "de")


def test_translation_deterministic():
    assert pseudo_translate("alpha beta", "fr") == pseudo_translate("alpha beta", "fr")


@settings(max_examples=50, deadline=None)
@given(text=st.lists(WORDS, min_size=1, max_size=4).map(" ".join))
def test_translate_roundtrip_property(text):
    for lang in ("fr", "de"):
        assert translate_back(pseudo_translate(text, lang), lang) == text


def test_translate_back_with_errors_corrupts_some_tokens():
    text = " ".join(f"word{i}" for i in range(200))
    translated = pseudo_translate(text, "fr")
    recovered = translate_back(translated, "fr", error_rate=0.3, seed=1)
    original_tokens = text.split()
    recovered_tokens = recovered.split()
    wrong = sum(1 for a, b in zip(original_tokens, recovered_tokens) if a != b)
    assert 30 <= wrong <= 90  # ~30% corruption


def test_translate_back_error_deterministic():
    translated = pseudo_translate("some tokens here", "de")
    one = translate_back(translated, "de", error_rate=0.5, seed=9)
    two = translate_back(translated, "de", error_rate=0.5, seed=9)
    assert one == two


def test_language_substitution_bijective():
    for lang in LANGUAGES.values():
        if not lang.substitution:
            continue
        assert len(set(lang.substitution.values())) == len(lang.substitution)
        # vowels stay vowels, consonants stay consonants
        for src, dst in lang.substitution.items():
            assert (src in "aeiou") == (dst in "aeiou")


# ---------------------------------------------------------------------------
# string similarity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "a,b,expected",
    [("", "", 0), ("abc", "abc", 0), ("abc", "abd", 1), ("abc", "", 3),
     ("kitten", "sitting", 3), ("flaw", "lawn", 2)],
)
def test_levenshtein_known_values(a, b, expected):
    assert levenshtein(a, b) == expected


@settings(max_examples=50, deadline=None)
@given(a=WORDS, b=WORDS)
def test_levenshtein_symmetry_property(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@settings(max_examples=50, deadline=None)
@given(a=WORDS, b=WORDS, c=WORDS)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


def test_normalized_levenshtein_bounds():
    assert normalized_levenshtein("", "") == 1.0
    assert normalized_levenshtein("abc", "abc") == 1.0
    assert normalized_levenshtein("abc", "xyz") == 0.0


def test_jaccard_tokens():
    assert jaccard_tokens("a b c", "b c d") == pytest.approx(0.5)
    assert jaccard_tokens("", "") == 1.0
    assert jaccard_tokens("a", "b") == 0.0


def test_trigram_similarity_identical_and_disjoint():
    assert trigram_similarity("hello", "hello") == 1.0
    assert trigram_similarity("aaa", "zzz") == 0.0


@settings(max_examples=50, deadline=None)
@given(a=WORDS, b=WORDS)
def test_string_similarity_bounds_property(a, b):
    value = string_similarity(a, b)
    assert 0.0 <= value <= 1.0
    assert string_similarity(a, a) == 1.0


# ---------------------------------------------------------------------------
# embeddings
# ---------------------------------------------------------------------------
def test_word_vectors_unit_norm_and_deterministic():
    table = WordEmbeddingTable(dim=24)
    v1, v2 = table.vector("mountain"), table.vector("mountain")
    np.testing.assert_allclose(v1, v2)
    assert np.linalg.norm(v1) == pytest.approx(1.0)


def test_cross_lingual_anchoring():
    """A word and its pseudo-translation are close; unrelated words are not."""
    en = WordEmbeddingTable(dim=32, language="en")
    fr = WordEmbeddingTable(dim=32, language="fr", noise=0.1)
    word = "everest"
    translated = pseudo_translate(word, "fr")
    sim_aligned = float(en.vector(word) @ fr.vector(translated))
    sim_random = float(en.vector(word) @ fr.vector(pseudo_translate("banana", "fr")))
    assert sim_aligned > 0.9
    assert abs(sim_random) < 0.6


def test_noise_zero_gives_exact_anchoring():
    en = WordEmbeddingTable(dim=16, language="en")
    fr = WordEmbeddingTable(dim=16, language="fr", noise=0.0)
    word = "paris"
    np.testing.assert_allclose(
        en.vector(word), fr.vector(pseudo_translate(word, "fr")), atol=1e-12
    )


def test_embed_text_mean_and_empty():
    table = WordEmbeddingTable(dim=8)
    empty = table.embed_text("")
    np.testing.assert_allclose(empty, np.zeros(8))
    mean = table.embed_text("a b")
    np.testing.assert_allclose(mean, (table.vector("a") + table.vector("b")) / 2)


def test_unknown_language_rejected():
    with pytest.raises(KeyError):
        WordEmbeddingTable(language="klingon")


def test_char_embedding_order_sensitive():
    table = CharEmbeddingTable(dim=16)
    a = table.embed_literal("abc")
    b = table.embed_literal("cba")
    assert not np.allclose(a, b)


def test_char_embedding_similar_strings_close():
    table = CharEmbeddingTable(dim=24)
    a = table.embed_literal("mount everest")
    b = table.embed_literal("mount everest!")
    c = table.embed_literal("zzzzyyxx")
    assert float(a @ b) > float(a @ c)


def test_char_embedding_empty_literal():
    table = CharEmbeddingTable(dim=8)
    np.testing.assert_allclose(table.embed_literal(""), np.zeros(8))
