"""Shared fixtures: small benchmark datasets reused across test modules."""

import pytest

from repro.approaches import ApproachConfig
from repro.datagen import benchmark_pair


@pytest.fixture(scope="session")
def enfr_pair():
    """A small EN-FR dataset (direct derivation, no sampling) for speed."""
    return benchmark_pair("EN-FR", size=220, method="direct", seed=0)


@pytest.fixture(scope="session")
def enfr_split(enfr_pair):
    return enfr_pair.split(train_ratio=0.2, valid_ratio=0.1, seed=0)


@pytest.fixture(scope="session")
def dy_pair():
    return benchmark_pair("D-Y", size=220, method="direct", seed=0)


@pytest.fixture
def fast_config():
    """Few epochs: tests check behaviour, not final quality."""
    return ApproachConfig(dim=16, epochs=10, lr=0.05, batch_size=512,
                          valid_every=5, n_negatives=3)
