"""Smoke-runs the training-throughput bench inside the tier-1 budget.

Runs ``benchmarks/bench_train_throughput.py`` in ``--smoke`` mode (tiny
scale, SGD) and checks the report structure plus the dense/sparse loss
parity it guarantees — a fast regression canary for the sparse gradient
path without asserting wall-clock speedups (which belong to ``make
train-bench``).
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_train_throughput
        yield bench_train_throughput
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_smoke_report_structure_and_loss_parity(bench_module, tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_train_throughput.json"
    original = bench_module.REPORT_PATH
    bench_module.REPORT_PATH = out
    try:
        report = bench_module.run(smoke=True, steps=5)
    finally:
        bench_module.REPORT_PATH = original

    assert report["mode"] == "smoke"
    assert report["optimizer"] == "sgd"
    assert len(report["scales"]) == 1
    scale = report["scales"][0]
    for side in ("dense", "sparse"):
        assert scale[side]["median_step_ms"] > 0
        assert scale[side]["steps_per_sec"] > 0
    # SGD smoke: sparse and dense are exactly equivalent, so the final
    # losses must agree (the bench's built-in correctness check)
    assert scale["dense"]["final_loss"] == pytest.approx(
        scale["sparse"]["final_loss"], abs=1e-9
    )

    written = json.loads(out.read_text(encoding="utf-8"))
    assert written["scales"][0]["speedup"] == pytest.approx(scale["speedup"])


def test_smoke_cli_exits_zero(bench_module, monkeypatch, tmp_path):
    monkeypatch.setattr(bench_module, "REPORT_PATH", tmp_path / "report.json")
    assert bench_module.main(["--smoke", "--steps", "3"]) == 0
    assert (tmp_path / "report.json").exists()
