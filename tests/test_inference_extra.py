"""Tests for cos/sin ops, heuristic matching and TuckER additions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    INFERENCE_STRATEGIES,
    greedy_alignment,
    heuristic_matching,
    infer_alignment,
    stable_marriage,
)
from repro.autodiff import Tensor, check_gradients
from repro.embedding import RELATION_MODELS, TuckER


# ---------------------------------------------------------------------------
# cos/sin tensor ops
# ---------------------------------------------------------------------------
def test_cos_sin_values():
    x = Tensor(np.array([0.0, np.pi / 2, np.pi]), requires_grad=True)
    np.testing.assert_allclose(x.cos().data, [1.0, 0.0, -1.0], atol=1e-12)
    np.testing.assert_allclose(x.sin().data, [0.0, 1.0, 0.0], atol=1e-12)


def test_cos_sin_gradients():
    rng = np.random.default_rng(0)
    check_gradients(lambda t: t.cos(), [rng.normal(size=(3, 4))])
    check_gradients(lambda t: t.sin(), [rng.normal(size=(3, 4))])


def test_pythagorean_identity_gradient_free():
    x = Tensor(np.random.default_rng(1).normal(size=7), requires_grad=True)
    out = x.cos().square() + x.sin().square()
    np.testing.assert_allclose(out.data, np.ones(7), atol=1e-12)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.zeros(7), atol=1e-10)


# ---------------------------------------------------------------------------
# heuristic matching
# ---------------------------------------------------------------------------
def test_heuristic_matching_registered():
    assert "heuristic" in INFERENCE_STRATEGIES
    sim = np.eye(4)
    assert infer_alignment(sim, "heuristic").tolist() == [0, 1, 2, 3]


def test_heuristic_matching_one_to_one():
    sim = np.random.default_rng(0).normal(size=(15, 15))
    match = heuristic_matching(sim)
    matched = match[match >= 0]
    assert len(set(matched.tolist())) == len(matched)
    assert len(matched) == 15


def test_heuristic_resolves_conflicts_by_similarity():
    sim = np.array([
        [0.9, 0.1],
        [0.8, 0.7],
    ])
    # both rows prefer column 0; row 0 wins (higher), row 1 takes column 1
    assert heuristic_matching(sim).tolist() == [0, 1]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 1000))
def test_heuristic_between_greedy_and_stable_total(n, seed):
    """Heuristic matching achieves at least stable marriage's quality on
    its committed mutual pairs (weak sanity: all matched, no dupes)."""
    sim = np.random.default_rng(seed).normal(size=(n, n))
    heuristic = heuristic_matching(sim)
    sm = stable_marriage(sim)
    assert sorted(heuristic.tolist()) == sorted(sm.tolist()) == list(range(n))
    # mutual nearest neighbors are always kept by the heuristic
    row_best = greedy_alignment(sim)
    col_best = sim.argmax(axis=0)
    for i in range(n):
        j = row_best[i]
        if col_best[j] == i:
            assert heuristic[i] == j


def test_heuristic_rectangular_more_sources():
    sim = np.random.default_rng(3).normal(size=(7, 4))
    match = heuristic_matching(sim)
    matched = match[match >= 0]
    assert len(matched) == 4
    assert len(set(matched.tolist())) == 4


# ---------------------------------------------------------------------------
# TuckER
# ---------------------------------------------------------------------------
def test_tucker_registered_and_trains():
    assert "tucker" in RELATION_MODELS
    rng = np.random.default_rng(0)
    model = TuckER(12, 3, 8, rng)
    from repro.autodiff import Adam
    from repro.embedding import margin_ranking_loss, uniform_corrupt

    positives = np.array([(i, i % 3, (i + 1) % 12) for i in range(12)])
    optimizer = Adam(model.parameters(), lr=0.05)
    for _ in range(40):
        negatives = uniform_corrupt(positives, 12, 1, rng)
        optimizer.zero_grad()
        pos = model.score(positives[:, 0], positives[:, 1], positives[:, 2])
        neg = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        margin_ranking_loss(pos, neg, margin=1.0).backward()
        optimizer.step()
    negatives = uniform_corrupt(positives, 12, 5, rng)
    pos = model.score(positives[:, 0], positives[:, 1], positives[:, 2]).data.mean()
    neg = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2]).data.mean()
    assert pos > neg


def test_tucker_core_identity_reduces_to_distmult_like():
    rng = np.random.default_rng(1)
    model = TuckER(6, 2, 4, rng)
    model.core.data[...] = np.stack([np.eye(4)] * 4)
    # with identity slices, M_r = sum_k r_k I = (sum r) I
    h = model.entities.all_embeddings()[0]
    r = model.relations.all_embeddings()[1]
    t = model.entities.all_embeddings()[3]
    expected = float(r.sum() * (h @ t))
    score = float(model.score([0], [1], [3]).data[0])
    assert score == pytest.approx(expected, rel=1e-9)
