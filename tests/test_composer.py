"""Tests for the declarative approach composer (Figure 4 composability)."""

import numpy as np
import pytest

from repro.approaches import (
    ATTRIBUTE_CHANNELS,
    COMBINATIONS,
    ApproachConfig,
    compose_approach,
)


@pytest.fixture
def tiny_config():
    return ApproachConfig(dim=16, epochs=8, lr=0.05, valid_every=4,
                          n_negatives=3)


def test_compose_validates_component_names():
    with pytest.raises(ValueError):
        compose_approach(relation_model="fancynet")
    with pytest.raises(ValueError):
        compose_approach(combination="telepathy")
    with pytest.raises(ValueError):
        compose_approach(loss="perceptual")
    with pytest.raises(ValueError):
        compose_approach(negative_sampling="adversarial")
    with pytest.raises(ValueError):
        compose_approach(attribute_channel="emoji")


def test_compose_default_name_encodes_choices():
    cls = compose_approach(relation_model="rotate", combination="calibration",
                           attribute_channel="char", self_training=True)
    assert cls.info.name == "rotate+calibration+attr:char+selftrain"
    assert cls.info.learning == "Semi-supervised"
    assert cls.info.combination == "Calibration"


def test_compose_custom_name():
    cls = compose_approach(name="MySystem")
    assert cls.info.name == "MySystem"


@pytest.mark.parametrize("combination", COMBINATIONS)
def test_composed_combination_flags(combination):
    cls = compose_approach(combination=combination)
    assert cls.merge_seeds == (combination == "sharing")
    assert cls.swapping == (combination == "swapping")
    assert (cls.calibration_weight > 0) == (combination == "calibration")


@pytest.mark.parametrize("channel", [c for c in ATTRIBUTE_CHANNELS if c])
def test_composed_channels_build(channel, enfr_pair, enfr_split, tiny_config):
    cls = compose_approach(attribute_channel=channel)
    approach = cls(tiny_config)
    approach.fit(enfr_pair, enfr_split)
    assert approach.channels, f"channel {channel} did not build"
    metrics = approach.evaluate(enfr_split.test, hits_at=(1,))
    assert np.isfinite(metrics.mr)


def test_composed_truncated_sampler_used(enfr_pair, enfr_split, tiny_config):
    cls = compose_approach(negative_sampling="truncated")
    approach = cls(tiny_config)
    approach.fit(enfr_pair, enfr_split)
    assert approach.sampler is not None
    assert approach.sampler.ready  # refreshed during training


def test_composed_self_training_records(enfr_pair, enfr_split, tiny_config):
    cls = compose_approach(self_training=True, self_training_every=4)
    approach = cls(tiny_config)
    approach.fit(enfr_pair, enfr_split)
    assert approach.log.augmentation


def test_composed_model_swap(enfr_pair, enfr_split, tiny_config):
    cls = compose_approach(relation_model="distmult", loss="logistic")
    approach = cls(tiny_config)
    approach.fit(enfr_pair, enfr_split)
    assert type(approach.model).__name__ == "DistMult"


def test_composed_beats_random(enfr_pair, enfr_split, tiny_config):
    cls = compose_approach(relation_model="transe", combination="sharing",
                           attribute_channel="word")
    approach = cls(tiny_config)
    approach.fit(enfr_pair, enfr_split)
    hits1 = approach.evaluate(enfr_split.test, hits_at=(1,)).hits_at(1)
    assert hits1 > 3.0 / len(enfr_split.test)