"""Unit tests for the core Tensor ops and backprop machinery."""

import numpy as np
import pytest

from repro.autodiff import Tensor, concat, maximum, minimum, stack, where


RNG = np.random.default_rng(0)


def test_tensor_construction_defaults():
    t = Tensor([1.0, 2.0, 3.0])
    assert t.shape == (3,)
    assert not t.requires_grad
    assert t.grad is None


def test_tensor_from_tensor_shares_data():
    a = Tensor([1.0, 2.0])
    b = Tensor(a)
    assert b.data is a.data


def test_backward_requires_grad_flag():
    t = Tensor([1.0], requires_grad=False)
    with pytest.raises(RuntimeError):
        t.backward()


def test_backward_requires_scalar_without_explicit_grad():
    t = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(RuntimeError):
        t.backward()


def test_add_backward_accumulates_to_both_operands():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 1.0])
    np.testing.assert_allclose(b.grad, [1.0, 1.0])


def test_broadcast_add_sums_gradient():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones(4), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(b.grad, [3.0] * 4)


def test_broadcast_mul_keepdims_axis():
    a = Tensor(np.ones((2, 3)), requires_grad=True)
    b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
    np.testing.assert_allclose(b.grad, np.full((2, 1), 3.0))


def test_scalar_arithmetic_both_sides():
    a = Tensor([2.0], requires_grad=True)
    out = (3.0 * a + 1.0 - a / 2.0) - (1.0 - a)
    out.sum().backward()
    np.testing.assert_allclose(out.data, [7.0])
    np.testing.assert_allclose(a.grad, [3.5])


def test_reuse_of_node_accumulates_gradient():
    a = Tensor([3.0], requires_grad=True)
    out = a * a + a
    out.sum().backward()
    np.testing.assert_allclose(a.grad, [7.0])


def test_diamond_graph_backprop():
    # a -> b, c -> d uses both paths; gradient must flow through both.
    a = Tensor([2.0], requires_grad=True)
    b = a * 3.0
    c = a * 4.0
    d = b * c  # d = 12 a^2, dd/da = 24 a = 48
    d.sum().backward()
    np.testing.assert_allclose(a.grad, [48.0])


def test_matmul_shapes_and_grads():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
    out = a @ b
    assert out.shape == (3, 5)
    out.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
    np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))


def test_matmul_vector_cases():
    m = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    v = Tensor(RNG.normal(size=4), requires_grad=True)
    out = m @ v
    assert out.shape == (3,)
    out.sum().backward()
    np.testing.assert_allclose(v.grad, m.data.sum(axis=0))


def test_sum_axis_keepdims():
    a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
    out = a.sum(axis=1, keepdims=True)
    assert out.shape == (2, 1)
    out.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((2, 3)))


def test_mean_scales_gradient():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    a.mean().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 1.0 / 6.0))


def test_mean_axis():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    a.mean(axis=0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 0.5))


def test_max_reduction_ties_split_gradient():
    a = Tensor([1.0, 5.0, 5.0], requires_grad=True)
    a.max().backward()
    np.testing.assert_allclose(a.grad, [0.0, 0.5, 0.5])


def test_getitem_scatter_backward():
    a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
    out = a[np.array([0, 0, 2])]
    out.sum().backward()
    expected = np.zeros((4, 3))
    expected[0] = 2.0
    expected[2] = 1.0
    np.testing.assert_allclose(a.grad, expected)


def test_gather_matches_getitem():
    a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
    idx = np.array([1, 3, 1])
    out = a.gather(idx)
    np.testing.assert_allclose(out.data, a.data[idx])
    out.sum().backward()
    expected = np.zeros((4, 3))
    expected[1] = 2.0
    expected[3] = 1.0
    np.testing.assert_allclose(a.grad, expected)


def test_reshape_transpose_roundtrip():
    a = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
    out = a.reshape(3, 4).transpose()
    assert out.shape == (4, 3)
    out.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((2, 6)))


def test_concat_backward_splits_gradient():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    b = Tensor(np.ones((2, 3)), requires_grad=True)
    out = concat([a, b], axis=1)
    assert out.shape == (2, 5)
    (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
    np.testing.assert_allclose(a.grad, [[0.0, 1.0], [5.0, 6.0]])
    np.testing.assert_allclose(b.grad, [[2.0, 3.0, 4.0], [7.0, 8.0, 9.0]])


def test_stack_backward():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    out = stack([a, b], axis=0)
    assert out.shape == (2, 2)
    (out * Tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 2.0])
    np.testing.assert_allclose(b.grad, [3.0, 4.0])


def test_where_routes_gradient():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    out = where(np.array([True, False]), a, b)
    out.sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0])


def test_maximum_minimum():
    a = Tensor([1.0, 5.0], requires_grad=True)
    b = Tensor([3.0, 2.0], requires_grad=True)
    np.testing.assert_allclose(maximum(a, b).data, [3.0, 5.0])
    np.testing.assert_allclose(minimum(a, b).data, [1.0, 2.0])


def test_detach_stops_gradient():
    a = Tensor([2.0], requires_grad=True)
    out = a.detach() * 3.0
    assert not out.requires_grad


def test_softmax_rows_sum_to_one():
    a = Tensor(RNG.normal(size=(4, 7)), requires_grad=True)
    s = a.softmax(axis=1)
    np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), atol=1e-12)


def test_l2_normalize_unit_norm():
    a = Tensor(RNG.normal(size=(5, 8)), requires_grad=True)
    n = a.l2_normalize(axis=1)
    np.testing.assert_allclose(np.linalg.norm(n.data, axis=1), np.ones(5), atol=1e-9)


def test_dropout_zero_rate_is_identity():
    a = Tensor(np.ones((3, 3)), requires_grad=True)
    out = a.dropout(0.0, np.random.default_rng(0))
    assert out is a


def test_dropout_scales_kept_units():
    rng = np.random.default_rng(0)
    a = Tensor(np.ones((100, 100)), requires_grad=True)
    out = a.dropout(0.5, rng)
    kept = out.data[out.data != 0]
    np.testing.assert_allclose(kept, np.full_like(kept, 2.0))


def test_clip_gradient_mask():
    a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
    a.clip(-1.0, 1.0).sum().backward()
    np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


def test_pow_requires_scalar_exponent():
    a = Tensor([1.0], requires_grad=True)
    with pytest.raises(TypeError):
        a ** Tensor([2.0])
