"""Unit tests for repro.orchestrate: job identity, seeds, halving,
progress files, the scheduler's crash handling and the shared config
fingerprint."""

import json
import os

import numpy as np
import pytest

from repro import faults
from repro.fingerprint import config_fingerprint, fingerprint
from repro.obs.ledger import record_sweep_id, sweep_where
from repro.orchestrate import (
    HalvingSchedule,
    JobSpec,
    SweepProgress,
    derive_seed,
    expand_grid,
    load_spec,
    parse_spec,
    run_jobs,
    rung_budgets,
    select_survivors,
)

DATASET = {"family": "EN-FR", "size": 120, "method": "direct"}


# ---------------------------------------------------------------------------
# job identity and seeds
# ---------------------------------------------------------------------------
def test_job_id_is_deterministic_and_sensitive():
    a = JobSpec(approach="MTransE", dataset=DATASET, fold=1, epochs=4)
    b = JobSpec(approach="MTransE", dataset=DATASET, fold=1, epochs=4)
    assert a.job_id == b.job_id
    assert len(a.job_id) == 16
    assert a.job_id != JobSpec(approach="MTransE", dataset=DATASET,
                               fold=2, epochs=4).job_id
    assert a.job_id != JobSpec(approach="JAPE", dataset=DATASET,
                               fold=1, epochs=4).job_id


def test_lineage_ignores_budget_but_job_id_does_not():
    base = JobSpec(approach="MTransE", dataset=DATASET, fold=1,
                   candidate="lr=0.1", config={"lr": 0.1},
                   epochs=2, stage="tune", rung=0)
    promoted = base.at_budget(4, rung=1)
    final = base.at_budget(8, stage="final", rung=-1)
    assert base.lineage_id == promoted.lineage_id == final.lineage_id
    assert len({base.job_id, promoted.job_id, final.job_id}) == 3


def test_seed_is_pure_function_of_identity():
    a = JobSpec(approach="MTransE", dataset=DATASET, fold=1, epochs=2)
    assert a.seed() == a.at_budget(16).seed()  # budget never moves the seed
    others = [
        JobSpec(approach="MTransE", dataset=DATASET, fold=2, epochs=2),
        JobSpec(approach="JAPE", dataset=DATASET, fold=1, epochs=2),
        JobSpec(approach="MTransE", dataset=DATASET, fold=1, epochs=2,
                base_seed=7),
    ]
    seeds = {a.seed()} | {o.seed() for o in others}
    assert len(seeds) == 4  # distinct streams per fold/approach/base seed


def test_derive_seed_matches_seedsequence():
    lineage = fingerprint({"x": 1})
    expected = np.random.SeedSequence(
        entropy=3, spawn_key=(int(lineage, 16),)).generate_state(1)[0]
    assert derive_seed(3, lineage) == int(expected)


def test_job_config_validation():
    with pytest.raises(ValueError, match="unknown ApproachConfig"):
        JobSpec(approach="MTransE", dataset=DATASET,
                config={"learning_rate": 0.1})
    with pytest.raises(ValueError, match="seed"):
        JobSpec(approach="MTransE", dataset=DATASET, config={"seed": 3})
    with pytest.raises(ValueError, match="epochs"):
        JobSpec(approach="MTransE", dataset=DATASET, config={"epochs": 3})


# ---------------------------------------------------------------------------
# successive halving
# ---------------------------------------------------------------------------
def test_rung_budgets_geometric_below_max():
    assert rung_budgets(1, 16) == [1, 2, 4, 8]
    assert rung_budgets(3, 30, eta=3) == [3, 9, 27]
    assert rung_budgets(5, 4) == [2]  # degenerate: single short rung
    with pytest.raises(ValueError):
        rung_budgets(0, 8)
    with pytest.raises(ValueError):
        rung_budgets(1, 8, eta=1)


def test_select_survivors_breaks_ties_lexicographically():
    scores = {"b": 0.5, "a": 0.5, "c": 0.9, "d": 0.1}
    assert select_survivors(scores, 2) == ["c", "a"]
    assert select_survivors(scores, 1) == ["c"]
    with pytest.raises(ValueError):
        select_survivors(scores, 0)


def test_halving_prunes_at_least_half_before_full_budget():
    plan = HalvingSchedule(n_candidates=8, max_epochs=16)
    assert plan.budgets() == [1, 2, 4, 8]
    alive = plan.n_candidates
    after_first = plan.keep_after(0, alive)
    # the acceptance criterion: >= 50% of the grid dies at the first
    # rung, long before anything trains at max_epochs
    assert after_first <= alive // 2
    for rung in range(len(plan.budgets())):
        alive = plan.keep_after(rung, alive)
    assert alive == 1
    assert "winner" in plan.describe()


def test_expand_grid_is_sorted_and_stable():
    grid = {"lr": [0.1, 0.01], "dim": [8]}
    candidates = expand_grid(grid)
    assert [cand for cand, _ in candidates] == ["dim=8,lr=0.1",
                                                "dim=8,lr=0.01"]
    assert candidates[0][1] == {"dim": 8, "lr": 0.1}
    assert expand_grid({}) == [("", {})]


# ---------------------------------------------------------------------------
# sweep specs
# ---------------------------------------------------------------------------
def _raw_spec():
    return {
        "sweep": {"name": "unit", "n_folds": 2, "epochs": 4},
        "datasets": [dict(DATASET)],
        "approaches": [{"name": "MTransE", "config": {"dim": 8},
                        "grid": {"lr": [0.01, 0.1]}}],
    }


def test_parse_spec_and_sweep_id_stability():
    spec = parse_spec(_raw_spec())
    again = parse_spec(_raw_spec())
    assert spec.sweep_id == again.sweep_id
    assert spec.sweep_id.startswith("unit@")
    changed = _raw_spec()
    changed["approaches"][0]["grid"]["lr"].append(0.5)
    assert parse_spec(changed).sweep_id != spec.sweep_id


def test_parse_spec_rejects_bad_input():
    with pytest.raises(ValueError, match="datasets"):
        parse_spec({"approaches": [{"name": "MTransE"}]})
    with pytest.raises(ValueError, match="approaches"):
        parse_spec({"datasets": [dict(DATASET)]})
    bad = _raw_spec()
    bad["approaches"][0]["grid"] = {"epochs": [1, 2]}
    with pytest.raises(ValueError, match="halving budget"):
        parse_spec(bad)
    bad = _raw_spec()
    bad["sweep"]["n_folds"] = 9
    with pytest.raises(ValueError, match="n_folds"):
        parse_spec(bad)


def test_load_spec_toml_and_json_agree(tmp_path):
    raw = _raw_spec()
    toml_path = tmp_path / "s.toml"
    toml_path.write_text(
        '[sweep]\nname = "unit"\nn_folds = 2\nepochs = 4\n'
        '[[datasets]]\nfamily = "EN-FR"\nsize = 120\nmethod = "direct"\n'
        '[[approaches]]\nname = "MTransE"\n'
        'config = { dim = 8 }\ngrid = { lr = [0.01, 0.1] }\n',
        encoding="utf-8",
    )
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(raw), encoding="utf-8")
    assert load_spec(toml_path).sweep_id == load_spec(json_path).sweep_id
    with pytest.raises(ValueError, match="unsupported"):
        load_spec(tmp_path / "s.yaml")


# ---------------------------------------------------------------------------
# progress file
# ---------------------------------------------------------------------------
def test_sweep_progress_roundtrip_and_mismatch(tmp_path):
    progress = SweepProgress(tmp_path, {"name": "a"})
    assert progress.load() == {}
    progress.record("job1", {"score": 0.5})
    progress.record("job2", {"score": 0.7})
    reopened = SweepProgress(tmp_path, {"name": "a"})
    assert reopened.load() == {"job1": {"score": 0.5},
                               "job2": {"score": 0.7}}
    with pytest.raises(ValueError, match="fresh --workdir"):
        SweepProgress(tmp_path, {"name": "b"}).load()


def test_sweep_progress_rejects_corrupt_file(tmp_path):
    progress = SweepProgress(tmp_path, {"name": "a"})
    progress.record("job1", {"score": 0.5})
    progress.path.write_text("{not json", encoding="utf-8")
    with pytest.raises(RuntimeError, match="unreadable"):
        SweepProgress(tmp_path, {"name": "a"}).load()


def test_sweep_progress_env_does_not_change_fingerprint(monkeypatch):
    before = SweepProgress("unused", {"name": "a"}).fingerprint
    monkeypatch.setenv("REPRO_BENCH_TRACE", "1")
    assert SweepProgress("unused", {"name": "a"}).fingerprint == before


# ---------------------------------------------------------------------------
# shared fingerprint (satellite 1)
# ---------------------------------------------------------------------------
def test_config_fingerprint_env_flavours(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_TRACE", raising=False)
    clean = config_fingerprint({"a": 1})
    assert clean == config_fingerprint({"a": 1}, include_env=True)
    assert len(clean) == 16
    monkeypatch.setenv("REPRO_BENCH_TRACE", "1")
    assert config_fingerprint({"a": 1}) != clean  # ledger flavour moves
    # resume flavour must not: telemetry toggles never invalidate resume
    assert config_fingerprint({"a": 1}, include_env=False) == \
        config_fingerprint({"a": 1}, include_env=False)


def test_ledger_reexports_shared_fingerprint():
    from repro.obs import ledger

    assert ledger.config_fingerprint is config_fingerprint


def test_sweep_where_matches_id_and_name():
    record = {"config": {"sweep_id": "tables@1a2b3c4d"}}
    assert record_sweep_id(record) == "tables@1a2b3c4d"
    assert record_sweep_id({"config": {}}) is None
    assert sweep_where("tables@1a2b3c4d")(record)
    assert sweep_where("tables")(record)
    assert not sweep_where("tables@ffffffff")(record)
    assert not sweep_where("smoke")(record)
    assert not sweep_where("tables")({"config": {}})


# ---------------------------------------------------------------------------
# scheduler crash handling (fake runners, no training)
# ---------------------------------------------------------------------------
class _Task:
    def __init__(self, n):
        self.n = n

    @property
    def job_id(self):
        return f"task_{self.n}"


def _ok_runner(task):
    return {"n": task.n}


def _poison_runner(task):
    if task.n == 1:
        os._exit(137)
    return {"n": task.n}


def _flaky_runner(task):
    faults.fault_point("sweep.job.test")
    return {"n": task.n}


def test_run_jobs_serial_and_restore():
    specs = [_Task(n) for n in range(4)]
    results, stats = run_jobs(specs, jobs=1, runner=_ok_runner,
                              already={"task_2": {"n": "restored"}})
    assert results["task_2"] == {"n": "restored"}
    assert sorted(stats.restored) == ["task_2"]
    assert len(stats.executed) == 3 and not stats.failed


def test_run_jobs_parallel_matches_serial():
    specs = [_Task(n) for n in range(6)]
    serial, _ = run_jobs(specs, jobs=1, runner=_ok_runner)
    parallel, stats = run_jobs(specs, jobs=3, runner=_ok_runner)
    assert serial == parallel
    assert len(stats.executed) == 6
    assert not stats.failed and not stats.requeued


def test_run_jobs_fails_poison_job_but_completes_rest():
    specs = [_Task(n) for n in range(3)]
    results, stats = run_jobs(specs, jobs=2, runner=_poison_runner,
                              max_attempts=2)
    assert results["task_0"] == {"n": 0}
    assert results["task_2"] == {"n": 2}
    assert "task_1" in stats.failed
    assert "died" in stats.failed["task_1"]
    assert stats.worker_deaths >= 2  # one per charged attempt


def test_run_jobs_reports_worker_exceptions():
    def boom(task):
        raise KeyError(f"bad {task.n}")

    results, stats = run_jobs([_Task(0)], jobs=1, runner=boom)
    assert results == {}
    assert "KeyError" in stats.failed["task_0"]


def test_run_jobs_counts_metrics(tmp_path):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    run_jobs([_Task(n) for n in range(3)], jobs=1, runner=_ok_runner,
             label="unit-sweep", registry=registry)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["sweep.jobs_completed{sweep=unit-sweep}"] == 3
