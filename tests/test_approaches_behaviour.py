"""Behavioural tests for the 12 approaches (integration-level).

Each approach trains on a small dataset; assertions target the paper's
qualitative claims rather than absolute numbers.
"""

import numpy as np
import pytest

from repro.approaches import (
    APPROACHES,
    AttrE,
    ApproachConfig,
    BootEA,
    IMUSE,
    IPTransE,
    KDCoE,
    MTransE,
    MultiKE,
    RDGCN,
    get_approach,
)

pytestmark = pytest.mark.slow  # full training loops; deselect via -m 'not slow'


@pytest.fixture(scope="module")
def trained(enfr_pair_module, enfr_split_module):
    """Train every approach once on the shared module-scope dataset."""
    # dim >= 24 matters: SEA's double transformation underfits below that
    config = ApproachConfig(dim=24, epochs=30, lr=0.05, batch_size=512,
                            valid_every=10, n_negatives=3)
    out = {}
    for name in APPROACHES:
        approach = get_approach(name, config)
        approach.fit(enfr_pair_module, enfr_split_module)
        out[name] = approach
    return out


@pytest.fixture(scope="module")
def enfr_pair_module():
    from repro.datagen import benchmark_pair

    return benchmark_pair("EN-FR", size=220, method="direct", seed=0)


@pytest.fixture(scope="module")
def enfr_split_module(enfr_pair_module):
    return enfr_pair_module.split(train_ratio=0.2, valid_ratio=0.1, seed=0)


def test_all_approaches_better_than_random(trained, enfr_split_module):
    n = len(enfr_split_module.test)
    random_hits1 = 1.0 / n
    for name, approach in trained.items():
        hits1 = approach.evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
        assert hits1 > 5 * random_hits1, f"{name} is not better than random"


def test_literal_approaches_beat_structure_only_baseline(trained, enfr_split_module):
    """MultiKE/RDGCN (literal-driven) dominate MTransE (paper Table 5)."""
    baseline = trained["MTransE"].evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
    for name in ("MultiKE", "RDGCN"):
        strong = trained[name].evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
        assert strong > baseline


def test_bootea_beats_mtranse(trained, enfr_split_module):
    """Negative sampling + bootstrapping (paper §5.2 ablations)."""
    bootea = trained["BootEA"].evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
    mtranse = trained["MTransE"].evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
    assert bootea > mtranse


def test_semi_supervised_approaches_record_augmentation(trained):
    for name in ("BootEA", "IPTransE", "KDCoE"):
        records = trained[name].log.augmentation
        assert records, f"{name} recorded no augmentation rounds"
        for record in records:
            assert 0.0 <= record.precision <= 1.0
            assert 0.0 <= record.recall <= 1.0


def test_bootea_editing_keeps_precision_above_iptranse(trained):
    """BootEA edits errors away; IPTransE accumulates them (Figure 7).

    Compared on the *final* augmentation round, where IPTransE's
    uncorrected errors have piled up.
    """
    bootea_final = trained["BootEA"].log.augmentation[-1].precision
    iptranse_final = trained["IPTransE"].log.augmentation[-1].precision
    assert bootea_final >= iptranse_final


# ---------------------------------------------------------------------------
# ablation switches
# ---------------------------------------------------------------------------
def test_attribute_ablation_hurts_multike(enfr_pair_module, enfr_split_module):
    config = ApproachConfig(dim=16, epochs=15, lr=0.05, valid_every=5)
    with_attr = MultiKE(config)
    with_attr.fit(enfr_pair_module, enfr_split_module)
    config_no = ApproachConfig(dim=16, epochs=15, lr=0.05, valid_every=5,
                               use_attributes=False)
    without = MultiKE(config_no)
    without.fit(enfr_pair_module, enfr_split_module)
    hits_with = with_attr.evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
    hits_without = without.evaluate(enfr_split_module.test, hits_at=(1,)).hits_at(1)
    assert hits_with > hits_without
    assert without.channels == []


def test_relation_only_mode_empties_triples(enfr_pair_module, enfr_split_module):
    config = ApproachConfig(dim=16, epochs=3, valid_every=0,
                            use_relations=False)
    approach = AttrE(config)
    approach.fit(enfr_pair_module, enfr_split_module)
    assert len(approach.data.triples) == 0


def test_mtranse_negative_sampling_variant(enfr_pair_module, enfr_split_module):
    config = ApproachConfig(dim=16, epochs=15, lr=0.05, valid_every=5)
    plain = MTransE(config)
    plain.fit(enfr_pair_module, enfr_split_module)
    sampled = MTransE(config, negative_sampling=True)
    sampled.fit(enfr_pair_module, enfr_split_module)
    assert sampled.negative_sampling and not plain.negative_sampling
    # the §5.2 quality claim (sampling lifts Hits@1) is checked at bench
    # scale in benchmarks/bench_ablation_design_choices.py; here we only
    # require both variants to train and produce finite metrics
    for approach in (plain, sampled):
        metrics = approach.evaluate(enfr_split_module.test, hits_at=(1,))
        assert np.isfinite(metrics.mr)


def test_mtranse_model_swap(enfr_pair_module, enfr_split_module):
    """Figure 11's protocol: swap the relation model inside MTransE."""
    config = ApproachConfig(dim=16, epochs=8, lr=0.05, valid_every=0)
    for model_name in ("transh", "rotate"):
        approach = MTransE(config, model_name=model_name)
        approach.fit(enfr_pair_module, enfr_split_module)
        assert type(approach.model).__name__.lower() == model_name
        metrics = approach.evaluate(enfr_split_module.test, hits_at=(1,))
        assert np.isfinite(metrics.mr)


def test_bootea_bootstrap_ablation(enfr_pair_module, enfr_split_module):
    config = ApproachConfig(dim=16, epochs=20, lr=0.05, valid_every=10)
    with_boot = BootEA(config, bootstrap=True)
    with_boot.fit(enfr_pair_module, enfr_split_module)
    without = BootEA(config, bootstrap=False)
    without.fit(enfr_pair_module, enfr_split_module)
    assert with_boot.log.augmentation
    assert not without.log.augmentation


def test_imuse_collects_preprocessing_pairs(enfr_pair_module, enfr_split_module, fast_config):
    approach = IMUSE(fast_config)
    approach.fit(enfr_pair_module, enfr_split_module)
    assert isinstance(approach.collected_pairs, list)
    # on EN-FR numeric literals still produce some matches
    assert len(approach.collected_pairs) > 0


def test_kdcoe_description_coverage_limits_proposals(enfr_pair_module, enfr_split_module, fast_config):
    approach = KDCoE(fast_config)
    approach.fit(enfr_pair_module, enfr_split_module)
    described = set(approach.desc1)
    proposals = approach._propose_from_descriptions()
    assert all(a in described for a, _ in proposals)


def test_rdgcn_literal_features_not_zero(enfr_pair_module, enfr_split_module, fast_config):
    approach = RDGCN(fast_config)
    approach.fit(enfr_pair_module, enfr_split_module)
    features = approach.encoders[0][0].features.data
    nonzero = (np.linalg.norm(features, axis=1) > 1e-9).mean()
    assert nonzero > 0.8


def test_iptranse_mines_paths(enfr_pair_module, enfr_split_module, fast_config):
    approach = IPTransE(fast_config)
    approach.fit(enfr_pair_module, enfr_split_module)
    assert approach._paths.shape[1] == 3 if len(approach._paths) else True


def test_rsn_walks_alternate_entities_relations(enfr_pair_module, enfr_split_module, fast_config):
    from repro.approaches import RSN4EA

    approach = RSN4EA(fast_config, walk_length=3)
    approach.fit(enfr_pair_module, enfr_split_module)
    walks = approach.walks
    assert walks.shape[1] == 5  # e r e r e
    assert (walks[:, 0] < approach.rel_offset).all()       # entity slots
    assert (walks[:, 1] >= approach.rel_offset).all()      # relation slots
    assert (walks[:, 2] < approach.rel_offset).all()
