"""Tests for the synthetic world generator and KG view derivation."""

import numpy as np
import pytest

from repro.datagen import (
    FAMILIES,
    ViewConfig,
    WorldConfig,
    benchmark_pair,
    derive_view,
    generate_world,
    make_vocabulary,
    source_pair,
)
from repro.kg import degree_distribution


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_entities=400, avg_degree=6.0, seed=1))


# ---------------------------------------------------------------------------
# world
# ---------------------------------------------------------------------------
def test_vocabulary_unique_and_sized():
    words = make_vocabulary(100, np.random.default_rng(0))
    assert len(words) == 100
    assert len(set(words)) == 100
    assert all(w.isalpha() for w in words)


def test_world_deterministic():
    config = WorldConfig(n_entities=100, seed=5)
    one, two = generate_world(config), generate_world(config)
    assert one.relation_triples == two.relation_triples
    assert one.attribute_triples == two.attribute_triples


def test_world_average_degree_near_target(world):
    degrees = world.degrees()
    avg = degrees.sum() / world.n_entities
    assert 4.5 <= avg <= 6.5


def test_world_degree_distribution_heavy_tailed(world):
    degrees = world.degrees()
    # preferential attachment: max degree far above the mean
    assert degrees.max() >= 4 * degrees.mean()


def test_world_every_entity_named(world):
    assert set(world.entity_names) == set(range(world.n_entities))
    names = {t for e, a, t in world.attribute_triples if a == "name"}
    assert len(names) > 0


def test_world_descriptions_contain_name_tokens(world):
    descriptions = {e: v for e, a, v in world.attribute_triples if a == "description"}
    entity = 0
    name_tokens = world.entity_names[entity].split()
    assert all(tok in descriptions[entity].split() for tok in name_tokens)


def test_world_attribute_groups_cover_plain_attributes(world):
    plain = [a for a in world.attributes if a not in ("name", "description")]
    assert set(world.attribute_group_of) == set(plain)


def test_world_no_self_loops(world):
    assert all(h != t for h, _, t in world.relation_triples)


def test_world_relations_zipfian(world):
    from collections import Counter

    counts = Counter(r for _, r, _ in world.relation_triples)
    values = sorted(counts.values(), reverse=True)
    assert values[0] > 3 * values[-1]  # popular head much heavier than tail


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------
def test_view_opaque_entity_uris(world):
    kg, uri_of = derive_view(world, ViewConfig(name="EN", entity_prefix="en"))
    assert all(uri.startswith("en/e") for uri in uri_of.values())
    # The URI index is a permutation, not the world id.
    mismatches = sum(
        1 for entity, uri in uri_of.items() if uri != f"en/e{entity}"
    )
    assert mismatches > len(uri_of) * 0.9


def test_view_deterministic(world):
    config = ViewConfig(name="X", seed=3)
    kg1, map1 = derive_view(world, config)
    kg2, map2 = derive_view(world, config)
    assert kg1.relation_triples == kg2.relation_triples
    assert map1 == map2


def test_view_keep_rates(world):
    config = ViewConfig(name="thin", triple_keep=0.5, entity_keep=1.0)
    kg, _ = derive_view(world, config)
    ratio = len(kg.relation_triples) / len(world.relation_triples)
    assert 0.4 <= ratio <= 0.6


def test_view_numeric_schema(world):
    kg, _ = derive_view(world, ViewConfig(name="WD", schema_naming="numeric"))
    assert all(r.startswith("P") for r in kg.relations)
    assert all(a.startswith("P") for a in kg.attributes)


def test_view_relation_merge_shrinks_schema(world):
    kg, _ = derive_view(world, ViewConfig(name="YG", relation_merge=5))
    assert len(kg.relations) <= 5


def test_view_language_translates_values(world):
    en_kg, uri_en = derive_view(world, ViewConfig(name="EN", language="en", value_noise=0.0))
    fr_kg, uri_fr = derive_view(world, ViewConfig(name="FR", language="fr", value_noise=0.0))
    en_values = {v for _, _, v in en_kg.attribute_triples}
    fr_values = {v for _, _, v in fr_kg.attribute_triples}
    assert en_values.isdisjoint(fr_values) or len(en_values & fr_values) < 0.2 * len(en_values)


def test_view_drop_descriptions(world):
    kg, _ = derive_view(
        world, ViewConfig(name="nodesc", drop_descriptions=True, attr_keep=1.0)
    )
    # descriptions are the longest literals; with them gone, max token count is small
    max_tokens = max(len(v.split()) for _, _, v in kg.attribute_triples)
    assert max_tokens < 6


# ---------------------------------------------------------------------------
# families
# ---------------------------------------------------------------------------
def test_all_families_build():
    for family in FAMILIES:
        pair = source_pair(family, n_entities=250, seed=0)
        assert len(pair.alignment) > 100
        assert pair.metadata["family"] == family


def test_source_pair_no_isolates():
    pair = source_pair("EN-FR", n_entities=300, seed=1)
    assert all(pair.kg1.degree(a) > 0 for a, _ in pair.alignment)
    assert all(pair.kg2.degree(b) > 0 for _, b in pair.alignment)


def test_v2_denser_than_v1():
    v1 = source_pair("EN-FR", n_entities=400, version="V1", seed=0)
    v2 = source_pair("EN-FR", n_entities=400, version="V2", seed=0)
    assert v2.kg1.average_degree() > 1.5 * v1.kg1.average_degree()


def test_dw_family_numeric_target_schema():
    pair = source_pair("D-W", n_entities=250, seed=0)
    assert all(r.startswith("P") for r in pair.kg2.relations)
    assert not any(r.startswith("P") for r in pair.kg1.relations)


def test_dy_family_small_target_schema():
    pair = source_pair("D-Y", n_entities=250, seed=0)
    assert len(pair.kg2.relations) <= 8
    assert len(pair.kg1.relations) > len(pair.kg2.relations)


def test_benchmark_pair_direct_and_ids():
    direct = benchmark_pair("EN-FR", size=150, method="direct", seed=0)
    assert len(direct.alignment) >= 150
    sampled = benchmark_pair("EN-FR", size=150, method="ids", seed=0)
    assert len(sampled.alignment) <= len(direct.alignment)
    assert sampled.metadata["method"] == "ids"
    assert sampled.name == "EN-FR-150-V1"


def test_benchmark_pair_rejects_unknown():
    with pytest.raises(KeyError):
        benchmark_pair("EN-XX", size=100)
    with pytest.raises(ValueError):
        benchmark_pair("EN-FR", size=100, method="magic")
    with pytest.raises(ValueError):
        source_pair("EN-FR", version="V3")


def test_degree_distribution_preserved_through_pipeline():
    from repro.kg import js_divergence

    source = source_pair("EN-FR", n_entities=800, seed=2)
    sampled = benchmark_pair("EN-FR", size=400, seed=2, oversample=2.0)
    js = js_divergence(
        degree_distribution(source.kg1), degree_distribution(sampled.kg1)
    )
    assert js < 0.08
