"""Regression sentinel: robust stats, verdicts, and the gate.

The ISSUE acceptance criteria live here: against a 5-run synthetic
baseline the gate must catch an injected 2x slowdown in
``steps_per_second`` and a 30% ``hits_at_1`` drop, while staying quiet
across 20 jitter-only (±5%) replays with fixed seeds — zero false
positives.
"""

import json
import math
import random

import pytest

from repro import cli
from repro.obs.ledger import RunLedger, RunRecord
from repro.obs.regress import (
    DEFAULT_POLICIES,
    MetricPolicy,
    bootstrap_ratio_ci,
    compare,
    gate,
    mad,
    median,
    robust_z,
)

# Headline scalars of the synthetic runs (one value per gated metric).
BASE_SCALARS = {
    "steps_per_second": 1000.0,
    "mean_epoch_seconds": 2.0,
    "hits_at_1": 0.60,
    "mrr": 0.70,
}

JITTER = 0.05  # the ±5% noise band the gate must tolerate


def jittered(rng: random.Random, factors: dict | None = None) -> dict:
    """BASE_SCALARS under ±5% uniform noise, optionally scaled per metric."""
    factors = factors or {}
    return {
        name: base * factors.get(name, 1.0)
        * (1.0 + rng.uniform(-JITTER, JITTER))
        for name, base in BASE_SCALARS.items()
    }


def seed_ledger(path, seed: int, n_baseline: int = 5,
                current_factors: dict | None = None) -> RunLedger:
    """A ledger holding ``n_baseline`` jittered runs plus one current
    run, all under the same config fingerprint."""
    rng = random.Random(seed)
    ledger = RunLedger(path)
    for _ in range(n_baseline):
        ledger.append(RunRecord(kind="bench", name="synthetic",
                                config={"case": "gate"},
                                scalars=jittered(rng)))
    ledger.append(RunRecord(kind="bench", name="synthetic",
                            config={"case": "gate"},
                            scalars=jittered(rng, current_factors)))
    return ledger


# ---------------------------------------------------------------------------
# robust statistics
# ---------------------------------------------------------------------------
class TestRobustStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_resists_outliers(self):
        clean = [10.0, 10.5, 9.5, 10.2, 9.8]
        spiked = clean + [1000.0]
        assert mad(spiked) < 1.0  # a mean/std test would explode here

    def test_robust_z_sign_and_zero_spread(self):
        baseline = [10.0, 10.0, 10.0]
        assert robust_z(10.0, baseline) == 0.0
        assert robust_z(11.0, baseline) == math.inf
        assert robust_z(9.0, baseline) == -math.inf
        spread = [9.0, 10.0, 11.0]
        assert robust_z(12.0, spread) > 0 > robust_z(8.0, spread)

    def test_bootstrap_ci_deterministic_and_brackets_ratio(self):
        baseline = [100.0, 102.0, 98.0, 101.0, 99.0]
        lo, hi = bootstrap_ratio_ci(50.0, baseline, seed=7)
        assert (lo, hi) == bootstrap_ratio_ci(50.0, baseline, seed=7)
        assert lo <= 50.0 / median(baseline) <= hi
        assert hi < 1.0  # a halving is unambiguous at any resampling
        lo, hi = bootstrap_ratio_ci(100.5, baseline, seed=7)
        assert lo < 1.0 < hi  # parity stays inside the interval
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(1.0, [])


# ---------------------------------------------------------------------------
# per-metric verdicts
# ---------------------------------------------------------------------------
class TestCompare:
    POLICY = MetricPolicy("steps_per_second", higher_is_better=True,
                          rel_threshold=0.20, bootstrap=True)

    def test_no_baseline_below_minimum(self):
        verdict = compare(100.0, [100.0, 100.0], self.POLICY)
        assert verdict.status == "no-baseline"
        assert "have 2" in verdict.reason

    def test_clear_regression_and_improvement(self):
        baseline = [100.0, 102.0, 98.0, 101.0, 99.0]
        down = compare(50.0, baseline, self.POLICY)
        assert down.status == "regressed"
        assert down.ratio == pytest.approx(0.5)
        up = compare(200.0, baseline, self.POLICY)
        assert up.status == "improved"
        # for a lower-is-better metric the same doubling is a regression
        latency = MetricPolicy("p95_ms", higher_is_better=False,
                               rel_threshold=0.20)
        assert compare(200.0, baseline, latency).status == "regressed"

    def test_small_changes_are_within_noise(self):
        baseline = [100.0, 102.0, 98.0, 101.0, 99.0]
        verdict = compare(95.0, baseline, self.POLICY)
        assert verdict.status == "ok"
        assert "within noise" in verdict.reason

    def test_big_but_statistically_weak_change_blocked_by_z(self):
        # wide baseline spread: a 25% drop clears the magnitude band but
        # not the MAD z-score — the conjunction keeps the gate quiet
        baseline = [60.0, 100.0, 140.0, 80.0, 120.0]
        verdict = compare(75.0, baseline,
                          MetricPolicy("qps", higher_is_better=True,
                                       rel_threshold=0.20))
        assert verdict.status == "ok"
        assert "z" in verdict.reason

    def test_verdict_json_safe_with_infinite_z(self):
        verdict = compare(11.0, [10.0, 10.0, 10.0],
                          MetricPolicy("speedup", higher_is_better=True,
                                       rel_threshold=0.05, z_threshold=1.0))
        assert verdict.z == math.inf
        data = json.loads(json.dumps(verdict.to_dict()))
        assert data["z"] == "inf"


# ---------------------------------------------------------------------------
# the gate: acceptance criteria
# ---------------------------------------------------------------------------
class TestGateAcceptance:
    def test_detects_injected_2x_slowdown(self, tmp_path):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=42)
        report = gate(ledger, inject_factor=2.0)
        assert report.status == "regressed"
        assert report.exit_code == 1
        regressed = {v.metric for v in report.regressions}
        # the injection worsens every metric's bad direction, so both
        # throughput and timing fire; steps_per_second is the headliner
        assert "steps_per_second" in regressed
        sps = next(v for v in report.verdicts
                   if v.metric == "steps_per_second")
        assert sps.ratio < 0.6
        assert sps.ci is not None and sps.ci[1] < 1.0

    def test_detects_30pct_hits_drop(self, tmp_path):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=43,
                             current_factors={"hits_at_1": 0.70})
        report = gate(ledger)
        assert report.status == "regressed"
        regressed = {v.metric for v in report.regressions}
        assert regressed == {"hits_at_1"}
        hits = next(v for v in report.verdicts if v.metric == "hits_at_1")
        assert hits.status == "regressed"
        assert "down" in hits.reason

    @pytest.mark.parametrize("seed", range(20))
    def test_zero_false_positives_on_jitter_replays(self, tmp_path, seed):
        ledger = seed_ledger(tmp_path / f"ledger_{seed}.jsonl", seed=seed)
        report = gate(ledger)
        assert report.status == "ok", (
            f"false positive at seed {seed}:\n{report.format()}"
        )
        assert report.regressions == []
        assert report.exit_code == 0

    def test_inject_factor_read_from_env(self, tmp_path, monkeypatch):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=1)
        monkeypatch.setenv("REPRO_GATE_INJECT_FACTOR", "2.0")
        report = gate(ledger)
        assert report.inject_factor == 2.0
        assert report.status == "regressed"
        assert "REPRO_GATE_INJECT_FACTOR" in report.format()
        monkeypatch.delenv("REPRO_GATE_INJECT_FACTOR")
        assert gate(ledger).status == "ok"


class TestGateMechanics:
    def test_no_runs_and_no_baseline(self, tmp_path):
        empty = RunLedger(tmp_path / "none.jsonl")
        assert gate(empty).status == "no-runs"
        short = seed_ledger(tmp_path / "short.jsonl", seed=0, n_baseline=1)
        report = gate(short)
        assert report.status == "no-baseline"
        assert all(v.status == "no-baseline" for v in report.verdicts)
        assert report.exit_code == 0  # never fail a fresh ledger

    def test_fingerprint_scopes_the_baseline(self, tmp_path):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=2)
        # a differently-configured (hence differently-fingerprinted)
        # terrible run must not poison the comparable pool
        ledger.append(RunRecord(kind="bench", name="synthetic",
                                config={"case": "other"},
                                scalars={"steps_per_second": 1.0}))
        rng = random.Random(99)
        current = ledger.append(RunRecord(
            kind="bench", name="synthetic", config={"case": "gate"},
            scalars=jittered(rng)).to_dict())
        report = gate(ledger, run_id=current["run_id"])
        assert report.status == "ok"

    def test_explicit_metrics_and_threshold_override(self, tmp_path):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=3,
                             current_factors={"mrr": 0.85})
        # default 10% band flags the 15% MRR drop...
        assert gate(ledger, metrics=["mrr"]).status == "regressed"
        # ...a widened override waves it through
        report = gate(ledger, metrics=["mrr"], rel_threshold=0.5)
        assert report.status == "ok"
        assert [v.metric for v in report.verdicts] == ["mrr"]

    def test_report_json_round_trip(self, tmp_path):
        ledger = seed_ledger(tmp_path / "ledger.jsonl", seed=4)
        report = gate(ledger, inject_factor=2.0)
        data = json.loads(report.to_json())
        assert data["status"] == "regressed"
        assert data["exit_code"] == 1
        assert data["inject_factor"] == 2.0
        statuses = {m["metric"]: m["status"] for m in data["metrics"]}
        assert statuses["steps_per_second"] == "regressed"


class TestGateCLI:
    def test_cli_ok_then_injected_failure(self, tmp_path, monkeypatch,
                                          capsys):
        path = tmp_path / "ledger.jsonl"
        seed_ledger(path, seed=5)
        assert cli.main(["obs-gate", "--ledger", str(path)]) == 0
        assert "verdict: OK" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_GATE_INJECT_FACTOR", "2.0")
        assert cli.main(["obs-gate", "--ledger", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "test hook" in out

    def test_cli_json_output(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        seed_ledger(path, seed=6)
        assert cli.main(["obs-gate", "--ledger", str(path), "--json",
                         "--metric", "hits_at_1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [m["metric"] for m in data["metrics"]] == ["hits_at_1"]

    def test_cli_empty_ledger_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert cli.main(["obs-gate", "--ledger", missing]) == 2
        assert "no runs" in capsys.readouterr().out
