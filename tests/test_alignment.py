"""Tests for distance metrics, CSLS, inference strategies and evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    PRF,
    cosine_similarity,
    csls,
    euclidean_similarity,
    greedy_alignment,
    hungarian_alignment,
    infer_alignment,
    manhattan_similarity,
    prf_metrics,
    rank_metrics,
    similarity_matrix,
    stable_marriage,
)

RNG = np.random.default_rng(11)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def test_cosine_similarity_values():
    x = np.array([[1.0, 0.0], [0.0, 2.0]])
    y = np.array([[2.0, 0.0], [1.0, 1.0]])
    sim = cosine_similarity(x, y)
    np.testing.assert_allclose(sim[0, 0], 1.0)
    np.testing.assert_allclose(sim[0, 1], 1 / np.sqrt(2))
    np.testing.assert_allclose(sim[1, 0], 0.0)


def test_euclidean_similarity_is_negative_distance():
    x = np.array([[0.0, 0.0]])
    y = np.array([[3.0, 4.0], [0.0, 0.0]])
    sim = euclidean_similarity(x, y)
    np.testing.assert_allclose(sim, [[-5.0, 0.0]], atol=1e-9)


def test_manhattan_similarity_values():
    x = np.array([[0.0, 0.0]])
    y = np.array([[1.0, -2.0]])
    np.testing.assert_allclose(manhattan_similarity(x, y), [[-3.0]])


def test_manhattan_blocking_matches_direct():
    x, y = RNG.normal(size=(37, 5)), RNG.normal(size=(23, 5))
    blocked = manhattan_similarity(x, y)
    direct = -np.abs(x[:, None, :] - y[None, :, :]).sum(axis=2)
    np.testing.assert_allclose(blocked, direct)


def test_similarity_matrix_dispatch_and_error():
    x = RNG.normal(size=(3, 4))
    np.testing.assert_allclose(
        similarity_matrix(x, x, "cosine"), cosine_similarity(x, x)
    )
    with pytest.raises(KeyError):
        similarity_matrix(x, x, "chebyshev")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_euclidean_self_similarity_is_max(seed):
    x = np.random.default_rng(seed).normal(size=(6, 4))
    sim = euclidean_similarity(x, x)
    assert np.all(np.diag(sim) >= sim.max(axis=1) - 1e-9)


# ---------------------------------------------------------------------------
# CSLS
# ---------------------------------------------------------------------------
def test_csls_penalizes_hubs():
    # target 0 is a hub: similar to every source; target 1 matches source 2 only.
    sim = np.array([
        [0.90, 0.10],
        [0.90, 0.20],
        [0.85, 0.80],
    ])
    adjusted = csls(sim, k=2)
    # greedy on raw sim maps every source to hub 0
    assert greedy_alignment(sim).tolist() == [0, 0, 0]
    # CSLS discounts the hub enough for source 2 to pick target 1
    assert greedy_alignment(adjusted).tolist() == [0, 0, 1]


def test_csls_formula_matches_definition():
    sim = RNG.normal(size=(4, 5))
    k = 2
    adjusted = csls(sim, k=k)
    psi_s = np.sort(sim, axis=1)[:, -k:].mean(axis=1)
    psi_t = np.sort(sim, axis=0)[-k:, :].mean(axis=0)
    expected = 2 * sim - psi_s[:, None] - psi_t[None, :]
    np.testing.assert_allclose(adjusted, expected)


def test_csls_k_clamped_to_matrix_size():
    sim = RNG.normal(size=(2, 3))
    adjusted = csls(sim, k=10)  # larger than both dims
    assert adjusted.shape == sim.shape


def test_csls_rejects_nonpositive_k():
    with pytest.raises(ValueError):
        csls(np.ones((2, 2)), k=0)


# ---------------------------------------------------------------------------
# inference strategies
# ---------------------------------------------------------------------------
def test_greedy_alignment_argmax():
    sim = np.array([[0.1, 0.9], [0.8, 0.2]])
    assert greedy_alignment(sim).tolist() == [1, 0]


def test_stable_marriage_is_stable():
    sim = RNG.normal(size=(8, 8))
    match = stable_marriage(sim)
    # no blocking pair: (s, t) both preferring each other over their matches
    for s in range(8):
        for t in range(8):
            if match[s] == t:
                continue
            holder = np.where(match == t)[0]
            s_prefers = sim[s, t] > sim[s, match[s]]
            t_prefers = len(holder) == 0 or sim[s, t] > sim[holder[0], t]
            assert not (s_prefers and t_prefers)


def test_stable_marriage_one_to_one():
    sim = RNG.normal(size=(10, 10))
    match = stable_marriage(sim)
    assert sorted(match.tolist()) == list(range(10))


def test_stable_marriage_more_sources_than_targets():
    sim = RNG.normal(size=(5, 3))
    match = stable_marriage(sim)
    matched = match[match >= 0]
    assert len(matched) == 3
    assert len(set(matched.tolist())) == 3


def test_hungarian_maximizes_total_similarity():
    sim = np.array([[0.9, 0.8], [0.85, 0.1]])
    # greedy would send both to column 0; hungarian must split
    match = hungarian_alignment(sim)
    assert match.tolist() == [1, 0]


def test_hungarian_rectangle():
    sim = RNG.normal(size=(6, 4))
    match = hungarian_alignment(sim)
    assert (match >= 0).sum() == 4


def test_infer_alignment_dispatch():
    sim = np.eye(3)
    assert infer_alignment(sim, "greedy").tolist() == [0, 1, 2]
    with pytest.raises(KeyError):
        infer_alignment(sim, "psychic")


def test_hungarian_beats_or_ties_greedy_on_total():
    for seed in range(5):
        sim = np.random.default_rng(seed).normal(size=(12, 12))
        greedy_total = sim[np.arange(12), greedy_alignment(sim)].sum()
        hungarian_total = sim[np.arange(12), hungarian_alignment(sim)].sum()
        # Greedy double-counts targets, so compare only valid assignments:
        assert hungarian_total >= sim[np.arange(12), stable_marriage(sim)].sum() - 1e-9
        del greedy_total


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------
def test_rank_metrics_perfect():
    sim = np.eye(4)
    metrics = rank_metrics(sim, np.arange(4))
    assert metrics.hits_at(1) == 1.0
    assert metrics.mr == 1.0
    assert metrics.mrr == 1.0


def test_rank_metrics_known_ranks():
    sim = np.array([
        [0.9, 0.5, 0.1],  # gold 0 -> rank 1
        [0.9, 0.5, 0.1],  # gold 2 -> rank 3
    ])
    metrics = rank_metrics(sim, np.array([0, 2]), hits_at=(1, 2))
    assert metrics.hits_at(1) == 0.5
    assert metrics.hits_at(2) == 0.5
    assert metrics.mr == pytest.approx(2.0)
    assert metrics.mrr == pytest.approx((1.0 + 1 / 3) / 2)


def test_rank_metrics_empty():
    metrics = rank_metrics(np.zeros((0, 3)), np.zeros(0, dtype=int))
    assert metrics.n == 0
    assert metrics.mr == 0.0
    assert metrics.mrr == 0.0
    # the default cutoffs are present (all zero) so downstream code can
    # read hits_at(1) off an empty evaluation without special-casing
    assert metrics.hits == {1: 0.0, 5: 0.0, 10: 0.0}
    str(metrics)  # renders without dividing by n


def test_rank_metrics_cutoff_beyond_candidate_count():
    """hits_at m larger than the candidate pool saturates at 1.0: every
    rank is <= the number of candidates, so the cutoff catches all."""
    sim = np.array([[0.9, 0.1], [0.9, 0.1]])
    metrics = rank_metrics(sim, np.array([0, 1]), hits_at=(1, 10))
    assert metrics.hits_at(1) == 0.5
    assert metrics.hits_at(10) == 1.0


def test_rank_metrics_shape_mismatch():
    with pytest.raises(ValueError):
        rank_metrics(np.zeros((2, 3)), np.zeros(3, dtype=int))


def test_rank_metrics_str():
    text = str(rank_metrics(np.eye(2), np.arange(2)))
    assert "H@1=1.000" in text
    assert "MR=1.0" in text
    assert "MRR=1.000" in text
    assert "(n=2)" in text


def test_prf_metrics_values():
    predicted = {("a", "x"), ("b", "y"), ("c", "wrong")}
    gold = {("a", "x"), ("b", "y"), ("d", "z"), ("e", "w")}
    prf = prf_metrics(predicted, gold)
    assert prf.precision == pytest.approx(2 / 3)
    assert prf.recall == pytest.approx(0.5)
    assert prf.f1 == pytest.approx(2 * (2 / 3) * 0.5 / (2 / 3 + 0.5))


def test_prf_metrics_empty_cases():
    assert prf_metrics(set(), {("a", "b")}).precision == 0.0
    assert prf_metrics({("a", "b")}, set()).recall == 0.0
    assert prf_metrics(set(), set()).f1 == 0.0


def test_prf_is_dataclass_with_str():
    prf = PRF(precision=1.0, recall=1.0, f1=1.0, n_predicted=2, n_gold=2)
    assert "F1=1.000" in str(prf)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), n=st.integers(2, 20))
def test_hits1_equals_precision_protocol(seed, n):
    """Hits@1 == precision of the greedy prediction set (paper §2.1.3)."""
    sim = np.random.default_rng(seed).normal(size=(n, n))
    gold = np.arange(n)
    hits1 = rank_metrics(sim, gold, hits_at=(1,)).hits_at(1)
    predictions = {(i, int(j)) for i, j in enumerate(greedy_alignment(sim))}
    gold_set = {(i, i) for i in range(n)}
    assert hits1 == pytest.approx(prf_metrics(predictions, gold_set).precision)
