"""Tests for relation embedding models, losses and negative sampling."""

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor
from repro.embedding import (
    RELATION_MODELS,
    ConvE,
    GCNEncoder,
    TransE,
    TruncatedSampler,
    get_relation_model,
    limit_based_loss,
    logistic_loss,
    margin_ranking_loss,
    normalized_adjacency,
    uniform_corrupt,
)

RNG = np.random.default_rng(3)
N_ENT, N_REL, DIM = 20, 5, 16


def _model(name):
    return RELATION_MODELS[name](N_ENT, N_REL, DIM, np.random.default_rng(0))


@pytest.fixture(params=sorted(RELATION_MODELS))
def model(request):
    return _model(request.param)


# ---------------------------------------------------------------------------
# generic model contract
# ---------------------------------------------------------------------------
def test_score_shape_and_grad(model):
    heads = np.array([0, 1, 2, 3])
    rels = np.array([0, 1, 2, 0])
    tails = np.array([4, 5, 6, 7])
    scores = model.score(heads, rels, tails)
    assert scores.shape == (4,)
    (-scores.sum()).backward()
    grads = [p for p in model.parameters() if p.grad is not None]
    assert grads, "backward must reach at least one parameter"
    assert all(np.isfinite(p.grad).all() for p in grads)


def test_entity_embeddings_shape(model):
    emb = model.entity_embeddings()
    assert emb.shape == (N_ENT, DIM)
    assert np.isfinite(emb).all()


def test_normalize_keeps_shapes(model):
    model.normalize()
    assert model.entity_embeddings().shape == (N_ENT, DIM)


def test_model_validates_dims():
    with pytest.raises(ValueError):
        TransE(0, 1, 8, RNG)
    with pytest.raises(ValueError):
        TransE(5, 5, 0, RNG)
    with pytest.raises(ValueError):
        TransE(5, 5, 8, RNG, norm="L3")


def test_odd_dim_rejected_for_complex_models():
    for name in ("complex", "rotate"):
        with pytest.raises(ValueError):
            RELATION_MODELS[name](5, 2, 7, RNG)


def test_registry_lookup():
    assert get_relation_model("TransE") is TransE
    with pytest.raises(KeyError):
        get_relation_model("pythagoras")


# ---------------------------------------------------------------------------
# model-specific behaviour
# ---------------------------------------------------------------------------
def test_transe_perfect_translation_scores_zero():
    m = TransE(3, 1, 4, RNG)
    m.entities.table.data[0] = [1.0, 0.0, 0.0, 0.0]
    m.relations.table.data[0] = [0.0, 1.0, 0.0, 0.0]
    m.entities.table.data[1] = [1.0, 1.0, 0.0, 0.0]
    score = m.score([0], [0], [1])
    assert float(score.data[0]) == pytest.approx(0.0, abs=1e-5)


def test_transe_l1_variant():
    m = TransE(3, 1, 4, RNG, norm="L1")
    m.entities.table.data[0] = [1.0, 0.0, 0.0, 0.0]
    m.relations.table.data[0] = [0.0, 0.0, 0.0, 0.0]
    m.entities.table.data[1] = [0.0, 1.0, 0.0, 0.0]
    assert float(m.score([0], [0], [1]).data[0]) == pytest.approx(-2.0)


def test_distmult_symmetric_in_head_tail():
    m = _model("distmult")
    forward = m.score([0], [1], [2]).data
    backward = m.score([2], [1], [0]).data
    np.testing.assert_allclose(forward, backward)


def test_rotate_preserves_norm_under_rotation():
    m = _model("rotate")
    # rotating h by r never changes its modulus; score of (e, r, e) with
    # zero phase must be exactly 0
    m.phases.data[...] = 0.0
    score = m.score([3], [0], [3])
    assert float(score.data[0]) == pytest.approx(0.0, abs=1e-5)


def test_conve_factorization():
    from repro.embedding.deep import _factor_2d

    assert _factor_2d(16) == (4, 4)
    assert _factor_2d(12) == (3, 4)
    assert _factor_2d(7) == (1, 7)


def test_conve_too_small_dim_rejected():
    with pytest.raises(ValueError):
        ConvE(4, 2, 2, RNG, kernel=3)


def test_simple_entity_embeddings_average_roles():
    m = _model("simple")
    expected = 0.5 * (m.entities.all_embeddings() + m.tail_entities.all_embeddings())
    np.testing.assert_allclose(m.entity_embeddings(), expected)


# ---------------------------------------------------------------------------
# training sanity: each family separates positives from negatives
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ["transe", "transh", "distmult", "rotate", "proje"])
def test_training_separates_positives(name):
    rng = np.random.default_rng(0)
    model = RELATION_MODELS[name](12, 3, 16, rng)
    positives = np.array(
        [(i, i % 3, (i + 1) % 12) for i in range(12)], dtype=np.int64
    )
    optimizer = Adam(model.parameters(), lr=0.05)
    for _ in range(60):
        negatives = uniform_corrupt(positives, 12, 1, rng)
        optimizer.zero_grad()
        pos = model.score(positives[:, 0], positives[:, 1], positives[:, 2])
        neg = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        loss = margin_ranking_loss(pos, neg, margin=1.0)
        loss.backward()
        optimizer.step()
    negatives = uniform_corrupt(positives, 12, 5, rng)
    pos = model.score(positives[:, 0], positives[:, 1], positives[:, 2]).data.mean()
    neg = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2]).data.mean()
    assert pos > neg


# ---------------------------------------------------------------------------
# losses
# ---------------------------------------------------------------------------
def test_margin_loss_zero_when_separated():
    pos = Tensor(np.array([5.0, 5.0]))
    neg = Tensor(np.array([0.0, 0.0]))
    assert float(margin_ranking_loss(pos, neg, margin=1.0).data) == 0.0


def test_margin_loss_positive_when_violated():
    pos = Tensor(np.array([0.0]))
    neg = Tensor(np.array([0.0]))
    assert float(margin_ranking_loss(pos, neg, margin=1.0).data) == pytest.approx(1.0)


def test_logistic_loss_decreases_with_separation():
    good = logistic_loss(Tensor(np.array([4.0])), Tensor(np.array([-4.0])))
    bad = logistic_loss(Tensor(np.array([0.0])), Tensor(np.array([0.0])))
    assert float(good.data) < float(bad.data)


def test_limit_based_loss_zero_inside_limits():
    pos = Tensor(np.array([0.0]))       # above pos_limit -0.2
    neg = Tensor(np.array([-3.0]))      # below neg_limit -2.0
    assert float(limit_based_loss(pos, neg).data) == 0.0


def test_limit_based_loss_penalizes_both_sides():
    loss = limit_based_loss(
        Tensor(np.array([-1.0])), Tensor(np.array([-1.0])),
        pos_limit=-0.2, neg_limit=-2.0, balance=1.0,
    )
    assert float(loss.data) == pytest.approx(0.8 + 1.0)


# ---------------------------------------------------------------------------
# negative sampling
# ---------------------------------------------------------------------------
def test_uniform_corrupt_shape_and_validity():
    triples = np.array([[0, 0, 1], [2, 1, 3]], dtype=np.int64)
    negatives = uniform_corrupt(triples, 10, 3, np.random.default_rng(0))
    assert negatives.shape == (6, 3)
    assert negatives[:, 1].tolist() == [0, 0, 0, 1, 1, 1]
    assert ((negatives[:, [0, 2]] >= 0) & (negatives[:, [0, 2]] < 10)).all()


def test_uniform_corrupt_changes_one_side():
    triples = np.array([[0, 0, 1]] * 100, dtype=np.int64)
    negatives = uniform_corrupt(triples, 50, 1, np.random.default_rng(1))
    changed_head = negatives[:, 0] != 0
    changed_tail = negatives[:, 2] != 1
    assert not np.any(changed_head & changed_tail)


def test_truncated_sampler_uses_neighbors():
    sampler = TruncatedSampler(n_entities=10, truncation=0.3, cache_size=2)
    # clustered embeddings: entities 0-4 near each other, 5-9 near each other
    emb = np.zeros((10, 4))
    emb[:5, 0] = 1.0
    emb[:5, 1] = np.linspace(0, 0.1, 5)
    emb[5:, 2] = 1.0
    emb[5:, 3] = np.linspace(0, 0.1, 5)
    sampler.refresh(emb)
    triples = np.array([[0, 0, 1]] * 200, dtype=np.int64)
    negatives = sampler.corrupt(triples, 1, np.random.default_rng(0))
    replaced = np.where(negatives[:, 0] != 0, negatives[:, 0], negatives[:, 2])
    assert set(replaced.tolist()) <= set(range(5))  # same cluster only


def test_truncated_sampler_falls_back_to_uniform():
    sampler = TruncatedSampler(n_entities=10, truncation=0.5)
    assert not sampler.ready
    triples = np.array([[0, 0, 1]], dtype=np.int64)
    negatives = sampler.corrupt(triples, 2, np.random.default_rng(0))
    assert negatives.shape == (2, 3)


def test_truncated_sampler_validates():
    with pytest.raises(ValueError):
        TruncatedSampler(5, truncation=0.0)
    sampler = TruncatedSampler(5)
    with pytest.raises(ValueError):
        sampler.refresh(np.zeros((3, 4)))


# ---------------------------------------------------------------------------
# GCN
# ---------------------------------------------------------------------------
def test_normalized_adjacency_rows():
    adj = normalized_adjacency(3, [(0, 1), (1, 2)])
    dense = adj.toarray()
    assert dense.shape == (3, 3)
    np.testing.assert_allclose(dense, dense.T, atol=1e-12)
    assert (np.diag(dense) > 0).all()  # self loops present


def test_gcn_forward_shapes_and_training():
    adj = normalized_adjacency(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    encoder = GCNEncoder(adj, in_dim=8, hidden_dims=[8, 8], rng=np.random.default_rng(0))
    out = encoder()
    assert out.shape == (6, 8)
    # embeddings() (no-grad path) must match the graph forward
    np.testing.assert_allclose(encoder.embeddings(), out.data, atol=1e-10)


def test_gcn_highway_matches_forward():
    adj = normalized_adjacency(5, [(0, 1), (2, 3)])
    encoder = GCNEncoder(
        adj, in_dim=6, hidden_dims=[6], rng=np.random.default_rng(1), highway=True
    )
    np.testing.assert_allclose(encoder.embeddings(), encoder().data, atol=1e-10)


def test_gcn_constant_features_not_trainable():
    adj = normalized_adjacency(4, [(0, 1)])
    features = np.random.default_rng(0).normal(size=(4, 5))
    encoder = GCNEncoder(
        adj, in_dim=5, hidden_dims=[5], rng=np.random.default_rng(0),
        features=features, trainable_features=False,
    )
    names = [p.name for p in encoder.parameters()]
    assert "gcn.features" not in names


def test_gcn_feature_shape_validated():
    adj = normalized_adjacency(4, [(0, 1)])
    with pytest.raises(ValueError):
        GCNEncoder(adj, in_dim=5, hidden_dims=[5], rng=RNG,
                   features=np.zeros((4, 3)))


def test_gcn_neighbors_become_similar():
    """After propagation, connected nodes are more similar than random."""
    rng = np.random.default_rng(0)
    edges = [(i, i + 1) for i in range(9)]
    adj = normalized_adjacency(10, edges)
    encoder = GCNEncoder(adj, in_dim=16, hidden_dims=[16, 16], rng=rng)
    emb = encoder.embeddings()
    emb = emb / np.linalg.norm(emb, axis=1, keepdims=True)
    neighbor_sim = np.mean([emb[i] @ emb[i + 1] for i in range(9)])
    far_sim = emb[0] @ emb[9]
    assert neighbor_sim > far_sim
