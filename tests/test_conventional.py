"""Tests for PARIS and the LogMap-style matcher."""

import pytest

from repro.alignment import prf_metrics
from repro.conventional import LogMap, LogMapConfig, Paris, ParisConfig
from repro.datagen import benchmark_pair
from repro.kg import KGPair, KnowledgeGraph


@pytest.fixture(scope="module")
def enfr():
    return benchmark_pair("EN-FR", size=200, method="direct", seed=1)


@pytest.fixture(scope="module")
def dw():
    return benchmark_pair("D-W", size=200, method="direct", seed=1)


# ---------------------------------------------------------------------------
# PARIS
# ---------------------------------------------------------------------------
def test_paris_high_precision(enfr):
    result = Paris().align(enfr)
    prf = prf_metrics(result.alignment, set(enfr.alignment))
    assert prf.precision > 0.8
    assert prf.recall > 0.4


def test_paris_one_to_one_output(enfr):
    result = Paris().align(enfr)
    lefts = [a for a, _ in result.alignment]
    rights = [b for _, b in result.alignment]
    assert len(lefts) == len(set(lefts))
    assert len(rights) == len(set(rights))


def test_paris_needs_no_training_data(enfr):
    # align() signature takes only the pair: Table 9's "no pre-aligned
    # entities" requirement
    result = Paris(ParisConfig(iterations=1)).align(enfr)
    assert result.alignment


def test_paris_relation_only_outputs_nothing(enfr):
    """Table 8: PARIS cannot align from relation triples alone."""
    result = Paris().align(enfr.without_attributes())
    assert result.alignment == []


def test_paris_attribute_only_keeps_precision_drops_recall(enfr):
    full = prf_metrics(Paris().align(enfr).alignment, set(enfr.alignment))
    attr_only = prf_metrics(
        Paris().align(enfr.without_relations()).alignment, set(enfr.alignment)
    )
    assert attr_only.precision > 0.75
    assert attr_only.recall < full.recall


def test_paris_learns_relation_correspondence(enfr):
    result = Paris().align(enfr)
    assert result.relation_correspondence
    assert all(0 <= v <= 1.5 for v in result.relation_correspondence.values())


def test_paris_functionality_computation():
    kg = KnowledgeGraph(
        attribute_triples=[
            ("a", "key", "unique1"),
            ("b", "key", "unique2"),
            ("c", "shared", "common"),
            ("d", "shared", "common"),
        ]
    )
    paris = Paris()
    ifun = paris._inverse_functionality(kg, "en")
    assert ifun["key"] == pytest.approx(1.0)
    assert ifun["shared"] == pytest.approx(0.5)


def test_paris_empty_pair():
    pair = KGPair(kg1=KnowledgeGraph(), kg2=KnowledgeGraph(), alignment=[])
    result = Paris().align(pair)
    assert result.alignment == []


# ---------------------------------------------------------------------------
# LogMap
# ---------------------------------------------------------------------------
def test_logmap_works_on_word_schemata(enfr):
    result = LogMap().align(enfr)
    assert result.property_alignment
    prf = prf_metrics(result.alignment, set(enfr.alignment))
    assert prf.precision > 0.85


def test_logmap_fails_on_numeric_schema(dw):
    """§6.3: LogMap depends on local names; Wikidata's P-IDs defeat it."""
    result = LogMap().align(dw)
    assert result.alignment == []
    assert result.property_alignment == {}


def test_logmap_repair_enforces_one_to_one(enfr):
    result = LogMap().align(enfr)
    rights = [b for _, b in result.alignment]
    assert len(rights) == len(set(rights))


def test_logmap_relation_only_outputs_nothing(enfr):
    result = LogMap().align(enfr.without_attributes())
    assert result.alignment == []


def test_logmap_attribute_only_still_works(enfr):
    """Table 8: LogMap's results remain intact with attributes only."""
    full = prf_metrics(LogMap().align(enfr).alignment, set(enfr.alignment))
    attr_only = prf_metrics(
        LogMap().align(enfr.without_relations()).alignment, set(enfr.alignment)
    )
    assert attr_only.f1 > 0.5 * full.f1


def test_logmap_threshold_configurable(enfr):
    strict = LogMap(LogMapConfig(candidate_threshold=0.99)).align(enfr)
    loose = LogMap(LogMapConfig(candidate_threshold=0.5)).align(enfr)
    assert len(strict.alignment) <= len(loose.alignment)


def test_both_systems_complementary_with_embeddings(enfr):
    """Figure 12: conventional systems find pairs embeddings may miss and
    vice versa — at minimum, their correct sets are not identical."""
    gold = set(enfr.alignment)
    paris_correct = set(Paris().align(enfr).alignment) & gold
    logmap_correct = set(LogMap().align(enfr).alignment) & gold
    assert paris_correct != logmap_correct
