"""Tests for the attribute embedding models AC2Vec and Label2Vec."""

import numpy as np
import pytest

from repro.embedding import AC2Vec, label2vec
from repro.kg import KnowledgeGraph


def test_ac2vec_validates_size():
    with pytest.raises(ValueError):
        AC2Vec(0)


def test_ac2vec_learns_correlations():
    """Attributes that co-occur become correlated; others do not."""
    # attributes 0,1 always together; 2,3 always together; never mixed
    sets = {}
    for entity in range(30):
        sets[entity] = {0, 1} if entity % 2 == 0 else {2, 3}
    model = AC2Vec(4, dim=16, epochs=25, seed=0).fit(sets)
    assert model.correlation(0, 1) > 0.6
    assert model.correlation(2, 3) > 0.6
    assert model.correlation(0, 2) < 0.5
    assert model.correlation(0, 2) < model.correlation(0, 1)


def test_ac2vec_empty_sets_noop():
    model = AC2Vec(3, dim=8, seed=0)
    before = model.embeddings.copy()
    model.fit({0: set()})
    np.testing.assert_allclose(model.embeddings, before)


def test_ac2vec_entity_vectors_mean():
    model = AC2Vec(3, dim=8, seed=1)
    vectors = model.entity_vectors({7: {0, 2}, 8: set()})
    assert 8 not in vectors
    np.testing.assert_allclose(
        vectors[7], model.embeddings[[0, 2]].mean(axis=0)
    )


def test_ac2vec_deterministic():
    sets = {i: {i % 3, (i + 1) % 3} for i in range(10)}
    one = AC2Vec(3, dim=8, epochs=5, seed=9).fit(sets).embeddings
    two = AC2Vec(3, dim=8, epochs=5, seed=9).fit(sets).embeddings
    np.testing.assert_allclose(one, two)


def test_label2vec_picks_rare_short_literal():
    kg = KnowledgeGraph(
        attribute_triples=[
            ("e1", "a", "unique label"),
            ("e1", "b", "common"),
            ("e2", "a", "common"),
            ("e3", "a", "common"),
        ]
    )
    vectors = label2vec(kg, dim=16)
    assert set(vectors) == {"e1", "e2", "e3"}
    # e1's vector comes from its rare value, so it differs from e2's
    assert not np.allclose(vectors["e1"], vectors["e2"])
    np.testing.assert_allclose(vectors["e2"], vectors["e3"])


def test_label2vec_cross_lingual_anchor():
    from repro.text import pseudo_translate

    kg_en = KnowledgeGraph(attribute_triples=[("e", "a", "everest peak")])
    kg_fr = KnowledgeGraph(
        attribute_triples=[("f", "a", pseudo_translate("everest peak", "fr"))]
    )
    v_en = label2vec(kg_en, language="en", dim=24)["e"]
    v_fr = label2vec(kg_fr, language="fr", dim=24)["f"]
    cosine = v_en @ v_fr / (np.linalg.norm(v_en) * np.linalg.norm(v_fr))
    assert cosine > 0.7
