"""Tests for the dataset-generation CLI."""

import pytest

from repro.cli import build_parser, main
from repro.kg import load_pair, load_splits


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_writes_openea_layout(tmp_path, capsys):
    out = tmp_path / "EN_FR_tiny"
    code = main([
        "generate", "--family", "EN-FR", "--size", "120",
        "--method", "direct", "--out", str(out),
    ])
    assert code == 0
    pair = load_pair(out)
    assert pair.alignment
    splits = load_splits(out)
    assert len(splits) == 5
    stdout = capsys.readouterr().out
    assert "rel triples" in stdout


def test_stats_reads_back(tmp_path, capsys):
    out = tmp_path / "DY_tiny"
    main(["generate", "--family", "D-Y", "--size", "100",
          "--method", "direct", "--out", str(out)])
    capsys.readouterr()
    code = main(["stats", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "avg_degree" in stdout


def test_stats_missing_directory(tmp_path, capsys):
    code = main(["stats", str(tmp_path / "nope")])
    assert code == 2


def test_generate_rejects_unknown_family():
    with pytest.raises(SystemExit):
        main(["generate", "--family", "EN-XX", "--out", "/tmp/x"])
